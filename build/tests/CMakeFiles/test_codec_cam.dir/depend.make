# Empty dependencies file for test_codec_cam.
# This may be replaced when dependencies are built.
