file(REMOVE_RECURSE
  "CMakeFiles/test_codec_cam.dir/codec_cam.cpp.o"
  "CMakeFiles/test_codec_cam.dir/codec_cam.cpp.o.d"
  "test_codec_cam"
  "test_codec_cam.pdb"
  "test_codec_cam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_cam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
