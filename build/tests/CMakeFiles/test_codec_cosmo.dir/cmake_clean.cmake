file(REMOVE_RECURSE
  "CMakeFiles/test_codec_cosmo.dir/codec_cosmo.cpp.o"
  "CMakeFiles/test_codec_cosmo.dir/codec_cosmo.cpp.o.d"
  "test_codec_cosmo"
  "test_codec_cosmo.pdb"
  "test_codec_cosmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
