# Empty compiler generated dependencies file for test_codec_cosmo.
# This may be replaced when dependencies are built.
