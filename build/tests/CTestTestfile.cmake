# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_fp16[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_codec_cosmo[1]_include.cmake")
include("/root/repo/build/tests/test_codec_cam[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_dnn[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
