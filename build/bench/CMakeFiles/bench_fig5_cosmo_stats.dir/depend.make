# Empty dependencies file for bench_fig5_cosmo_stats.
# This may be replaced when dependencies are built.
