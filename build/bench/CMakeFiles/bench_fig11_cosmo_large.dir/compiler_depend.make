# Empty compiler generated dependencies file for bench_fig11_cosmo_large.
# This may be replaced when dependencies are built.
