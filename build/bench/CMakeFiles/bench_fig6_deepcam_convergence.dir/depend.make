# Empty dependencies file for bench_fig6_deepcam_convergence.
# This may be replaced when dependencies are built.
