# Empty dependencies file for bench_fig10_cosmo_small.
# This may be replaced when dependencies are built.
