# Empty compiler generated dependencies file for bench_sec5_compression.
# This may be replaced when dependencies are built.
