file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_compression.dir/bench_sec5_compression.cpp.o"
  "CMakeFiles/bench_sec5_compression.dir/bench_sec5_compression.cpp.o.d"
  "bench_sec5_compression"
  "bench_sec5_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
