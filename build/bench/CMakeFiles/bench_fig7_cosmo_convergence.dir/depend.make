# Empty dependencies file for bench_fig7_cosmo_convergence.
# This may be replaced when dependencies are built.
