file(REMOVE_RECURSE
  "CMakeFiles/deepcam_pipeline.dir/deepcam_pipeline.cpp.o"
  "CMakeFiles/deepcam_pipeline.dir/deepcam_pipeline.cpp.o.d"
  "deepcam_pipeline"
  "deepcam_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcam_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
