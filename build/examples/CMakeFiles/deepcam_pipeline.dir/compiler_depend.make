# Empty compiler generated dependencies file for deepcam_pipeline.
# This may be replaced when dependencies are built.
