# Empty compiler generated dependencies file for cosmoflow_train.
# This may be replaced when dependencies are built.
