file(REMOVE_RECURSE
  "CMakeFiles/cosmoflow_train.dir/cosmoflow_train.cpp.o"
  "CMakeFiles/cosmoflow_train.dir/cosmoflow_train.cpp.o.d"
  "cosmoflow_train"
  "cosmoflow_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmoflow_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
