# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sciprep/common")
subdirs("sciprep/compress")
subdirs("sciprep/io")
subdirs("sciprep/data")
subdirs("sciprep/codec")
subdirs("sciprep/sim")
subdirs("sciprep/pipeline")
subdirs("sciprep/dnn")
subdirs("sciprep/apps")
