# Empty compiler generated dependencies file for sciprep_pipeline.
# This may be replaced when dependencies are built.
