file(REMOVE_RECURSE
  "libsciprep_pipeline.a"
)
