file(REMOVE_RECURSE
  "CMakeFiles/sciprep_pipeline.dir/dataset.cpp.o"
  "CMakeFiles/sciprep_pipeline.dir/dataset.cpp.o.d"
  "CMakeFiles/sciprep_pipeline.dir/ops.cpp.o"
  "CMakeFiles/sciprep_pipeline.dir/ops.cpp.o.d"
  "CMakeFiles/sciprep_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/sciprep_pipeline.dir/pipeline.cpp.o.d"
  "libsciprep_pipeline.a"
  "libsciprep_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
