file(REMOVE_RECURSE
  "CMakeFiles/sciprep_sim.dir/memhier.cpp.o"
  "CMakeFiles/sciprep_sim.dir/memhier.cpp.o.d"
  "CMakeFiles/sciprep_sim.dir/platform.cpp.o"
  "CMakeFiles/sciprep_sim.dir/platform.cpp.o.d"
  "CMakeFiles/sciprep_sim.dir/simgpu.cpp.o"
  "CMakeFiles/sciprep_sim.dir/simgpu.cpp.o.d"
  "CMakeFiles/sciprep_sim.dir/stepmodel.cpp.o"
  "CMakeFiles/sciprep_sim.dir/stepmodel.cpp.o.d"
  "libsciprep_sim.a"
  "libsciprep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
