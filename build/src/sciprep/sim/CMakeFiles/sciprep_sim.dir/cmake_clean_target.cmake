file(REMOVE_RECURSE
  "libsciprep_sim.a"
)
