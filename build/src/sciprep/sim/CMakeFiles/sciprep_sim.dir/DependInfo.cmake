
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sciprep/sim/memhier.cpp" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/memhier.cpp.o" "gcc" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/memhier.cpp.o.d"
  "/root/repo/src/sciprep/sim/platform.cpp" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/platform.cpp.o" "gcc" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sciprep/sim/simgpu.cpp" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/simgpu.cpp.o" "gcc" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/simgpu.cpp.o.d"
  "/root/repo/src/sciprep/sim/stepmodel.cpp" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/stepmodel.cpp.o" "gcc" "src/sciprep/sim/CMakeFiles/sciprep_sim.dir/stepmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sciprep/common/CMakeFiles/sciprep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
