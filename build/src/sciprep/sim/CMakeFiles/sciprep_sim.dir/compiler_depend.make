# Empty compiler generated dependencies file for sciprep_sim.
# This may be replaced when dependencies are built.
