
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sciprep/codec/cam_codec.cpp" "src/sciprep/codec/CMakeFiles/sciprep_codec.dir/cam_codec.cpp.o" "gcc" "src/sciprep/codec/CMakeFiles/sciprep_codec.dir/cam_codec.cpp.o.d"
  "/root/repo/src/sciprep/codec/cosmo_codec.cpp" "src/sciprep/codec/CMakeFiles/sciprep_codec.dir/cosmo_codec.cpp.o" "gcc" "src/sciprep/codec/CMakeFiles/sciprep_codec.dir/cosmo_codec.cpp.o.d"
  "/root/repo/src/sciprep/codec/registry.cpp" "src/sciprep/codec/CMakeFiles/sciprep_codec.dir/registry.cpp.o" "gcc" "src/sciprep/codec/CMakeFiles/sciprep_codec.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sciprep/common/CMakeFiles/sciprep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sciprep/io/CMakeFiles/sciprep_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sciprep/sim/CMakeFiles/sciprep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sciprep/compress/CMakeFiles/sciprep_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
