file(REMOVE_RECURSE
  "libsciprep_codec.a"
)
