# Empty dependencies file for sciprep_codec.
# This may be replaced when dependencies are built.
