file(REMOVE_RECURSE
  "CMakeFiles/sciprep_codec.dir/cam_codec.cpp.o"
  "CMakeFiles/sciprep_codec.dir/cam_codec.cpp.o.d"
  "CMakeFiles/sciprep_codec.dir/cosmo_codec.cpp.o"
  "CMakeFiles/sciprep_codec.dir/cosmo_codec.cpp.o.d"
  "CMakeFiles/sciprep_codec.dir/registry.cpp.o"
  "CMakeFiles/sciprep_codec.dir/registry.cpp.o.d"
  "libsciprep_codec.a"
  "libsciprep_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
