# Empty compiler generated dependencies file for sciprep_compress.
# This may be replaced when dependencies are built.
