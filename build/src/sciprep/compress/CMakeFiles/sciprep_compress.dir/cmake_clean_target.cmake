file(REMOVE_RECURSE
  "libsciprep_compress.a"
)
