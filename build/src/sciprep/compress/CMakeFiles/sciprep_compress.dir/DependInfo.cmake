
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sciprep/compress/deflate.cpp" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/deflate.cpp.o" "gcc" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/deflate.cpp.o.d"
  "/root/repo/src/sciprep/compress/gzip.cpp" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/gzip.cpp.o" "gcc" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/gzip.cpp.o.d"
  "/root/repo/src/sciprep/compress/huffman.cpp" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/huffman.cpp.o" "gcc" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/sciprep/compress/lz77.cpp" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/lz77.cpp.o" "gcc" "src/sciprep/compress/CMakeFiles/sciprep_compress.dir/lz77.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sciprep/common/CMakeFiles/sciprep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
