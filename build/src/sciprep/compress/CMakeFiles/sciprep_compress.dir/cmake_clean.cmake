file(REMOVE_RECURSE
  "CMakeFiles/sciprep_compress.dir/deflate.cpp.o"
  "CMakeFiles/sciprep_compress.dir/deflate.cpp.o.d"
  "CMakeFiles/sciprep_compress.dir/gzip.cpp.o"
  "CMakeFiles/sciprep_compress.dir/gzip.cpp.o.d"
  "CMakeFiles/sciprep_compress.dir/huffman.cpp.o"
  "CMakeFiles/sciprep_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/sciprep_compress.dir/lz77.cpp.o"
  "CMakeFiles/sciprep_compress.dir/lz77.cpp.o.d"
  "libsciprep_compress.a"
  "libsciprep_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
