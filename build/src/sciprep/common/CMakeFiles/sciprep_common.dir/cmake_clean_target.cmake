file(REMOVE_RECURSE
  "libsciprep_common.a"
)
