# Empty compiler generated dependencies file for sciprep_common.
# This may be replaced when dependencies are built.
