file(REMOVE_RECURSE
  "CMakeFiles/sciprep_common.dir/crc.cpp.o"
  "CMakeFiles/sciprep_common.dir/crc.cpp.o.d"
  "CMakeFiles/sciprep_common.dir/fp16.cpp.o"
  "CMakeFiles/sciprep_common.dir/fp16.cpp.o.d"
  "CMakeFiles/sciprep_common.dir/log.cpp.o"
  "CMakeFiles/sciprep_common.dir/log.cpp.o.d"
  "CMakeFiles/sciprep_common.dir/stats.cpp.o"
  "CMakeFiles/sciprep_common.dir/stats.cpp.o.d"
  "CMakeFiles/sciprep_common.dir/threadpool.cpp.o"
  "CMakeFiles/sciprep_common.dir/threadpool.cpp.o.d"
  "libsciprep_common.a"
  "libsciprep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
