
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sciprep/common/crc.cpp" "src/sciprep/common/CMakeFiles/sciprep_common.dir/crc.cpp.o" "gcc" "src/sciprep/common/CMakeFiles/sciprep_common.dir/crc.cpp.o.d"
  "/root/repo/src/sciprep/common/fp16.cpp" "src/sciprep/common/CMakeFiles/sciprep_common.dir/fp16.cpp.o" "gcc" "src/sciprep/common/CMakeFiles/sciprep_common.dir/fp16.cpp.o.d"
  "/root/repo/src/sciprep/common/log.cpp" "src/sciprep/common/CMakeFiles/sciprep_common.dir/log.cpp.o" "gcc" "src/sciprep/common/CMakeFiles/sciprep_common.dir/log.cpp.o.d"
  "/root/repo/src/sciprep/common/stats.cpp" "src/sciprep/common/CMakeFiles/sciprep_common.dir/stats.cpp.o" "gcc" "src/sciprep/common/CMakeFiles/sciprep_common.dir/stats.cpp.o.d"
  "/root/repo/src/sciprep/common/threadpool.cpp" "src/sciprep/common/CMakeFiles/sciprep_common.dir/threadpool.cpp.o" "gcc" "src/sciprep/common/CMakeFiles/sciprep_common.dir/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
