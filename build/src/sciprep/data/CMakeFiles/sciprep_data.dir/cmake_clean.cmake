file(REMOVE_RECURSE
  "CMakeFiles/sciprep_data.dir/cam_gen.cpp.o"
  "CMakeFiles/sciprep_data.dir/cam_gen.cpp.o.d"
  "CMakeFiles/sciprep_data.dir/cosmo_gen.cpp.o"
  "CMakeFiles/sciprep_data.dir/cosmo_gen.cpp.o.d"
  "libsciprep_data.a"
  "libsciprep_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
