file(REMOVE_RECURSE
  "libsciprep_data.a"
)
