# Empty dependencies file for sciprep_data.
# This may be replaced when dependencies are built.
