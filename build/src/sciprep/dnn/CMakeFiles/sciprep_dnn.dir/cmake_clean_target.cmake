file(REMOVE_RECURSE
  "libsciprep_dnn.a"
)
