file(REMOVE_RECURSE
  "CMakeFiles/sciprep_dnn.dir/layers.cpp.o"
  "CMakeFiles/sciprep_dnn.dir/layers.cpp.o.d"
  "CMakeFiles/sciprep_dnn.dir/loss.cpp.o"
  "CMakeFiles/sciprep_dnn.dir/loss.cpp.o.d"
  "CMakeFiles/sciprep_dnn.dir/optimizer.cpp.o"
  "CMakeFiles/sciprep_dnn.dir/optimizer.cpp.o.d"
  "libsciprep_dnn.a"
  "libsciprep_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
