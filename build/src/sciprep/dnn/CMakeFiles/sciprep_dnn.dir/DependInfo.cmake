
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sciprep/dnn/layers.cpp" "src/sciprep/dnn/CMakeFiles/sciprep_dnn.dir/layers.cpp.o" "gcc" "src/sciprep/dnn/CMakeFiles/sciprep_dnn.dir/layers.cpp.o.d"
  "/root/repo/src/sciprep/dnn/loss.cpp" "src/sciprep/dnn/CMakeFiles/sciprep_dnn.dir/loss.cpp.o" "gcc" "src/sciprep/dnn/CMakeFiles/sciprep_dnn.dir/loss.cpp.o.d"
  "/root/repo/src/sciprep/dnn/optimizer.cpp" "src/sciprep/dnn/CMakeFiles/sciprep_dnn.dir/optimizer.cpp.o" "gcc" "src/sciprep/dnn/CMakeFiles/sciprep_dnn.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sciprep/common/CMakeFiles/sciprep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
