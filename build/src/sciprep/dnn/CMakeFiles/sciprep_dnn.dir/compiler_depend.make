# Empty compiler generated dependencies file for sciprep_dnn.
# This may be replaced when dependencies are built.
