file(REMOVE_RECURSE
  "CMakeFiles/sciprep_apps.dir/measure.cpp.o"
  "CMakeFiles/sciprep_apps.dir/measure.cpp.o.d"
  "CMakeFiles/sciprep_apps.dir/models.cpp.o"
  "CMakeFiles/sciprep_apps.dir/models.cpp.o.d"
  "CMakeFiles/sciprep_apps.dir/trainer.cpp.o"
  "CMakeFiles/sciprep_apps.dir/trainer.cpp.o.d"
  "libsciprep_apps.a"
  "libsciprep_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
