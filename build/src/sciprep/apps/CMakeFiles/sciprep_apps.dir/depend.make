# Empty dependencies file for sciprep_apps.
# This may be replaced when dependencies are built.
