file(REMOVE_RECURSE
  "libsciprep_apps.a"
)
