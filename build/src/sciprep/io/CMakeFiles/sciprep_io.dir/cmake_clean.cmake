file(REMOVE_RECURSE
  "CMakeFiles/sciprep_io.dir/h5lite.cpp.o"
  "CMakeFiles/sciprep_io.dir/h5lite.cpp.o.d"
  "CMakeFiles/sciprep_io.dir/samples.cpp.o"
  "CMakeFiles/sciprep_io.dir/samples.cpp.o.d"
  "CMakeFiles/sciprep_io.dir/tfexample.cpp.o"
  "CMakeFiles/sciprep_io.dir/tfexample.cpp.o.d"
  "CMakeFiles/sciprep_io.dir/tfrecord.cpp.o"
  "CMakeFiles/sciprep_io.dir/tfrecord.cpp.o.d"
  "libsciprep_io.a"
  "libsciprep_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciprep_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
