file(REMOVE_RECURSE
  "libsciprep_io.a"
)
