# Empty compiler generated dependencies file for sciprep_io.
# This may be replaced when dependencies are built.
