
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sciprep/io/h5lite.cpp" "src/sciprep/io/CMakeFiles/sciprep_io.dir/h5lite.cpp.o" "gcc" "src/sciprep/io/CMakeFiles/sciprep_io.dir/h5lite.cpp.o.d"
  "/root/repo/src/sciprep/io/samples.cpp" "src/sciprep/io/CMakeFiles/sciprep_io.dir/samples.cpp.o" "gcc" "src/sciprep/io/CMakeFiles/sciprep_io.dir/samples.cpp.o.d"
  "/root/repo/src/sciprep/io/tfexample.cpp" "src/sciprep/io/CMakeFiles/sciprep_io.dir/tfexample.cpp.o" "gcc" "src/sciprep/io/CMakeFiles/sciprep_io.dir/tfexample.cpp.o.d"
  "/root/repo/src/sciprep/io/tfrecord.cpp" "src/sciprep/io/CMakeFiles/sciprep_io.dir/tfrecord.cpp.o" "gcc" "src/sciprep/io/CMakeFiles/sciprep_io.dir/tfrecord.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sciprep/common/CMakeFiles/sciprep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sciprep/compress/CMakeFiles/sciprep_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
