// Micro-benchmarks (google-benchmark) for the hot paths: codec encode/decode
// on CPU and SimGpu, the gzip baseline, FP16 conversion, TFRecord framing,
// and the end-to-end pipeline batch path. These feed the per-sample costs in
// EXPERIMENTS.md and let regressions in the decoders show up as numbers.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/compress/gzip.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/io/tfrecord.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace {

using namespace sciprep;

io::CosmoSample cosmo_sample(int dim) {
  data::CosmoGenConfig cfg;
  cfg.dim = dim;
  cfg.seed = 1001;
  return data::CosmoGenerator(cfg).generate(0);
}

io::CamSample cam_sample(int h, int w, int c) {
  data::CamGenConfig cfg;
  cfg.height = h;
  cfg.width = w;
  cfg.channels = c;
  cfg.seed = 1002;
  return data::CamGenerator(cfg).generate(0);
}

void BM_CosmoEncode(benchmark::State& state) {
  const auto sample = cosmo_sample(static_cast<int>(state.range(0)));
  const codec::CosmoCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode_sample(sample));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.byte_size()));
}
BENCHMARK(BM_CosmoEncode)->Arg(32)->Arg(64);

void BM_CosmoDecodeCpu(benchmark::State& state) {
  const auto sample = cosmo_sample(static_cast<int>(state.range(0)));
  const codec::CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_sample_cpu(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.byte_size()));
}
BENCHMARK(BM_CosmoDecodeCpu)->Arg(32)->Arg(64);

void BM_CosmoDecodeGpu(benchmark::State& state) {
  const auto sample = cosmo_sample(static_cast<int>(state.range(0)));
  const codec::CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_sample_gpu(encoded, gpu));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.byte_size()));
}
BENCHMARK(BM_CosmoDecodeGpu)->Arg(32)->Arg(64);

void BM_CosmoBaselinePreprocess(benchmark::State& state) {
  const auto sample = cosmo_sample(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::CosmoCodec::reference_preprocess_sample(sample));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.byte_size()));
}
BENCHMARK(BM_CosmoBaselinePreprocess)->Arg(32)->Arg(64);

void BM_CamEncode(benchmark::State& state) {
  const auto sample = cam_sample(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) * 3 / 2, 16);
  const codec::CamCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode_sample(sample));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.byte_size()));
}
BENCHMARK(BM_CamEncode)->Arg(96)->Arg(192);

void BM_CamDecodeCpu(benchmark::State& state) {
  const auto sample = cam_sample(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) * 3 / 2, 16);
  const codec::CamCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_sample_cpu(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.byte_size()));
}
BENCHMARK(BM_CamDecodeCpu)->Arg(96)->Arg(192);

void BM_CamDecodeGpu(benchmark::State& state) {
  const auto sample = cam_sample(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) * 3 / 2, 16);
  const codec::CamCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_sample_gpu(encoded, gpu));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.byte_size()));
}
BENCHMARK(BM_CamDecodeGpu)->Arg(96)->Arg(192);

void BM_GzipCompress(benchmark::State& state) {
  const auto sample = cosmo_sample(32);
  io::TfRecordWriter w;
  w.append(sample.serialize());
  const Bytes stream = std::move(w).take();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::gzip_compress(stream));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_GzipCompress);

void BM_GzipDecompress(benchmark::State& state) {
  const auto sample = cosmo_sample(32);
  io::TfRecordWriter w;
  w.append(sample.serialize());
  const Bytes stream = std::move(w).take();
  const Bytes zipped = compress::gzip_compress(stream);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::gzip_decompress(zipped));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_GzipDecompress);

void BM_Fp16Convert(benchmark::State& state) {
  std::vector<float> values(1 << 16);
  Rng rng(1);
  for (auto& v : values) v = static_cast<float>(rng.normal() * 100);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const float v : values) {
      acc += fp32_to_fp16_bits(v);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_Fp16Convert);

void BM_TfRecordRoundTrip(benchmark::State& state) {
  Bytes payload(1 << 20, 0x5A);
  for (auto _ : state) {
    io::TfRecordWriter w;
    w.append(payload);
    const Bytes stream = std::move(w).take();
    benchmark::DoNotOptimize(io::TfRecordReader::read_all(stream));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_TfRecordRoundTrip);

void BM_PipelineBatch(benchmark::State& state) {
  data::CosmoGenConfig cfg;
  cfg.dim = 32;
  cfg.seed = 5;
  const data::CosmoGenerator gen(cfg);
  const codec::CosmoCodec codec;
  const auto ds = pipeline::InMemoryDataset::make_cosmo(
      gen, 16, pipeline::StorageFormat::kEncoded, &codec, 4);
  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = 4;
  pcfg.prefetch = false;
  pipeline::DataPipeline pipe(ds, codec, pcfg);
  std::uint64_t epoch = 0;
  pipeline::Batch batch;
  for (auto _ : state) {
    if (!pipe.next_batch(batch)) {
      pipe.start_epoch(++epoch);
      pipe.next_batch(batch);
    }
    benchmark::DoNotOptimize(batch.samples.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_PipelineBatch);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::gbench_main(argc, argv, "micro_codecs");
}
