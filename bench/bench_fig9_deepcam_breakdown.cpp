// Figure 9 reproduction — DeepCAM per-sample time breakdown on Cori V100 and
// A100 (small set, staged, batch 4): host-CPU timeline vs device timeline
// for the baseline and the two plugins.
//
// Paper shape: baseline dominated by host preprocessing + H2D movement,
// which does NOT improve on the A100; the plugin removes host work and
// shrinks transfers, also calming the allreduce fluctuations.
#include <cstdio>

#include "bench_util.hpp"
#include "sciprep/apps/measure.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  using apps::LoaderConfig;
  const auto args = benchutil::parse_bench_args(argc, argv);
  perfscope::BenchReporter reporter("fig9_deepcam_breakdown");
  reporter.set_config("small-set batch=4");

  benchutil::print_header(
      "Figure 9 — DeepCAM time breakdown (ms/sample), small set, batch 4");
  std::printf("measuring codec paths on this host...\n\n");
  const auto base = apps::measure_cam(LoaderConfig::kBaseline);
  const auto cpu = apps::measure_cam(LoaderConfig::kCpuPlugin);
  const auto gpu = apps::measure_cam(LoaderConfig::kGpuPlugin);

  std::printf("%-10s %-11s | %-9s %-9s | %-7s %-9s %-9s %-9s | %-9s\n",
              "platform", "config", "io", "hostPrep", "h2d", "gpuDecode",
              "gpuModel", "allreduce", "step");
  for (const auto& platform : {sim::cori_v100(), sim::cori_a100()}) {
    const auto scenario =
        benchutil::make_scenario(platform, 1536, true, 4, /*deepcam=*/true);
    struct Named {
      const char* name;
      const sim::WorkloadProfile* profile;
    };
    for (const Named& cfg :
         {Named{"base", &base.profile}, Named{"cpu-plugin", &cpu.profile},
          Named{"gpu-plugin", &gpu.profile}}) {
      const auto b = sim::model_step(scenario, *cfg.profile);
      std::printf(
          "%-10s %-11s | %-9.2f %-9.2f | %-7.2f %-9.2f %-9.2f %-9.2f | "
          "%-9.2f\n",
          platform.name.c_str(), cfg.name, b.io_read * 1e3, b.host_work * 1e3,
          b.h2d * 1e3, b.gpu_decode * 1e3, b.gpu_compute * 1e3,
          b.allreduce * 1e3, b.step_seconds() * 1e3);
    }
    std::printf("\n");
  }
  std::printf(
      "paper: baseline host preprocessing + data movement do not improve on\n"
      "the A100; the plugin exposes the accelerator's raw speed and reduces\n"
      "allreduce contention (contention term visible in the allreduce "
      "column).\n");

  const auto v100 = benchutil::make_scenario(sim::cori_v100(), 1536, true, 4,
                                             /*deepcam=*/true);
  const auto b_base = sim::model_step(v100, base.profile);
  const auto b_gpu = sim::model_step(v100, gpu.profile);
  reporter.add_metric("step_seconds.cori_v100.baseline",
                      b_base.step_seconds(), "seconds", "modeled",
                      /*better_higher=*/false);
  reporter.add_metric("step_seconds.cori_v100.gpu_plugin",
                      b_gpu.step_seconds(), "seconds", "modeled",
                      /*better_higher=*/false);
  reporter.add_metric("host_prep_seconds.baseline", base.profile.host_seconds,
                      "seconds", "measured", /*better_higher=*/false);
  reporter.charge_sim_seconds(b_base.step_seconds() + b_gpu.step_seconds());
  benchutil::finish(args, reporter);
  return 0;
}
