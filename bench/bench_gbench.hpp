// --json-out support for the google-benchmark micro suites.
//
// The plain figure benches build their sciprep.perf.bench.v1 records by hand
// (bench_util.hpp); the gbench binaries instead capture every finished run
// through a custom BenchmarkReporter and emit one record with a
// `<BM_Name>.cpu_seconds` / `<BM_Name>.real_seconds` metric pair per
// benchmark (per-iteration, better=lower). Replace BENCHMARK_MAIN() with:
//
//   int main(int argc, char** argv) {
//     return benchutil::gbench_main(argc, argv, "obs_overhead");
//   }
//
// Every other gbench flag (--benchmark_filter, --benchmark_format, ...) is
// passed through untouched; --json-out FILE is stripped before
// benchmark::Initialize sees it.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sciprep/perfscope/benchreport.hpp"

namespace benchutil {

/// The normal console reporter, additionally capturing every finished run
/// into a BenchReporter. (The display-reporter slot is used because gbench
/// refuses a file reporter unless --benchmark_out is also given.)
class BenchRecordReporter : public benchmark::ConsoleReporter {
 public:
  explicit BenchRecordReporter(sciprep::perfscope::BenchReporter* out)
      : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const std::string name = run.benchmark_name();
      // Micro timings jitter; give the gate a floor of 2 ns/iteration so a
      // sub-nanosecond wobble on a one-atomic-op benchmark never fails it.
      constexpr double kFloorSeconds = 2e-9;
      out_->add_metric(name + ".cpu_seconds", run.cpu_accumulated_time / iters,
                       "seconds", "measured", /*better_higher=*/false,
                       kFloorSeconds);
      out_->add_metric(name + ".real_seconds",
                       run.real_accumulated_time / iters, "seconds",
                       "measured", /*better_higher=*/false, kFloorSeconds);
    }
  }

 private:
  sciprep::perfscope::BenchReporter* out_;
};

/// Drop-in BENCHMARK_MAIN() replacement adding --json-out.
inline int gbench_main(int argc, char** argv, const char* bench_name) {
  std::string json_out;
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  pass.push_back(nullptr);

  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data())) return 1;

  sciprep::perfscope::BenchReporter reporter(bench_name);
  reporter.set_config("default");
  BenchRecordReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();

  if (!json_out.empty()) {
    reporter.write(json_out);
    std::printf("bench record: -> %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace benchutil
