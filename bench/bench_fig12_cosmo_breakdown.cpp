// Figure 12 reproduction — CosmoFlow per-sample time breakdown (small set,
// batch 4) on Summit and Cori-V100 for base, gzip, and the plugin.
//
// Paper shape: the baseline is dominated by host CPU preprocessing, leaving
// the GPU underutilized; gzip decompression is cheaper on Cori but still
// slows the end-to-end run; the plugin removes the host bottleneck and
// reveals the raw V100/A100 performance; Summit's NVLink shrinks the
// baseline's H2D cost relative to Cori's PCIe 3.0.
#include <cstdio>

#include "bench_util.hpp"
#include "sciprep/apps/measure.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  using apps::LoaderConfig;
  const auto args = benchutil::parse_bench_args(argc, argv);
  perfscope::BenchReporter reporter("fig12_cosmo_breakdown");
  reporter.set_config("small-set batch=4");

  benchutil::print_header(
      "Figure 12 — CosmoFlow time breakdown (ms/sample), small set, batch 4");
  std::printf("measuring codec paths on this host...\n\n");
  const auto base = apps::measure_cosmo(LoaderConfig::kBaseline);
  const auto gz = apps::measure_cosmo(LoaderConfig::kGzip);
  const auto plug = apps::measure_cosmo(LoaderConfig::kGpuPlugin);

  std::printf("%-10s %-8s | %-9s %-9s | %-7s %-9s %-9s %-9s | %-9s\n",
              "platform", "config", "io", "hostPrep", "h2d", "gpuDecode",
              "gpuModel", "allreduce", "step");
  for (const auto& platform : {sim::summit(), sim::cori_v100()}) {
    const std::uint64_t samples_per_node =
        128ull * static_cast<std::uint64_t>(platform.gpus_per_node);
    const auto scenario = benchutil::make_scenario(platform, samples_per_node,
                                                   true, 4, /*deepcam=*/false);
    struct Named {
      const char* name;
      const sim::WorkloadProfile* profile;
    };
    for (const Named& cfg :
         {Named{"base", &base.profile}, Named{"gzip", &gz.profile},
          Named{"plugin", &plug.profile}}) {
      const auto b = sim::model_step(scenario, *cfg.profile);
      std::printf(
          "%-10s %-8s | %-9.2f %-9.2f | %-7.2f %-9.3f %-9.2f %-9.2f | "
          "%-9.2f\n",
          platform.name.c_str(), cfg.name, b.io_read * 1e3, b.host_work * 1e3,
          b.h2d * 1e3, b.gpu_decode * 1e3, b.gpu_compute * 1e3,
          b.allreduce * 1e3, b.step_seconds() * 1e3);
    }
    std::printf("\n");
  }

  const double decode_pct =
      100.0 * plug.profile.gpu_decode_host_seconds /
      (plug.profile.gpu_decode_host_seconds + 1e-12 +
       plug.profile.host_seconds);
  (void)decode_pct;
  std::printf(
      "paper: decode overhead < 1%% of per-sample processing for CosmoFlow;\n"
      "see the gpuDecode column vs the step total above.\n");

  const auto v100 = benchutil::make_scenario(
      sim::cori_v100(),
      128ull * static_cast<std::uint64_t>(sim::cori_v100().gpus_per_node),
      true, 4, /*deepcam=*/false);
  const auto b_base = sim::model_step(v100, base.profile);
  const auto b_plug = sim::model_step(v100, plug.profile);
  reporter.add_metric("step_seconds.cori_v100.baseline",
                      b_base.step_seconds(), "seconds", "modeled",
                      /*better_higher=*/false);
  reporter.add_metric("step_seconds.cori_v100.plugin", b_plug.step_seconds(),
                      "seconds", "modeled", /*better_higher=*/false);
  reporter.add_metric("decode_fraction.plugin", decode_pct / 100.0,
                      "fraction", "measured", /*better_higher=*/false,
                      /*noise_floor=*/0.01);
  reporter.charge_sim_seconds(b_base.step_seconds() + b_plug.step_seconds());
  benchutil::finish(args, reporter);
  return 0;
}
