// Micro-benchmarks for the fault layer's zero-fault hot path.
//
// The robustness layer must cost ≈ nothing when healthy. Three tiers:
//   - NoInjector: injection compiled in but no injector installed — the
//     production configuration; the per-sample cost is one pointer test.
//   - ZeroFaultInjector: an injector installed with every probability at
//     zero — the cost is a config lookup per gate, no draws, no copies.
//   - ActiveInjection: 5% transient + 1% corrupt under a retry+skip policy —
//     the degraded case, for scale.
// The acceptance bar is <1% throughput delta between the first two tiers on
// the full pipeline loop.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace {

using namespace sciprep;

const pipeline::InMemoryDataset& shared_dataset() {
  static const codec::CosmoCodec codec;
  static const pipeline::InMemoryDataset dataset = [] {
    data::CosmoGenConfig cfg;
    cfg.dim = 16;
    cfg.seed = 3;
    const data::CosmoGenerator gen(cfg);
    return pipeline::InMemoryDataset::make_cosmo(
        gen, 32, pipeline::StorageFormat::kEncoded, &codec);
  }();
  return dataset;
}

const codec::CosmoCodec& shared_codec() {
  static const codec::CosmoCodec codec;
  return codec;
}

enum class Tier { kNoInjector, kZeroFaultInjector, kActiveInjection };

void run_pipeline_epochs(benchmark::State& state, Tier tier) {
  obs::MetricsRegistry registry;
  fault::Injector injector(99, &registry);
  if (tier == Tier::kActiveInjection) {
    injector.configure(fault::Site::kIoRead, {.transient_probability = 0.05});
    injector.configure(fault::Site::kCodecDecode,
                       {.corrupt_probability = 0.01});
  }
  pipeline::PipelineConfig cfg;
  cfg.batch_size = 8;
  cfg.worker_threads = 2;
  cfg.prefetch = false;
  cfg.metrics = &registry;
  cfg.injector = tier == Tier::kNoInjector ? nullptr : &injector;
  if (tier != Tier::kNoInjector) {
    cfg.fault_policy.on_transient = fault::Action::kRetry;
    cfg.fault_policy.retry = {.max_attempts = 3, .backoff_seconds = 0};
    cfg.fault_policy.on_retry_exhausted = fault::Action::kSkipSample;
    cfg.fault_policy.on_corrupt = fault::Action::kSkipSample;
    cfg.fault_policy.error_budget = ~0ull;
  }
  pipeline::DataPipeline pipe(shared_dataset(), shared_codec(), cfg);

  std::uint64_t epoch = 0;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    pipe.start_epoch(epoch++);
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      samples += static_cast<std::uint64_t>(batch.size());
      benchmark::DoNotOptimize(batch.samples.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
}

void BM_PipelineEpoch_NoInjector(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kNoInjector);
}
BENCHMARK(BM_PipelineEpoch_NoInjector)->Unit(benchmark::kMillisecond);

void BM_PipelineEpoch_ZeroFaultInjector(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kZeroFaultInjector);
}
BENCHMARK(BM_PipelineEpoch_ZeroFaultInjector)->Unit(benchmark::kMillisecond);

void BM_PipelineEpoch_ActiveInjection(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kActiveInjection);
}
BENCHMARK(BM_PipelineEpoch_ActiveInjection)->Unit(benchmark::kMillisecond);

// Single-sample decode, isolating the per-gate cost without pool/batch
// machinery around it.
void run_decode_sample(benchmark::State& state, Tier tier) {
  obs::MetricsRegistry registry;
  fault::Injector injector(99, &registry);
  pipeline::PipelineConfig cfg;
  cfg.worker_threads = 1;
  cfg.prefetch = false;
  cfg.shuffle = false;
  cfg.metrics = &registry;
  cfg.injector = tier == Tier::kNoInjector ? nullptr : &injector;
  pipeline::DataPipeline pipe(shared_dataset(), shared_codec(), cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.decode_sample(i));
    i = (i + 1) % shared_dataset().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DecodeSample_NoInjector(benchmark::State& state) {
  run_decode_sample(state, Tier::kNoInjector);
}
BENCHMARK(BM_DecodeSample_NoInjector);

void BM_DecodeSample_ZeroFaultInjector(benchmark::State& state) {
  run_decode_sample(state, Tier::kZeroFaultInjector);
}
BENCHMARK(BM_DecodeSample_ZeroFaultInjector);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::gbench_main(argc, argv, "fault_overhead");
}
