// Shared helpers for the figure/table reproduction benches: aligned table
// printing and the standard platform/scenario knobs (loader workers and
// per-batch framework overhead per platform, see DESIGN.md §5).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sciprep/common/format.hpp"
#include "sciprep/obs/obs.hpp"
#include "sciprep/sim/platform.hpp"
#include "sciprep/sim/stepmodel.hpp"

namespace benchutil {

/// Observability outputs shared by the bench mains.
struct ObsFlags {
  std::string trace_out;    // --trace-out FILE: span timeline (Chrome JSON)
  std::string metrics_out;  // --metrics-out FILE: metrics registry dump
};

/// Parse --trace-out / --metrics-out and enable the global tracer when a
/// trace was requested. Unknown flags are ignored (benches keep their own
/// positional arguments).
inline ObsFlags parse_obs_flags(int argc, char** argv) {
  ObsFlags flags;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace-out") {
      flags.trace_out = argv[++i];
    } else if (a == "--metrics-out") {
      flags.metrics_out = argv[++i];
    }
  }
  if (!flags.trace_out.empty()) {
    sciprep::obs::Tracer::global().set_enabled(true);
  }
  return flags;
}

/// Write whichever outputs were requested (call at the end of main).
inline void write_obs_outputs(const ObsFlags& flags) {
  if (!flags.trace_out.empty()) {
    sciprep::obs::Tracer::global().write_chrome_json(flags.trace_out);
    std::printf("trace: %zu spans -> %s\n",
                sciprep::obs::Tracer::global().size(),
                flags.trace_out.c_str());
  }
  if (!flags.metrics_out.empty()) {
    sciprep::obs::MetricsRegistry::global().write_json(flags.metrics_out);
    std::printf("metrics: -> %s\n", flags.metrics_out.c_str());
  }
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    line += sciprep::fmt("{:<1}", "");
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < w) {
      cell.append(static_cast<std::size_t>(w) - cell.size(), ' ');
    }
    line += cell + "  ";
  }
  std::printf("%s\n", line.c_str());
}

/// Loader workers feeding each GPU. The PyTorch loader (DeepCAM) scales with
/// the cores available per GPU — Summit has 42 P9 cores per 6 GPUs (7/GPU).
/// The tf.data pipeline (CosmoFlow) is limited by its own intra-op
/// parallelism and effectively uses the default 4 everywhere, which is why
/// Summit's slower cores hurt the CosmoFlow baseline more (§IX.B).
inline int workers_for(const sciprep::sim::PlatformModel& platform,
                       bool deepcam) {
  return (deepcam && platform.name == "Summit") ? 7 : 4;
}

/// Per-batch framework/device overhead. §IX.A observes a much larger
/// per-step software overhead for the PyTorch stack on Summit's ppc64le —
/// applied to the DeepCAM scenarios only.
inline double deepcam_batch_overhead(const sciprep::sim::PlatformModel& platform) {
  return platform.name == "Summit" ? 0.22 : 0.004;
}

/// Build a scenario. DeepCAM dataset sizes are quoted per *node* (1536 /
/// 12288), CosmoFlow per *GPU* (128 / 2048) — pass `samples_per_node`
/// already resolved.
inline sciprep::sim::StepScenario make_scenario(
    const sciprep::sim::PlatformModel& platform,
    std::uint64_t samples_per_node, bool staged, int batch_size,
    bool deepcam) {
  sciprep::sim::StepScenario s;
  s.platform = platform;
  s.samples_per_node = samples_per_node;
  s.staged = staged;
  s.batch_size = batch_size;
  s.cpu_workers_per_gpu = workers_for(platform, deepcam);
  s.device_overhead_per_batch_seconds =
      deepcam ? deepcam_batch_overhead(platform) : 0.004;
  return s;
}

}  // namespace benchutil
