// Shared helpers for the figure/table reproduction benches: one flag parser
// for every bench main (positional knobs + --trace-out/--metrics-out/
// --json-out), aligned table printing, and the standard platform/scenario
// knobs (loader workers and per-batch framework overhead per platform, see
// DESIGN.md §5).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sciprep/common/format.hpp"
#include "sciprep/obs/obs.hpp"
#include "sciprep/perfscope/benchreport.hpp"
#include "sciprep/sim/platform.hpp"
#include "sciprep/sim/stepmodel.hpp"

namespace benchutil {

/// The command line every bench main shares. Flags take a value argument;
/// anything that is not a recognised flag stays a positional knob, so the
/// historic `bench_figN <dim> <samples>` invocations are unchanged and
/// `--json-out` lands in exactly one place instead of sixteen.
struct BenchArgs {
  std::vector<std::string> positional;
  std::string trace_out;    // --trace-out FILE: span timeline (Chrome JSON)
  std::string metrics_out;  // --metrics-out FILE: metrics registry dump
  std::string json_out;     // --json-out FILE: sciprep.perf.bench.v1 record

  /// Positional knob `index` as int, or `fallback` when absent.
  [[nodiscard]] int pos_int(std::size_t index, int fallback) const {
    return index < positional.size() ? std::atoi(positional[index].c_str())
                                     : fallback;
  }
};

/// Parse the shared flags and enable the global tracer when a trace was
/// requested. Unknown `--flags` are ignored (forward compatibility); bare
/// words are collected as positional knobs.
inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace-out" && i + 1 < argc) {
      args.trace_out = argv[++i];
    } else if (a == "--metrics-out" && i + 1 < argc) {
      args.metrics_out = argv[++i];
    } else if (a == "--json-out" && i + 1 < argc) {
      args.json_out = argv[++i];
    } else if (a.rfind("--", 0) == 0) {
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) ++i;
    } else {
      args.positional.push_back(a);
    }
  }
  if (!args.trace_out.empty()) {
    sciprep::obs::Tracer::global().set_enabled(true);
  }
  return args;
}

/// Write whichever outputs were requested — call once at the end of main.
/// The reporter is written only when --json-out was given, so benches build
/// their record unconditionally and stay branch-free.
inline void finish(const BenchArgs& args,
                   const sciprep::perfscope::BenchReporter& reporter) {
  if (!args.trace_out.empty()) {
    sciprep::obs::Tracer::global().write_chrome_json(args.trace_out);
    std::printf("trace: %zu spans -> %s\n",
                sciprep::obs::Tracer::global().size(), args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    sciprep::obs::MetricsRegistry::global().write_json(args.metrics_out);
    std::printf("metrics: -> %s\n", args.metrics_out.c_str());
  }
  if (!args.json_out.empty()) {
    reporter.write(args.json_out);
    std::printf("bench record: -> %s\n", args.json_out.c_str());
  }
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    line += sciprep::fmt("{:<1}", "");
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < w) {
      cell.append(static_cast<std::size_t>(w) - cell.size(), ' ');
    }
    line += cell + "  ";
  }
  std::printf("%s\n", line.c_str());
}

/// Loader workers feeding each GPU. The PyTorch loader (DeepCAM) scales with
/// the cores available per GPU — Summit has 42 P9 cores per 6 GPUs (7/GPU).
/// The tf.data pipeline (CosmoFlow) is limited by its own intra-op
/// parallelism and effectively uses the default 4 everywhere, which is why
/// Summit's slower cores hurt the CosmoFlow baseline more (§IX.B).
inline int workers_for(const sciprep::sim::PlatformModel& platform,
                       bool deepcam) {
  return (deepcam && platform.name == "Summit") ? 7 : 4;
}

/// Per-batch framework/device overhead. §IX.A observes a much larger
/// per-step software overhead for the PyTorch stack on Summit's ppc64le —
/// applied to the DeepCAM scenarios only.
inline double deepcam_batch_overhead(const sciprep::sim::PlatformModel& platform) {
  return platform.name == "Summit" ? 0.22 : 0.004;
}

/// Build a scenario. DeepCAM dataset sizes are quoted per *node* (1536 /
/// 12288), CosmoFlow per *GPU* (128 / 2048) — pass `samples_per_node`
/// already resolved.
inline sciprep::sim::StepScenario make_scenario(
    const sciprep::sim::PlatformModel& platform,
    std::uint64_t samples_per_node, bool staged, int batch_size,
    bool deepcam) {
  sciprep::sim::StepScenario s;
  s.platform = platform;
  s.samples_per_node = samples_per_node;
  s.staged = staged;
  s.batch_size = batch_size;
  s.cpu_workers_per_gpu = workers_for(platform, deepcam);
  s.device_overhead_per_batch_seconds =
      deepcam ? deepcam_batch_overhead(platform) : 0.004;
  return s;
}

}  // namespace benchutil
