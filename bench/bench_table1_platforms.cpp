// Table I + Table II reproduction: the evaluated platform models and the
// software-stack inventory of this reproduction (codecs, storage formats,
// pipeline components standing in for the paper's framework stack).
#include <cstdio>

#include "bench_util.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/pipeline/dataset.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  const auto args = benchutil::parse_bench_args(argc, argv);
  perfscope::BenchReporter reporter("table1_platforms");
  reporter.set_config("presets");

  benchutil::print_header(
      "Table I — System architecture for evaluated systems (model presets)");
  const auto platforms = sim::all_platforms();
  const std::vector<int> w = {22, 12, 18, 14};
  benchutil::print_row({"", "Summit", "Cori V100", "Cori A100"}, w);
  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& p : platforms) cells.push_back(getter(p));
    benchutil::print_row(cells, w);
  };
  row("Host Processor (CPU)", [](const sim::PlatformModel& p) { return p.cpu_name; });
  row("CPU Freq (GHz)", [](const sim::PlatformModel& p) { return fmt("{:.2f}", p.cpu_freq_ghz); });
  row("Host Memory (GB)", [](const sim::PlatformModel& p) { return fmt("{}", static_cast<int>(p.host_memory_gb)); });
  row("CPU-GPU Interconnect", [](const sim::PlatformModel& p) {
    switch (p.host_link) {
      case sim::HostLink::kNvlink: return std::string("NVLink");
      case sim::HostLink::kPcie3: return std::string("PCIe Gen 3.0");
      case sim::HostLink::kPcie4: return std::string("PCIe Gen 4.0");
    }
    return std::string("?");
  });
  row("GPU", [](const sim::PlatformModel& p) { return p.gpu.name; });
  row("GPUs per node", [](const sim::PlatformModel& p) { return fmt("{}", p.gpus_per_node); });
  row("L2 Cache (MB)", [](const sim::PlatformModel& p) { return fmt("{}", static_cast<int>(p.gpu.l2_cache_mb)); });
  row("SM", [](const sim::PlatformModel& p) { return fmt("{}", p.gpu.sm_count); });
  row("Mem Capacity (GB)", [](const sim::PlatformModel& p) { return fmt("{}", static_cast<int>(p.gpu.mem_capacity_gb)); });
  row("BW to GPU Mem (TB/s)", [](const sim::PlatformModel& p) { return fmt("{:.1f}", p.gpu.mem_bandwidth_tbps); });
  row("GPU FP32 TF/s", [](const sim::PlatformModel& p) { return fmt("{:.1f}", p.gpu.fp32_tflops); });
  row("Tensorcore TF/s", [](const sim::PlatformModel& p) { return fmt("{}", static_cast<int>(p.gpu.tensorcore_tflops)); });
  row("NVMe Capacity (TB)", [](const sim::PlatformModel& p) { return fmt("{:.1f}", p.nvme_capacity_tb); });
  row("NVMe Read BW (GiB/s)", [](const sim::PlatformModel& p) { return fmt("{:.1f}", p.nvme_read_gibps); });

  benchutil::print_header(
      "Table II equivalent — software inventory of this reproduction");
  std::printf("workload   framework-role component      this repo\n");
  std::printf("CosmoFlow  TF input pipeline + TFRecord   sciprep::pipeline + io::TfRecord (masked CRC32C)\n");
  std::printf("CosmoFlow  tf.Example protobuf            io::TfExample (from-scratch wire codec)\n");
  std::printf("CosmoFlow  gzip TFRecordOptions           compress::gzip (from-scratch DEFLATE)\n");
  std::printf("DeepCAM    PyTorch loader + HDF5          sciprep::pipeline + io::h5lite\n");
  std::printf("both       DALI plugin                    codec::SampleCodec registry (cpu/gpu placement)\n");
  std::printf("both       CUDA device                    sim::SimGpu (warp-lockstep engine + Table I scaling)\n");
  std::printf("both       AMP mixed precision            common::Half (SW binary16) + FP32 master compute\n");

  const codec::CosmoCodec cosmo;
  const codec::CamCodec cam;
  std::printf("\nregistered codec plugins: %s, %s\n", cosmo.name().c_str(),
              cam.name().c_str());
  reporter.add_metric("platform_presets", static_cast<double>(platforms.size()),
                      "count", "measured");
  benchutil::finish(args, reporter);
  return 0;
}
