// Figure 6 reproduction — DeepCAM training-loss trajectory with base (FP32)
// vs decoded (lossy FP16) samples under an identical learning schedule.
// Paper result: "identical convergence behavior".
//
// Run at miniature scale (the substrate trains a DeepCAM-style FCN on
// synthetic climate samples); batch 2 as in the paper's single-GPU setup.
#include <cstdio>

#include "bench_util.hpp"
#include "sciprep/apps/models.hpp"
#include "sciprep/apps/trainer.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/data/cam_gen.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int nsamples = args.pos_int(0, 24);
  const int epochs = args.pos_int(1, 6);
  perfscope::BenchReporter reporter("fig6_deepcam_convergence");
  reporter.set_config(fmt("nsamples={} epochs={}", nsamples, epochs));

  data::CamGenConfig cfg;
  cfg.height = 48;
  cfg.width = 64;
  cfg.channels = 8;
  cfg.seed = 66;
  cfg.cyclone_rate = 3.0;
  const data::CamGenerator gen(cfg);
  const codec::CamCodec codec;

  auto build = [&](bool decoded) {
    std::vector<apps::Example> examples;
    for (int i = 0; i < nsamples; ++i) {
      const auto sample = gen.generate(static_cast<std::uint64_t>(i));
      apps::Example ex;
      if (decoded) {
        ex.input = apps::input_from_fp16(
            codec.decode_sample_cpu(codec.encode_sample(sample)));
      } else {
        ex.input = apps::cam_input_fp32(sample);
      }
      ex.pixel_labels = sample.labels;
      examples.push_back(std::move(ex));
    }
    return examples;
  };

  apps::TrainConfig tc;
  tc.batch_size = 2;  // paper: "two samples processed per step"
  tc.epochs = epochs;
  tc.seed = 7;
  tc.sgd = {.learning_rate = 0.05F, .momentum = 0.9F, .weight_decay = 0.0F,
            .warmup_steps = 8, .decay_every = 0};
  tc.class_weights = {0.2F, 2.0F, 2.0F};

  benchutil::print_header(
      fmt("Figure 6 — DeepCAM loss: base (FP32) vs decoded (FP16), "
          "{} samples x {} epochs, batch 2",
          nsamples, epochs));

  auto base_examples = build(false);
  Rng rng_a(1234);
  auto model_a = apps::build_deepcam_model(cfg.channels, rng_a);
  const auto base = apps::train(*model_a, base_examples, tc);

  auto dec_examples = build(true);
  Rng rng_b(1234);  // identical initialization
  auto model_b = apps::build_deepcam_model(cfg.channels, rng_b);
  const auto dec = apps::train(*model_b, dec_examples, tc);

  std::printf("%-8s %-14s %-14s %-10s\n", "step", "loss(base)", "loss(decoded)",
              "rel.diff");
  for (std::size_t s = 0; s < base.step_losses.size(); ++s) {
    const double rel =
        std::abs(dec.step_losses[s] - base.step_losses[s]) /
        std::max(1e-9, std::abs(base.step_losses[s]));
    std::printf("%-8zu %-14.5f %-14.5f %-10.4f\n", s, base.step_losses[s],
                dec.step_losses[s], rel);
  }
  std::printf("\nepoch means:\n%-8s %-14s %-14s\n", "epoch", "base", "decoded");
  for (std::size_t e = 0; e < base.epoch_losses.size(); ++e) {
    std::printf("%-8zu %-14.5f %-14.5f\n", e, base.epoch_losses[e],
                dec.epoch_losses[e]);
  }
  const double final_gap =
      std::abs(dec.epoch_losses.back() - base.epoch_losses.back()) /
      std::max(1e-9, base.epoch_losses.back());
  std::printf(
      "\npaper: identical convergence; measured final-epoch gap %.1f%%\n",
      100.0 * final_gap);
  reporter.add_metric("final_epoch_loss.base", base.epoch_losses.back(),
                      "loss", "measured", /*better_higher=*/false);
  reporter.add_metric("final_epoch_gap", final_gap, "fraction", "measured",
                      /*better_higher=*/false, /*noise_floor=*/0.02);
  benchutil::finish(args, reporter);
  return 0;
}
