// Micro-benchmarks for the insight layer's healthy-path cost.
//
// Telemetry must be ≈ free while nothing is wrong. Three tiers over the same
// pipeline epoch loop:
//   - NoInsight: the bare pipeline — baseline.
//   - Exporter100ms: a live ContinuousExporter sampling the run's registry
//     every 100 ms into JSONL + Prometheus files. The per-sample cost is
//     zero (sampling happens on the exporter thread); what this measures is
//     the snapshot's lock contention against the hot counters.
//   - ExporterPlusRecorder: the same, plus an attached FlightRecorder. With
//     no faults injected, no recovery event ever fires: the healthy-path
//     cost is one std::function null-check per event site, i.e. nothing.
//   - ExporterPlusResources: the same exporter with a perfscope
//     ResourceSampler on its pre_tick hook — every tick reads getrusage and
//     /proc/self/{status,io,stat} and republishes the proc.* gauges. The
//     reads cost tens of microseconds once per 100 ms, on the exporter
//     thread.
// The acceptance bar is <1% process-CPU delta between NoInsight and the
// instrumented tiers at the 100 ms interval.
//
// A standalone benchmark also prices one analyze_critical_path() call — it
// runs once per epoch at most, so milliseconds are acceptable; it must not
// be accidentally quadratic in span count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_gbench.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/insight/insight.hpp"
#include "sciprep/perfscope/resource.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace {

using namespace sciprep;

const pipeline::InMemoryDataset& shared_dataset() {
  static const codec::CosmoCodec codec;
  static const pipeline::InMemoryDataset dataset = [] {
    data::CosmoGenConfig cfg;
    cfg.dim = 16;
    cfg.seed = 3;
    const data::CosmoGenerator gen(cfg);
    return pipeline::InMemoryDataset::make_cosmo(
        gen, 32, pipeline::StorageFormat::kEncoded, &codec);
  }();
  return dataset;
}

const codec::CosmoCodec& shared_codec() {
  static const codec::CosmoCodec codec;
  return codec;
}

enum class Tier {
  kNoInsight,
  kExporter100ms,
  kExporterPlusRecorder,
  kExporterPlusResources
};

void run_pipeline_epochs(benchmark::State& state, Tier tier) {
  obs::MetricsRegistry registry;
  pipeline::PipelineConfig cfg;
  cfg.batch_size = 8;
  cfg.worker_threads = 2;
  cfg.prefetch = false;
  cfg.metrics = &registry;

  insight::FlightRecorderConfig fcfg;
  fcfg.dir = "bench_insight_incidents";
  fcfg.metrics = &registry;
  insight::FlightRecorder recorder(fcfg);
  if (tier == Tier::kExporterPlusRecorder) {
    cfg.on_recovery_event = recorder.listener();
  }

  perfscope::ResourceSampler sampler(&registry);
  insight::ExporterConfig ecfg;
  ecfg.interval_seconds = 0.1;
  ecfg.jsonl_path = "bench_insight_series.jsonl";
  ecfg.prom_path = "bench_insight_metrics.prom";
  ecfg.metrics = &registry;
  if (tier == Tier::kExporterPlusResources) {
    ecfg.pre_tick = sampler.exporter_hook();
  }
  insight::ContinuousExporter exporter(ecfg);
  if (tier != Tier::kNoInsight) exporter.start();

  pipeline::DataPipeline pipe(shared_dataset(), shared_codec(), cfg);

  std::uint64_t epoch = 0;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    pipe.start_epoch(epoch++);
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      samples += static_cast<std::uint64_t>(batch.size());
      benchmark::DoNotOptimize(batch.samples.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  exporter.stop();
  state.counters["export_ticks"] = static_cast<double>(exporter.ticks_total());
  state.counters["incidents"] =
      static_cast<double>(recorder.incidents_written());
  std::remove("bench_insight_series.jsonl");
  std::remove("bench_insight_metrics.prom");
}

// Judged on process CPU time, like the guard bench: the exporter thread's
// sampling work must show up in the number, and wall time on a loaded
// machine measures the scheduler instead.
void BM_PipelineEpoch_NoInsight(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kNoInsight);
}
BENCHMARK(BM_PipelineEpoch_NoInsight)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_PipelineEpoch_Exporter100ms(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kExporter100ms);
}
BENCHMARK(BM_PipelineEpoch_Exporter100ms)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_PipelineEpoch_ExporterPlusRecorder(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kExporterPlusRecorder);
}
BENCHMARK(BM_PipelineEpoch_ExporterPlusRecorder)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_PipelineEpoch_ExporterPlusResources(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kExporterPlusResources);
}
BENCHMARK(BM_PipelineEpoch_ExporterPlusResources)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

// One bare ResourceSampler::publish() — the cost each exporter tick adds
// when the proc.* gauges are wired in (paid once per interval, not per
// sample).
void BM_ResourcePublish(benchmark::State& state) {
  obs::MetricsRegistry registry;
  perfscope::ResourceSampler sampler(&registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.publish());
  }
}
BENCHMARK(BM_ResourcePublish)->Unit(benchmark::kMicrosecond);

// One full report build over a populated registry + span ring: the per-epoch
// analysis cost a --report-out run pays once.
void BM_AnalyzeCriticalPath(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer(1 << 14);
  for (int i = 0; i < 4096; ++i) {
    registry.histogram("pipeline.stage.io_read_seconds").record(1e-4);
    registry.histogram("pipeline.stage.decode_seconds").record(3e-4);
    registry.histogram("pipeline.stage.ops_seconds").record(5e-5);
    tracer.record("pipeline.io_read", "pipeline",
                  static_cast<std::uint64_t>(i) * 1000,
                  static_cast<std::uint64_t>(i) * 1000 + 100);
  }
  for (auto _ : state) {
    const insight::BottleneckReport report = insight::analyze_critical_path(
        {.metrics = &registry, .tracer = &tracer, .wall_seconds = 2.0,
         .workers = 2});
    benchmark::DoNotOptimize(report.stages.data());
  }
}
BENCHMARK(BM_AnalyzeCriticalPath)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::gbench_main(argc, argv, "insight_overhead");
}
