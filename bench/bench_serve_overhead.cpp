// Micro-benchmarks for the serve layer's healthy-path cost.
//
// A resident DataService must be ≈ free for the tenants it multiplexes.
// Four tiers over the same two-tenant workload (two seeds, one epoch of the
// shared 32-sample set per iteration, drained round-robin):
//   - BarePipelines: the two pipelines run directly, each on its own
//     2-worker pool — baseline.
//   - Served: the same two tenants through one DataService at its defaults
//     (stream verification off, cache off so both arms decode every
//     sample). What this prices is the service plumbing per batch: the
//     roster mutex, the lease beat, the stride-scheduled shared pool, and
//     the admission ledger — the <1% contract.
//   - ServedVerified: verify_stream on. The per-sample content CRC is the
//     opt-in cost of bit-identity proofs, and on small samples it is a real
//     fraction of decode — which is exactly why it is not the default.
//   - ServedCached: the shared decoded-sample cache on. The second tenant
//     hits the first tenant's decodes, so this tier is *faster* than bare —
//     the cache's win, not an overhead.
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/serve/service.hpp"

namespace {

using namespace sciprep;

constexpr std::size_t kSamples = 32;
constexpr std::size_t kBatch = 8;

const pipeline::InMemoryDataset& shared_dataset() {
  static const codec::CosmoCodec codec;
  static const pipeline::InMemoryDataset dataset = [] {
    data::CosmoGenConfig cfg;
    cfg.dim = 16;
    cfg.seed = 3;
    const data::CosmoGenerator gen(cfg);
    return pipeline::InMemoryDataset::make_cosmo(
        gen, kSamples, pipeline::StorageFormat::kEncoded, &codec);
  }();
  return dataset;
}

const codec::CosmoCodec& shared_codec() {
  static const codec::CosmoCodec codec;
  return codec;
}

pipeline::PipelineConfig tenant_config(std::uint64_t seed) {
  pipeline::PipelineConfig cfg;
  cfg.batch_size = kBatch;
  cfg.worker_threads = 2;
  cfg.prefetch = false;
  cfg.seed = seed;
  return cfg;
}

void BM_TwoPipelines_Bare(benchmark::State& state) {
  obs::MetricsRegistry reg_a;
  obs::MetricsRegistry reg_b;
  pipeline::PipelineConfig cfg_a = tenant_config(1);
  cfg_a.metrics = &reg_a;
  pipeline::PipelineConfig cfg_b = tenant_config(2);
  cfg_b.metrics = &reg_b;
  pipeline::DataPipeline pa(shared_dataset(), shared_codec(), cfg_a);
  pipeline::DataPipeline pb(shared_dataset(), shared_codec(), cfg_b);
  std::uint64_t epoch = 0;
  std::uint64_t samples = 0;
  pipeline::Batch batch;
  for (auto _ : state) {
    pa.start_epoch(epoch);
    pb.start_epoch(epoch);
    ++epoch;
    bool live_a = true;
    bool live_b = true;
    while (live_a || live_b) {
      if (live_a && (live_a = pa.next_batch(batch))) {
        samples += static_cast<std::uint64_t>(batch.size());
        benchmark::DoNotOptimize(batch.samples.data());
      }
      if (live_b && (live_b = pb.next_batch(batch))) {
        samples += static_cast<std::uint64_t>(batch.size());
        benchmark::DoNotOptimize(batch.samples.data());
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_TwoPipelines_Bare)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void run_served_epochs(benchmark::State& state, bool verify,
                       std::uint64_t cache_bytes) {
  obs::MetricsRegistry registry;
  serve::ServiceConfig scfg;
  scfg.worker_threads = 2;
  scfg.verify_stream = verify;
  scfg.cache.capacity_bytes = cache_bytes;
  scfg.metrics = &registry;
  serve::DataService service(shared_dataset(), shared_codec(), scfg);
  auto open = [&](const char* name, std::uint64_t seed) {
    serve::TenantSpec spec;
    spec.name = name;
    spec.pipeline = tenant_config(seed);
    spec.epochs = ~0ull;  // the benchmark loop decides how many actually run
    return service.open_session(std::move(spec)).session;
  };
  const int sa = open("a", 1);
  const int sb = open("b", 2);
  constexpr std::size_t kBatchesPerEpoch = (kSamples + kBatch - 1) / kBatch;
  std::uint64_t samples = 0;
  pipeline::Batch batch;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatchesPerEpoch; ++i) {
      service.next_batch(sa, batch);
      samples += static_cast<std::uint64_t>(batch.size());
      benchmark::DoNotOptimize(batch.samples.data());
      service.next_batch(sb, batch);
      samples += static_cast<std::uint64_t>(batch.size());
      benchmark::DoNotOptimize(batch.samples.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.counters["cache_hits"] =
      static_cast<double>(registry.counter_value("serve.cache.hits_total"));
  service.close_session(sa);
  service.close_session(sb);
}

void BM_TwoTenants_Served(benchmark::State& state) {
  run_served_epochs(state, /*verify=*/false, /*cache_bytes=*/0);
}
BENCHMARK(BM_TwoTenants_Served)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_TwoTenants_ServedVerified(benchmark::State& state) {
  run_served_epochs(state, /*verify=*/true, /*cache_bytes=*/0);
}
BENCHMARK(BM_TwoTenants_ServedVerified)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_TwoTenants_ServedCached(benchmark::State& state) {
  run_served_epochs(state, /*verify=*/false, /*cache_bytes=*/64ull << 20);
}
BENCHMARK(BM_TwoTenants_ServedCached)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

}  // namespace

int main(int argc, char** argv) {
  return benchutil::gbench_main(argc, argv, "serve_overhead");
}
