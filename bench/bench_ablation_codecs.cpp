// Ablation bench — isolates each design choice the paper motivates:
//   CosmoFlow codec: RLE broadcast stream on/off; fused log1p on the table
//     vs log1p over the full volume; lookup-table size cap (multi-table).
//   DeepCAM codec: segment-length cap sweep (error vs size); CHW vs HWC
//     output layout (the fused transpose); lossy error tail per setting.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <class F>
double timed_ms(F&& f, int repeat = 3) {
  const double t0 = now_seconds();
  for (int i = 0; i < repeat; ++i) f();
  return (now_seconds() - t0) * 1e3 / repeat;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sciprep;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int dim = args.pos_int(0, 64);
  perfscope::BenchReporter reporter("ablation_codecs");
  reporter.set_config(fmt("dim={}", dim));

  benchutil::print_header("Ablation — CosmoFlow codec design choices");
  {
    data::CosmoGenConfig cfg;
    cfg.dim = dim;
    cfg.seed = 55;
    const auto sample = data::CosmoGenerator(cfg).generate(0);
    std::printf("%-34s %-12s %-10s %-12s %-12s\n", "variant", "bytes", "ratio",
                "encode ms", "decode ms");
    struct Variant {
      const char* name;
      codec::CosmoEncodeOptions options;
    };
    const Variant variants[] = {
        {"default (rle, fused log1p)", {}},
        {"no RLE broadcast", {.fuse_log1p = true, .rle = false}},
        {"no fused log1p", {.fuse_log1p = false, .rle = true}},
        {"table cap 4096 (multi-table)",
         {.fuse_log1p = true, .rle = true, .max_groups_per_block = 4096}},
        {"table cap 256 (1-byte keys)",
         {.fuse_log1p = true, .rle = true, .max_groups_per_block = 256}},
    };
    for (const auto& v : variants) {
      const codec::CosmoCodec codec(v.options);
      Bytes encoded;
      const double enc = timed_ms([&] { encoded = codec.encode_sample(sample); }, 1);
      const double dec =
          timed_ms([&] { (void)codec.decode_sample_cpu(encoded); });
      const auto info = codec::CosmoCodec::inspect(encoded);
      std::printf("%-34s %-12zu %-10.2f %-12.1f %-12.2f  (%u tables)\n",
                  v.name, encoded.size(),
                  static_cast<double>(sample.byte_size()) / encoded.size(), enc,
                  dec, info.block_count);
    }
    // The fused-log1p win in isolation: table-only transform vs full volume.
    const codec::CosmoCodec fused;
    const Bytes encoded = fused.encode_sample(sample);
    const double plugin_dec =
        timed_ms([&] { (void)fused.decode_sample_cpu(encoded); });
    const double full_prep = timed_ms(
        [&] { (void)codec::CosmoCodec::reference_preprocess_sample(sample); });
    std::printf(
        "\nfused log1p on table vs full-volume preprocessing: %.2f ms vs "
        "%.2f ms (%.1fx)\n",
        plugin_dec, full_prep, full_prep / plugin_dec);
    reporter.add_metric("cosmo.decode_ms.fused", plugin_dec, "ms", "measured",
                        /*better_higher=*/false, /*noise_floor=*/0.05);
    reporter.add_metric("cosmo.fused_log1p_speedup", full_prep / plugin_dec,
                        "x", "measured", /*better_higher=*/true,
                        /*noise_floor=*/1.0);
  }

  benchutil::print_header("Ablation — DeepCAM codec design choices");
  {
    data::CamGenConfig cfg;
    cfg.height = 192;
    cfg.width = 288;
    cfg.channels = 16;
    cfg.seed = 56;
    const auto sample = data::CamGenerator(cfg).generate(0);

    // Normalized FP32 reference for the error tail.
    std::vector<float> reference(sample.value_count());
    for (int c = 0; c < sample.channels; ++c) {
      const float* plane = sample.image.data() +
                           static_cast<std::size_t>(c) * sample.pixel_count();
      double sum = 0;
      for (std::size_t i = 0; i < sample.pixel_count(); ++i) sum += plane[i];
      const double mean = sum / static_cast<double>(sample.pixel_count());
      double var = 0;
      for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
        var += (plane[i] - mean) * (plane[i] - mean);
      }
      var /= static_cast<double>(sample.pixel_count());
      const double inv = 1.0 / std::sqrt(std::max(var, 1e-12));
      for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
        reference[static_cast<std::size_t>(c) * sample.pixel_count() + i] =
            static_cast<float>((plane[i] - mean) * inv);
      }
    }

    std::printf("%-30s %-12s %-10s %-12s %-12s %-10s\n", "variant", "bytes",
                "ratio", "decode ms", ">10%err", "rawLines");
    for (const int seg_len : {32, 64, 256, 4096}) {
      codec::CamEncodeOptions opt;
      opt.max_segment_length = seg_len;
      const codec::CamCodec codec(opt);
      const Bytes encoded = codec.encode_sample(sample);
      codec::TensorF16 decoded;
      const double dec =
          timed_ms([&] { decoded = codec.decode_sample_cpu(encoded); });
      const auto info = codec::CamCodec::inspect(encoded);
      std::printf("%-30s %-12zu %-10.2f %-12.2f %-12.4f %-10llu\n",
                  fmt("segment cap {}", seg_len).c_str(), encoded.size(),
                  static_cast<double>(sample.byte_size()) / encoded.size(), dec,
                  codec::fraction_above_rel_error(reference, decoded.values),
                  static_cast<unsigned long long>(info.raw_lines));
    }

    // Fused transpose: decode directly to HWC vs CHW (same encoded bytes).
    const codec::CamCodec chw({}, {codec::CamLayout::kCHW});
    const codec::CamCodec hwc({}, {codec::CamLayout::kHWC});
    const Bytes encoded = chw.encode_sample(sample);
    const double t_chw = timed_ms([&] { (void)chw.decode_sample_cpu(encoded); });
    const double t_hwc = timed_ms([&] { (void)hwc.decode_sample_cpu(encoded); });
    sim::SimGpu g1({.sm_count = 16, .warps_per_sm = 4});
    sim::SimGpu g2({.sm_count = 16, .warps_per_sm = 4});
    (void)chw.decode_sample_gpu(encoded, g1);
    (void)hwc.decode_sample_gpu(encoded, g2);
    std::printf(
        "\nfused transpose: CHW decode %.2f ms, HWC decode %.2f ms; engine "
        "divergence CHW=%llu HWC=%llu (strided stores)\n",
        t_chw, t_hwc,
        static_cast<unsigned long long>(g1.lifetime_stats().divergent_branches),
        static_cast<unsigned long long>(g2.lifetime_stats().divergent_branches));
    reporter.add_metric("cam.decode_ms.chw", t_chw, "ms", "measured",
                        /*better_higher=*/false, /*noise_floor=*/0.5);
  }
  benchutil::finish(args, reporter);
  return 0;
}
