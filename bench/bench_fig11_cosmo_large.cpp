// Figure 11 reproduction — CosmoFlow node throughput for the large dataset
// (2048 samples/GPU) that does not fit in host memory uncompressed.
//
// Paper shape: staging improves the baseline up to ~1.5x on Cori (NVMe vs
// PFS streaming), within 10% on Summit; the plugin reaches up to an order of
// magnitude speedup — its encoded dataset still fits in DRAM.
#include <cstdio>

#include "bench_shard_axis.hpp"
#include "bench_util.hpp"
#include "sciprep/apps/measure.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/sim/memhier.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  using apps::LoaderConfig;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int dim = args.pos_int(0, 128);
  perfscope::BenchReporter reporter("fig11_cosmo_large");
  reporter.set_config(fmt("dim={}", dim));

  benchutil::print_header(
      fmt("Figure 11 — CosmoFlow throughput, large set (2048 samples/GPU), "
          "dim={}", dim));
  std::printf("measuring codec paths on this host...\n\n");
  const auto base = apps::measure_cosmo(LoaderConfig::kBaseline, dim);
  const auto gz = apps::measure_cosmo(LoaderConfig::kGzip, dim);
  const auto plug = apps::measure_cosmo(LoaderConfig::kGpuPlugin, dim);

  std::printf("%-10s %-9s %-6s | %-10s %-10s %-10s | %-10s | %-9s %-9s\n",
              "platform", "staging", "batch", "base", "gzip", "plugin",
              "plug-spdup", "base@",
              "plug@");
  for (const auto& platform : sim::all_platforms()) {
    const std::uint64_t samples_per_node =
        2048ull * static_cast<std::uint64_t>(platform.gpus_per_node);
    for (const bool staged : {true, false}) {
      for (const int batch : {1, 4}) {
        const auto scenario = benchutil::make_scenario(
            platform, samples_per_node, staged, batch, /*deepcam=*/false);
        const auto b_base = sim::model_step(scenario, base.profile);
        const auto b_gz = sim::model_step(scenario, gz.profile);
        const auto b_plug = sim::model_step(scenario, plug.profile);
        std::printf(
            "%-10s %-9s %-6d | %-10.1f %-10.1f %-10.1f | %-10.2f | %-9s "
            "%-9s\n",
            platform.name.c_str(), staged ? "staged" : "unstaged", batch,
            sim::node_samples_per_second(scenario, b_base),
            sim::node_samples_per_second(scenario, b_gz),
            sim::node_samples_per_second(scenario, b_plug),
            sim::node_samples_per_second(scenario, b_plug) /
                sim::node_samples_per_second(scenario, b_base),
            sim::residency_name(b_base.residency),
            sim::residency_name(b_plug.residency));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "('base@'/'plug@' show where each dataset resides in steady state —\n"
      "the encoded dataset fitting a faster level is the core mechanism.)\n");

  const std::uint64_t headline_samples =
      2048ull * static_cast<std::uint64_t>(sim::cori_v100().gpus_per_node);
  const auto headline = benchutil::make_scenario(
      sim::cori_v100(), headline_samples, /*staged=*/true, 1,
      /*deepcam=*/false);
  const double h_base = sim::node_samples_per_second(
      headline, sim::model_step(headline, base.profile));
  const double h_plug = sim::node_samples_per_second(
      headline, sim::model_step(headline, plug.profile));
  reporter.add_metric("samples_per_s.cori_v100.baseline", h_base, "samples/s",
                      "modeled");
  reporter.add_metric("samples_per_s.cori_v100.plugin", h_plug, "samples/s",
                      "modeled");
  reporter.add_metric("speedup.cori_v100.plugin_vs_base", h_plug / h_base,
                      "x", "modeled");
  const double headline_n = static_cast<double>(headline_samples);
  reporter.charge_sim_seconds(headline_n / h_base + headline_n / h_plug);

  // Rank-count axis, unstaged: the large set cannot be replicated per node,
  // so every rank reads the one shared store — the digest must still be
  // bit-identical at 1/2/4/8 ranks.
  {
    data::CosmoGenConfig gcfg;
    gcfg.dim = 16;
    gcfg.seed = 3;
    const data::CosmoGenerator gen(gcfg);
    const codec::CosmoCodec codec;
    const auto dataset = pipeline::InMemoryDataset::make_cosmo(
        gen, 64, pipeline::StorageFormat::kEncoded, &codec);
    benchutil::report_shard_rank_axis(reporter, dataset, codec, /*epochs=*/2,
                                      /*batch=*/4, /*staged=*/false);
  }
  benchutil::finish(args, reporter);
  return 0;
}
