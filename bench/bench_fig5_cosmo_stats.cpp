// Figure 5 reproduction — CosmoFlow sample content analysis:
//  (a) power-law frequency of unique values (log-log slope),
//  (b) unique value counts per sample,
//  (c) unique groups-of-4 counts (the lookup-table key-space), compared with
//      the combinatorial bound the paper quotes (~1.2e11 possibilities).
#include <cmath>
#include <cstdio>
#include <set>
#include <unordered_set>

#include "bench_util.hpp"
#include "sciprep/common/stats.hpp"
#include "sciprep/data/cosmo_gen.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int dim = args.pos_int(0, 128);
  const int nsamples = args.pos_int(1, 4);
  perfscope::BenchReporter reporter("fig5_cosmo_stats");
  reporter.set_config(fmt("dim={} nsamples={}", dim, nsamples));

  data::CosmoGenConfig cfg;
  cfg.dim = dim;
  cfg.seed = 2022;
  const data::CosmoGenerator gen(cfg);

  benchutil::print_header(
      fmt("Figure 5 — CosmoFlow sample statistics ({} samples, dim={})",
          nsamples, dim));
  std::printf(
      "paper (128^3): unique values ~ few hundred (e.g. 558); unique groups\n"
      "of 4 ~ tens of thousands (e.g. 36944 of 1.2e11 possible); frequency\n"
      "follows a power law.\n\n");

  std::printf("%-8s %-14s %-14s %-16s %-20s %-12s\n", "sample", "uniqueVals",
              "uniqueGroups", "possibleGroups", "coupling(poss/grp)",
              "plawSlope");
  for (int s = 0; s < nsamples; ++s) {
    const auto sample = gen.generate(static_cast<std::uint64_t>(s));
    std::set<std::int32_t> unique(sample.counts.begin(), sample.counts.end());
    FrequencyTable freq;
    for (const auto c : sample.counts) freq.add(c);
    std::unordered_set<std::uint64_t> groups;
    for (std::size_t v = 0; v < sample.counts.size(); v += 4) {
      std::uint64_t key = 1469598103934665603ull;
      for (int r = 0; r < 4; ++r) {
        key = (key ^ static_cast<std::uint64_t>(sample.counts[v + r])) *
              1099511628211ull;
      }
      groups.insert(key);
    }
    const double possible = std::pow(static_cast<double>(unique.size()), 4);
    std::printf("%-8d %-14zu %-14zu %-16.3e %-20.1f %-12.2f\n", s,
                unique.size(), groups.size(), possible,
                possible / static_cast<double>(groups.size()),
                freq.power_law_slope(64));
  }

  // Fig 5(a): rank-frequency table for one sample.
  const auto sample = gen.generate(0);
  FrequencyTable freq;
  for (const auto c : sample.counts) freq.add(c);
  std::printf("\nrank-frequency (sample 0, top 16 ranks):\n");
  std::printf("%-6s %-10s %-12s\n", "rank", "value", "frequency");
  const auto ranked = freq.by_frequency();
  for (std::size_t r = 0; r < std::min<std::size_t>(16, ranked.size()); ++r) {
    std::printf("%-6zu %-10lld %-12llu\n", r + 1,
                static_cast<long long>(ranked[r].first),
                static_cast<unsigned long long>(ranked[r].second));
  }

  std::set<std::int32_t> unique0(sample.counts.begin(), sample.counts.end());
  reporter.add_metric("unique_values.sample0",
                      static_cast<double>(unique0.size()), "count",
                      "measured");
  reporter.add_metric("power_law_slope.sample0", freq.power_law_slope(64),
                      "slope", "measured", /*better_higher=*/false,
                      /*noise_floor=*/0.5);
  benchutil::finish(args, reporter);
  return 0;
}
