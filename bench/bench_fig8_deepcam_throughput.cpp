// Figure 8 reproduction — DeepCAM node throughput (samples/s) on Summit,
// Cori-V100, Cori-A100 for small (1536/node) and large (12288/node) datasets,
// staged vs unstaged, batch sizes 2/4/8, comparing the baseline with the CPU
// and GPU decoder plugins.
//
// Paper shape to reproduce: plugins beat baseline on Cori (up to ~2.5x CPU,
// ~3x GPU, best on A100); baseline does not improve from V100 to A100 (PCIe
// bound); Summit's gain is limited (~1.3x, NVLink baseline + slower stack);
// the large dataset slows the baseline 1.2-2.4x; GPU plugin beats CPU plugin.
#include <cstdio>

#include "bench_shard_axis.hpp"
#include "bench_util.hpp"
#include "sciprep/apps/measure.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/data/cam_gen.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  using apps::LoaderConfig;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int height = args.pos_int(0, 768);
  const int width = args.pos_int(1, 1152);
  perfscope::BenchReporter reporter("fig8_deepcam_throughput");
  reporter.set_config(fmt("height={} width={}", height, width));

  benchutil::print_header(
      fmt("Figure 8 — DeepCAM throughput (samples/s per node), measured "
          "profiles at {}x{}x16", height, width));
  std::printf("measuring codec paths on this host...\n");
  const auto base = apps::measure_cam(LoaderConfig::kBaseline, height, width);
  const auto cpu = apps::measure_cam(LoaderConfig::kCpuPlugin, height, width);
  const auto gpu = apps::measure_cam(LoaderConfig::kGpuPlugin, height, width);
  std::printf("compression ratio: %.2fx; host decode %.1f ms (cpu plugin), "
              "baseline preprocess %.1f ms\n\n",
              cpu.compression_ratio, cpu.profile.host_seconds * 1e3,
              base.profile.host_seconds * 1e3);

  std::printf("%-10s %-7s %-9s %-6s | %-10s %-10s %-10s | %-9s %-9s\n",
              "platform", "dataset", "staging", "batch", "base", "cpu-plugin",
              "gpu-plugin", "cpu-spdup", "gpu-spdup");
  for (const auto& platform : sim::all_platforms()) {
    for (const std::uint64_t samples_per_node : {1536ull, 12288ull}) {
      for (const bool staged : {true, false}) {
        for (const int batch : {2, 4, 8}) {
          const auto scenario = benchutil::make_scenario(
              platform, samples_per_node, staged, batch, /*deepcam=*/true);
          const double t_base = sim::node_samples_per_second(
              scenario, sim::model_step(scenario, base.profile));
          const double t_cpu = sim::node_samples_per_second(
              scenario, sim::model_step(scenario, cpu.profile));
          const double t_gpu = sim::node_samples_per_second(
              scenario, sim::model_step(scenario, gpu.profile));
          std::printf(
              "%-10s %-7llu %-9s %-6d | %-10.1f %-10.1f %-10.1f | %-9.2f "
              "%-9.2f\n",
              platform.name.c_str(),
              static_cast<unsigned long long>(samples_per_node),
              staged ? "staged" : "unstaged", batch, t_base, t_cpu, t_gpu,
              t_cpu / t_base, t_gpu / t_base);
        }
      }
    }
    std::printf("\n");
  }

  // Headline checks against the paper.
  const auto v100_small = benchutil::make_scenario(sim::cori_v100(), 1536,
                                                   true, 4, true);
  const auto a100_small = benchutil::make_scenario(sim::cori_a100(), 1536,
                                                   true, 4, true);
  const double base_v = sim::node_samples_per_second(
      v100_small, sim::model_step(v100_small, base.profile));
  const double base_a = sim::node_samples_per_second(
      a100_small, sim::model_step(a100_small, base.profile));
  const double gpu_a = sim::node_samples_per_second(
      a100_small, sim::model_step(a100_small, gpu.profile));
  std::printf("paper: baseline A100 ~ baseline V100 (PCIe bound) -> measured "
              "ratio %.2f\n",
              base_a / base_v);
  std::printf("paper: GPU plugin up to ~3.1x on Cori-A100 -> measured %.2fx\n",
              gpu_a / base_a);

  reporter.add_metric("decode_seconds.cpu_plugin", cpu.profile.host_seconds,
                      "seconds", "measured", /*better_higher=*/false);
  reporter.add_metric("preprocess_seconds.baseline",
                      base.profile.host_seconds, "seconds", "measured",
                      /*better_higher=*/false);
  reporter.add_metric("samples_per_s.cori_v100.baseline", base_v, "samples/s",
                      "modeled");
  reporter.add_metric("samples_per_s.cori_a100.gpu_plugin", gpu_a,
                      "samples/s", "modeled");
  reporter.add_metric("speedup.cori_a100.gpu_vs_base", gpu_a / base_a, "x",
                      "modeled");
  // §5 contract: the modeled headline step times are sim-charged, the codec
  // measurement above is wall.
  reporter.charge_sim_seconds(1536.0 / base_v + 1536.0 / gpu_a);

  // Rank-count axis: the same DeepCAM-shaped workload (reduced frames) run
  // through the in-process ShardCoordinator at 1/2/4/8 ranks — digest must
  // stay bit-identical, throughput flat (sharding overhead < 1% per rank).
  {
    data::CamGenConfig gcfg;
    gcfg.height = 16;
    gcfg.width = 24;
    gcfg.channels = 4;
    gcfg.seed = 11;
    const data::CamGenerator gen(gcfg);
    const codec::CamCodec codec;
    const auto dataset = pipeline::InMemoryDataset::make_cam(
        gen, 48, pipeline::StorageFormat::kEncoded, &codec);
    benchutil::report_shard_rank_axis(reporter, dataset, codec);
  }
  benchutil::finish(args, reporter);
  return 0;
}
