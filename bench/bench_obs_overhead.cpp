// Micro-benchmarks for sciprep::obs overhead on the decode hot path.
//
// Quantifies the three costs the observability layer can add:
//   - a runtime-disabled ScopedSpan (one relaxed atomic load) — the price
//     every instrumented call site pays in a default build doing no tracing;
//   - an enabled ScopedSpan (two clock reads + a ring-buffer record);
//   - a registry counter add (one relaxed atomic fetch-add).
// The decode benchmarks run the full CosmoFlow CPU decode with the tracer
// off vs on, showing the per-sample effect in context. Build with
// -DSCIPREP_OBS_DISABLED=ON and rerun to measure the compiled-out floor
// (the *_TracerOff and *_SpanDisabled numbers collapse to zero overhead).
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/obs/obs.hpp"

namespace {

using namespace sciprep;

Bytes make_encoded_sample() {
  data::CosmoGenConfig cfg;
  cfg.dim = 16;
  cfg.seed = 3;
  const data::CosmoGenerator gen(cfg);
  const codec::CosmoCodec codec;
  return codec.encode_sample(gen.generate(0));
}

void BM_DecodeCpuTracerOff(benchmark::State& state) {
  const codec::CosmoCodec codec;
  const Bytes encoded = make_encoded_sample();
  obs::Tracer::global().set_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_cpu(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_DecodeCpuTracerOff);

void BM_DecodeCpuTracerOn(benchmark::State& state) {
  const codec::CosmoCodec codec;
  const Bytes encoded = make_encoded_sample();
  obs::Tracer::global().set_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_cpu(encoded));
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_DecodeCpuTracerOn);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  obs::Tracer::global().set_enabled(false);
  for (auto _ : state) {
    SCIPREP_OBS_SPAN("bench.noop", "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  obs::Tracer::global().set_enabled(true);
  for (auto _ : state) {
    SCIPREP_OBS_SPAN("bench.span", "bench");
    benchmark::ClobberMemory();
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
}
BENCHMARK(BM_ScopedSpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::global().counter("bench.counter_total");
  for (auto _ : state) {
    counter.add(1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& hist =
      obs::MetricsRegistry::global().histogram("bench.latency_seconds");
  double v = 1e-6;
  for (auto _ : state) {
    hist.record(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::gbench_main(argc, argv, "obs_overhead");
}
