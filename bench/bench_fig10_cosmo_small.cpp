// Figure 10 reproduction — CosmoFlow node throughput for the small dataset
// (128 samples/GPU), batch sizes 1-8, comparing the uncompressed TFRecord
// baseline, the gzip-compressed TFRecord baseline, and the decoder plugin
// (GPU placement — the paper omits the slower CPU variant for CosmoFlow).
//
// Paper shape: plugin gives 5-8x on Summit, 3-4x on Cori; gzip REDUCES
// throughput by up to 1.5x; base V100 ~ base A100; base is batch-insensitive.
#include <cstdio>

#include "bench_shard_axis.hpp"
#include "bench_util.hpp"
#include "sciprep/apps/measure.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  using apps::LoaderConfig;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int dim = args.pos_int(0, 128);
  perfscope::BenchReporter reporter("fig10_cosmo_small");
  reporter.set_config(fmt("dim={}", dim));

  benchutil::print_header(
      fmt("Figure 10 — CosmoFlow throughput, small set (128 samples/GPU), "
          "dim={}", dim));
  std::printf("measuring codec paths on this host...\n");
  const auto base = apps::measure_cosmo(LoaderConfig::kBaseline, dim);
  const auto gz = apps::measure_cosmo(LoaderConfig::kGzip, dim);
  const auto plug = apps::measure_cosmo(LoaderConfig::kGpuPlugin, dim);
  std::printf(
      "stored bytes/sample: raw %.1f MiB, gzip %.1f MiB (%.2fx), encoded "
      "%.1f MiB (%.2fx)\n\n",
      base.profile.bytes_at_rest / 1048576.0, gz.profile.bytes_at_rest / 1048576.0,
      gz.compression_ratio, plug.profile.bytes_at_rest / 1048576.0,
      plug.compression_ratio);

  std::printf("%-10s %-9s %-6s | %-10s %-10s %-10s | %-10s %-10s\n",
              "platform", "staging", "batch", "base", "gzip", "plugin",
              "plug-spdup", "gzip-slowdn");
  for (const auto& platform : sim::all_platforms()) {
    const std::uint64_t samples_per_node =
        128ull * static_cast<std::uint64_t>(platform.gpus_per_node);
    for (const bool staged : {true, false}) {
      for (const int batch : {1, 2, 4, 8}) {
        const auto scenario = benchutil::make_scenario(
            platform, samples_per_node, staged, batch, /*deepcam=*/false);
        const double t_base = sim::node_samples_per_second(
            scenario, sim::model_step(scenario, base.profile));
        const double t_gz = sim::node_samples_per_second(
            scenario, sim::model_step(scenario, gz.profile));
        const double t_plug = sim::node_samples_per_second(
            scenario, sim::model_step(scenario, plug.profile));
        std::printf(
            "%-10s %-9s %-6d | %-10.1f %-10.1f %-10.1f | %-10.2f %-10.2f\n",
            platform.name.c_str(), staged ? "staged" : "unstaged", batch,
            t_base, t_gz, t_plug, t_plug / t_base, t_base / t_gz);
      }
    }
    std::printf("\n");
  }

  const auto summit = benchutil::make_scenario(sim::summit(), 128ull * 6, true,
                                               1, false);
  const double s_base = sim::node_samples_per_second(
      summit, sim::model_step(summit, base.profile));
  const double s_plug = sim::node_samples_per_second(
      summit, sim::model_step(summit, plug.profile));
  std::printf("paper: Summit speedup 5-8x (largest at batch 1) -> measured "
              "%.1fx at batch 1\n", s_plug / s_base);

  reporter.add_metric("compression_ratio.plugin", plug.compression_ratio, "x",
                      "measured");
  reporter.add_metric("samples_per_s.summit.baseline", s_base, "samples/s",
                      "modeled");
  reporter.add_metric("samples_per_s.summit.plugin", s_plug, "samples/s",
                      "modeled");
  reporter.add_metric("speedup.summit.plugin_vs_base", s_plug / s_base, "x",
                      "modeled");
  reporter.charge_sim_seconds(128.0 * 6 / s_base + 128.0 * 6 / s_plug);

  // Rank-count axis: the small CosmoFlow set (reduced dim) through the
  // in-process ShardCoordinator at 1/2/4/8 ranks — merged stream digest
  // must be bit-identical at every rank count.
  {
    data::CosmoGenConfig gcfg;
    gcfg.dim = 16;
    gcfg.seed = 3;
    const data::CosmoGenerator gen(gcfg);
    const codec::CosmoCodec codec;
    const auto dataset = pipeline::InMemoryDataset::make_cosmo(
        gen, 64, pipeline::StorageFormat::kEncoded, &codec);
    benchutil::report_shard_rank_axis(reporter, dataset, codec);
  }
  benchutil::finish(args, reporter);
  return 0;
}
