// Figure 7 reproduction — CosmoFlow loss trajectories over multiple runs
// (the MLPerf HPC guidelines require repeated runs; convergence is known to
// vary widely). Compares base (FP32) vs decoded (FP16) samples: the paper
// observes the decoded samples converge at least as well, with reduced
// variability.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sciprep/apps/models.hpp"
#include "sciprep/apps/trainer.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/stats.hpp"
#include "sciprep/data/cosmo_gen.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int runs = args.pos_int(0, 16);  // paper: 16 repetitions
  const int nsamples = args.pos_int(1, 16);
  const int epochs = args.pos_int(2, 5);
  const int dim = 16;
  perfscope::BenchReporter reporter("fig7_cosmo_convergence");
  reporter.set_config(
      fmt("runs={} nsamples={} epochs={} dim={}", runs, nsamples, epochs, dim));

  data::CosmoGenConfig cfg;
  cfg.dim = dim;
  cfg.seed = 77;
  const data::CosmoGenerator gen(cfg);
  const codec::CosmoCodec codec;

  auto build = [&](bool decoded) {
    std::vector<apps::Example> examples;
    for (int i = 0; i < nsamples; ++i) {
      const auto sample = gen.generate(static_cast<std::uint64_t>(i));
      apps::Example ex;
      ex.input = decoded ? apps::cosmo_input_from_fp16(codec.decode_sample_cpu(
                               codec.encode_sample(sample)))
                         : apps::cosmo_input_fp32(sample);
      ex.regression_target.assign(sample.params.begin(), sample.params.end());
      examples.push_back(std::move(ex));
    }
    return examples;
  };

  benchutil::print_header(
      fmt("Figure 7 — CosmoFlow loss across {} runs: base vs decoded "
          "({} samples, dim={}, {} epochs)",
          runs, nsamples, dim, epochs));

  auto run_arm = [&](bool decoded) {
    std::vector<std::vector<double>> curves;
    auto examples = build(decoded);
    for (int r = 0; r < runs; ++r) {
      Rng rng(1000 + static_cast<std::uint64_t>(r));  // per-run weight init
      auto model = apps::build_cosmoflow_model(dim, rng);
      apps::TrainConfig tc;
      tc.batch_size = 4;
      tc.epochs = epochs;
      tc.seed = static_cast<std::uint64_t>(r);  // per-run shuffling
      tc.sgd = {.learning_rate = 0.02F, .momentum = 0.9F, .weight_decay = 0.0F,
                .warmup_steps = 4, .decay_every = 0};
      curves.push_back(apps::train(*model, examples, tc).epoch_losses);
    }
    return curves;
  };

  const auto base = run_arm(false);
  const auto dec = run_arm(true);

  std::printf("%-8s %-12s %-12s %-12s %-12s %-12s %-12s\n", "epoch",
              "base.mean", "base.min", "base.max", "dec.mean", "dec.min",
              "dec.max");
  for (int e = 0; e < epochs; ++e) {
    RunningStats sb;
    RunningStats sd;
    for (int r = 0; r < runs; ++r) {
      sb.add(base[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)]);
      sd.add(dec[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)]);
    }
    std::printf("%-8d %-12.5f %-12.5f %-12.5f %-12.5f %-12.5f %-12.5f\n", e,
                sb.mean(), sb.min(), sb.max(), sd.mean(), sd.min(), sd.max());
  }

  RunningStats final_base;
  RunningStats final_dec;
  for (int r = 0; r < runs; ++r) {
    final_base.add(base[static_cast<std::size_t>(r)].back());
    final_dec.add(dec[static_cast<std::size_t>(r)].back());
  }
  std::printf(
      "\nfinal epoch: base mean=%.5f sd=%.5f | decoded mean=%.5f sd=%.5f\n",
      final_base.mean(), final_base.stddev(), final_dec.mean(),
      final_dec.stddev());
  std::printf(
      "paper: decoded samples converge at least as well (lower loss, reduced\n"
      "variability); measured decoded/base final-loss ratio = %.3f,\n"
      "variability ratio = %.3f\n",
      final_dec.mean() / std::max(1e-12, final_base.mean()),
      final_dec.stddev() / std::max(1e-12, final_base.stddev()));
  reporter.add_metric("final_loss_ratio.dec_vs_base",
                      final_dec.mean() / std::max(1e-12, final_base.mean()),
                      "ratio", "measured", /*better_higher=*/false,
                      /*noise_floor=*/0.05);
  reporter.add_metric("final_loss.base_mean", final_base.mean(), "loss",
                      "measured", /*better_higher=*/false);
  benchutil::finish(args, reporter);
  return 0;
}
