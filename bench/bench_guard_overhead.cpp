// Micro-benchmarks for the guard layer's healthy-path cost.
//
// Robustness must be ≈ free when nothing goes wrong. Three tiers:
//   - NoGuard: no cancel token, no deadlines, no checkpointing — the
//     baseline pipeline; per sample the guard layer costs a thread-local
//     pointer test at each cancellation point.
//   - WatchdogArmed: a cancel token plus generous per-stage deadlines that
//     never expire — the supervised production configuration; each guarded
//     stage pays a child-token allocation and one watchdog map insert/erase.
//   - WatchdogPlusCheckpoint: the same, plus a crash-consistent snapshot
//     written to disk every 32 delivered batches — the full guard stack.
// The acceptance bar is <1% throughput delta between NoGuard and
// WatchdogPlusCheckpoint on the full pipeline loop.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_gbench.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/guard/guard.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace {

using namespace sciprep;

const pipeline::InMemoryDataset& shared_dataset() {
  static const codec::CosmoCodec codec;
  static const pipeline::InMemoryDataset dataset = [] {
    data::CosmoGenConfig cfg;
    cfg.dim = 16;
    cfg.seed = 3;
    const data::CosmoGenerator gen(cfg);
    return pipeline::InMemoryDataset::make_cosmo(
        gen, 32, pipeline::StorageFormat::kEncoded, &codec);
  }();
  return dataset;
}

const codec::CosmoCodec& shared_codec() {
  static const codec::CosmoCodec codec;
  return codec;
}

enum class Tier { kNoGuard, kWatchdogArmed, kWatchdogPlusCheckpoint };

void run_pipeline_epochs(benchmark::State& state, Tier tier) {
  obs::MetricsRegistry registry;
  pipeline::PipelineConfig cfg;
  cfg.batch_size = 8;
  cfg.worker_threads = 2;
  cfg.prefetch = false;
  cfg.metrics = &registry;
  if (tier != Tier::kNoGuard) {
    cfg.cancel = guard::CancelToken::make();
    // Generous deadlines: armed and supervised, never tripped.
    cfg.deadlines.io_read_seconds = 60;
    cfg.deadlines.decode_seconds = 60;
    cfg.deadlines.gunzip_seconds = 60;
    cfg.deadlines.prefetch_wait_seconds = 60;
  }
  const std::string checkpoint_path = "bench_guard_checkpoint.bin";
  guard::Checkpointer checkpointer(checkpoint_path, 32, &registry);
  pipeline::DataPipeline pipe(shared_dataset(), shared_codec(), cfg);

  std::uint64_t epoch = 0;
  std::uint64_t samples = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    pipe.start_epoch(epoch++);
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      samples += static_cast<std::uint64_t>(batch.size());
      benchmark::DoNotOptimize(batch.samples.data());
      if (tier == Tier::kWatchdogPlusCheckpoint &&
          checkpointer.due(++delivered)) {
        checkpointer.write(pipe.snapshot());
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
  state.counters["checkpoints"] =
      static_cast<double>(checkpointer.written_total());
  std::remove(checkpoint_path.c_str());
}

// Overhead is judged on process CPU time, not wall: the pipeline runs worker
// threads, so wall time on a loaded machine measures the scheduler, while
// process CPU sums the actual decode + guard work across every thread.
void BM_PipelineEpoch_NoGuard(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kNoGuard);
}
BENCHMARK(BM_PipelineEpoch_NoGuard)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_PipelineEpoch_WatchdogArmed(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kWatchdogArmed);
}
BENCHMARK(BM_PipelineEpoch_WatchdogArmed)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_PipelineEpoch_WatchdogPlusCheckpoint(benchmark::State& state) {
  run_pipeline_epochs(state, Tier::kWatchdogPlusCheckpoint);
}
BENCHMARK(BM_PipelineEpoch_WatchdogPlusCheckpoint)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

// Single-sample decode with and without armed stage deadlines, isolating the
// per-stage arm/disarm cost without pool/batch machinery around it.
void run_decode_sample(benchmark::State& state, Tier tier) {
  obs::MetricsRegistry registry;
  pipeline::PipelineConfig cfg;
  cfg.worker_threads = 1;
  cfg.prefetch = false;
  cfg.shuffle = false;
  cfg.metrics = &registry;
  if (tier != Tier::kNoGuard) {
    cfg.deadlines.io_read_seconds = 60;
    cfg.deadlines.decode_seconds = 60;
  }
  pipeline::DataPipeline pipe(shared_dataset(), shared_codec(), cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.decode_sample(i));
    i = (i + 1) % shared_dataset().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DecodeSample_NoGuard(benchmark::State& state) {
  run_decode_sample(state, Tier::kNoGuard);
}
BENCHMARK(BM_DecodeSample_NoGuard);

void BM_DecodeSample_WatchdogArmed(benchmark::State& state) {
  run_decode_sample(state, Tier::kWatchdogArmed);
}
BENCHMARK(BM_DecodeSample_WatchdogArmed);

// Absolute cost of one guarded stage: child-token allocation, watchdog
// arm/disarm, and the scope install/restore. A decoded sample passes through
// at most three of these (io.read, gunzip, decode), so the per-sample guard
// cost is ~3x this number — to be read against the ~90us sample decode above.
void BM_StageGuardArmDisarm(benchmark::State& state) {
  obs::MetricsRegistry registry;
  guard::Watchdog watchdog(&registry);
  const guard::CancelToken root = guard::CancelToken::make();
  const guard::CancelScope ambient(root);
  for (auto _ : state) {
    const guard::StageGuard g(&watchdog, "decode", 60.0);
    benchmark::DoNotOptimize(guard::current_token());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StageGuardArmDisarm);

// The snapshot itself: serialize + atomic write of a realistic checkpoint.
void BM_SnapshotWrite(benchmark::State& state) {
  guard::Snapshot s;
  s.config_fingerprint = 0x1234;
  s.epoch = 2;
  s.cursor = 16384;
  s.batch_index = 2048;
  s.samples = 40000;
  s.batches = 5000;
  s.bytes_at_rest = 1ull << 32;
  for (std::uint64_t id = 0; id < 64; ++id) s.quarantine.push_back(id * 7);
  const std::string path = "bench_guard_snapshot.bin";
  for (auto _ : state) {
    guard::write_snapshot(path, s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotWrite);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::gbench_main(argc, argv, "guard_overhead");
}
