// §V reproduction — compressibility analysis for both workloads:
//   * CosmoFlow: lookup-table ratio (~4x in the paper) vs gzip (~5x), and
//     the table/key byte split,
//   * DeepCAM: differential-encoding ratio, per-line mode census
//     (constant / delta / raw), segment statistics, and the lossy error tail
//     ("roughly 3% of the values with larger than 10% error"),
//   * the unique-value factoring that makes fused log1p cheap.
#include <cmath>
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/compress/gzip.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  const auto args = benchutil::parse_bench_args(argc, argv);
  const int cosmo_dim = args.pos_int(0, 128);
  const int cam_h = args.pos_int(1, 768);
  const int cam_w = args.pos_int(2, 1152);
  perfscope::BenchReporter reporter("sec5_compression");
  reporter.set_config(
      fmt("cosmo_dim={} cam_h={} cam_w={}", cosmo_dim, cam_h, cam_w));

  benchutil::print_header("Section V.B — CosmoFlow compressibility");
  {
    data::CosmoGenConfig cfg;
    cfg.dim = cosmo_dim;
    cfg.seed = 31;
    const data::CosmoGenerator gen(cfg);
    const codec::CosmoCodec codec;
    std::printf("%-8s %-10s %-10s %-10s %-10s %-10s %-10s %-10s\n", "sample",
                "raw MiB", "lut MiB", "lutRatio", "gzip MiB", "gzipRatio",
                "tables", "groups");
    for (int s = 0; s < 3; ++s) {
      const auto sample = gen.generate(static_cast<std::uint64_t>(s));
      const Bytes raw = sample.serialize();
      const Bytes encoded = codec.encode_sample(sample);
      const Bytes zipped = compress::gzip_compress(raw);
      const auto info = codec::CosmoCodec::inspect(encoded);
      if (s == 0) {
        reporter.add_metric("cosmo.lut_ratio",
                            static_cast<double>(raw.size()) / encoded.size(),
                            "x", "measured");
        reporter.add_metric("cosmo.gzip_ratio",
                            static_cast<double>(raw.size()) / zipped.size(),
                            "x", "measured");
      }
      std::printf("%-8d %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f %-10u %-10llu\n",
                  s, raw.size() / 1048576.0, encoded.size() / 1048576.0,
                  static_cast<double>(raw.size()) / encoded.size(),
                  zipped.size() / 1048576.0,
                  static_cast<double>(raw.size()) / zipped.size(),
                  info.block_count,
                  static_cast<unsigned long long>(info.total_groups));
      // The fused-preprocessing ratio: log1p work on the table vs the volume.
      std::set<std::int32_t> unique(sample.counts.begin(), sample.counts.end());
      if (s == 0) {
        std::printf(
            "  fused log1p touches %llu table values instead of %zu volume "
            "values (%.0fx less work)\n",
            static_cast<unsigned long long>(info.total_groups * 4),
            sample.counts.size(),
            static_cast<double>(sample.counts.size()) /
                static_cast<double>(info.total_groups * 4));
      }
    }
    std::printf(
        "paper: table encoding ~4x vs gzip ~5x, but only the table decodes "
        "on the GPU.\n");
  }

  benchutil::print_header("Section V.A — DeepCAM compressibility & loss");
  {
    data::CamGenConfig cfg;
    cfg.height = cam_h;
    cfg.width = cam_w;
    cfg.channels = 16;
    cfg.seed = 32;
    const data::CamGenerator gen(cfg);
    const codec::CamCodec codec;
    std::printf("%-8s %-10s %-10s %-8s %-9s %-8s %-8s %-10s %-12s\n", "sample",
                "raw MiB", "enc MiB", "ratio", "constant", "delta", "raw",
                "segs/line", ">10%err");
    for (int s = 0; s < 3; ++s) {
      const auto sample = gen.generate(static_cast<std::uint64_t>(s));
      const Bytes raw = sample.serialize();
      const Bytes encoded = codec.encode_sample(sample);
      const auto info = codec::CamCodec::inspect(encoded);
      const auto decoded = codec.decode_sample_cpu(encoded);

      // Reference: FP32 normalized values.
      std::vector<float> reference(sample.value_count());
      for (int c = 0; c < sample.channels; ++c) {
        const float* plane = sample.image.data() +
                             static_cast<std::size_t>(c) * sample.pixel_count();
        double sum = 0;
        for (std::size_t i = 0; i < sample.pixel_count(); ++i) sum += plane[i];
        const double mean = sum / static_cast<double>(sample.pixel_count());
        double var = 0;
        for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
          var += (plane[i] - mean) * (plane[i] - mean);
        }
        var /= static_cast<double>(sample.pixel_count());
        const double inv = 1.0 / std::sqrt(std::max(var, 1e-12));
        for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
          reference[static_cast<std::size_t>(c) * sample.pixel_count() + i] =
              static_cast<float>((plane[i] - mean) * inv);
        }
      }
      const double bad =
          codec::fraction_above_rel_error(reference, decoded.values, 0.10);
      if (s == 0) {
        reporter.add_metric("cam.diff_ratio",
                            static_cast<double>(raw.size()) / encoded.size(),
                            "x", "measured");
        reporter.add_metric("cam.error_tail_gt10pct", bad, "fraction",
                            "measured", /*better_higher=*/false,
                            /*noise_floor=*/0.005);
      }
      std::printf(
          "%-8d %-10.2f %-10.2f %-8.2f %-9llu %-8llu %-8llu %-10.2f %-12.4f\n",
          s, raw.size() / 1048576.0, encoded.size() / 1048576.0,
          static_cast<double>(raw.size()) / encoded.size(),
          static_cast<unsigned long long>(info.constant_lines),
          static_cast<unsigned long long>(info.delta_lines),
          static_cast<unsigned long long>(info.raw_lines),
          static_cast<double>(info.segments) /
              std::max<std::uint64_t>(1, info.delta_lines),
          bad);
    }
    std::printf(
        "paper: ~3%% of values with >10%% error (near-zero values); the "
        ">10%%err column is the measured tail.\n");
  }
  benchutil::finish(args, reporter);
  return 0;
}
