// Rank-count axis for the figure benches (sciprep::shard, DESIGN.md §12):
// run the real ShardCoordinator over a reduced in-memory workload at world
// sizes {1, 2, 4, 8}, check the merged global stream digest is bit-identical
// at every rank count, and report measured throughput plus per-rank scaling
// efficiency through perfscope. The coordinator multiplexes all ranks onto
// one process, so aggregate throughput should be flat across world sizes —
// efficiency below ~1.0 is coordinator overhead, exactly the per-rank
// sharding cost the <1% contract bounds.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "sciprep/common/format.hpp"
#include "sciprep/perfscope/benchreport.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/shard/coordinator.hpp"

namespace benchutil {

/// One world size's measurement: wall-clock aggregate samples/s over
/// `epochs` full epochs, plus the run's merged stream digest.
struct ShardAxisPoint {
  int world = 0;
  double samples_per_s = 0;
  std::uint32_t stream_digest = 0;
  std::uint64_t samples = 0;
};

inline ShardAxisPoint run_shard_world(
    const sciprep::pipeline::InMemoryDataset& dataset,
    const sciprep::codec::SampleCodec& codec, int world, int epochs,
    int batch, bool staged) {
  namespace shard = sciprep::shard;
  shard::ShardConfig cfg;
  cfg.world = world;
  cfg.staged = staged;
  cfg.pipeline.batch_size = batch;
  cfg.pipeline.worker_threads = 2;
  cfg.pipeline.seed = 7;
  cfg.pipeline.prefetch = false;
  cfg.verify_stream = true;
  shard::ShardCoordinator coordinator(dataset, codec, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  shard::ShardBatch sb;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (coordinator.epoch() != static_cast<std::uint64_t>(epoch)) {
      coordinator.start_epoch(static_cast<std::uint64_t>(epoch));
    }
    while (coordinator.step(sb)) {
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ShardAxisPoint p;
  p.world = world;
  p.samples = coordinator.aggregate().totals.samples;
  p.samples_per_s = static_cast<double>(p.samples) / (wall > 0 ? wall : 1e-9);
  p.stream_digest = coordinator.digest().stream_digest();
  return p;
}

/// Run the rank-count axis and report it: a printed table plus
/// shard.samples_per_s.rN, shard.efficiency.rN (throughput at N ranks over
/// throughput at 1 — wall-measured, so the regression floor is generous),
/// and shard.digest_invariant (1.0 iff every world produced the identical
/// merged stream digest — the bit-reproducibility headline, exact).
inline void report_shard_rank_axis(
    sciprep::perfscope::BenchReporter& reporter,
    const sciprep::pipeline::InMemoryDataset& dataset,
    const sciprep::codec::SampleCodec& codec, int epochs = 2, int batch = 4,
    bool staged = true) {
  std::printf("\nrank-count axis (in-process ShardCoordinator, %zu samples, "
              "%d epochs, %s):\n",
              dataset.size(), epochs, staged ? "staged" : "unstaged");
  std::printf("%-6s %-12s %-11s %-10s\n", "ranks", "samples/s", "efficiency",
              "digest");
  ShardAxisPoint base;
  bool invariant = true;
  for (const int world : {1, 2, 4, 8}) {
    const ShardAxisPoint p =
        run_shard_world(dataset, codec, world, epochs, batch, staged);
    if (world == 1) base = p;
    invariant = invariant && p.stream_digest == base.stream_digest &&
                p.samples == base.samples;
    const double efficiency = p.samples_per_s / base.samples_per_s;
    std::printf("%-6d %-12.1f %-11.2f %08x\n", world, p.samples_per_s,
                efficiency, p.stream_digest);
    reporter.add_metric(sciprep::fmt("shard.samples_per_s.r{}", world),
                        p.samples_per_s, "samples/s", "measured",
                        /*better_higher=*/true, /*noise_floor=*/0.35);
    if (world > 1) {
      reporter.add_metric(sciprep::fmt("shard.efficiency.r{}", world),
                          efficiency, "x", "measured", /*better_higher=*/true,
                          /*noise_floor=*/0.35);
    }
  }
  std::printf("digest %s across rank counts {1,2,4,8}\n",
              invariant ? "BIT-IDENTICAL" : "DIVERGED");
  reporter.add_metric("shard.digest_invariant", invariant ? 1.0 : 0.0, "bool",
                      "measured", /*better_higher=*/true, /*noise_floor=*/0.0);
}

}  // namespace benchutil
