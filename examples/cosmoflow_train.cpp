// CosmoFlow end-to-end: dataset -> DataPipeline (GPU-placed decoder plugin)
// -> miniature 3D-conv regression model, training for a few epochs.
//
// This is the full integration the paper describes in §VI: the encoded
// TFRecord-replacement format feeds the training loop through the pipeline
// with no model changes, and the FP16 samples drop into the (emulated)
// mixed-precision step.
//
// Usage: cosmoflow_train [samples=24] [epochs=4] [dim=16]
#include <cstdio>

#include "sciprep/common/stats.hpp"
#include "sciprep/apps/models.hpp"
#include "sciprep/apps/trainer.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/dnn/loss.hpp"
#include "sciprep/dnn/optimizer.hpp"
#include "sciprep/pipeline/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  const int nsamples = argc > 1 ? std::atoi(argv[1]) : 24;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 4;
  const int dim = argc > 3 ? std::atoi(argv[3]) : 16;

  // Dataset in the encoded storage format.
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = dim;
  gen_cfg.seed = 2022;
  const data::CosmoGenerator generator(gen_cfg);
  const codec::CosmoCodec codec;
  const auto dataset = pipeline::InMemoryDataset::make_cosmo(
      generator, static_cast<std::size_t>(nsamples),
      pipeline::StorageFormat::kEncoded, &codec);
  std::printf("dataset: %zu encoded samples, %s at rest (%.2fx vs raw)\n",
              dataset.size(), format_bytes(dataset.total_bytes()).c_str(),
              static_cast<double>(nsamples) *
                  (static_cast<double>(dim) * dim * dim * 8) /
                  static_cast<double>(dataset.total_bytes()));

  // Pipeline: shuffled epochs, GPU-placed decode, prefetch.
  sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = 4;
  pcfg.seed = 7;
  pcfg.decode_placement = codec::Placement::kGpu;
  pipeline::DataPipeline pipe(dataset, codec, pcfg, &gpu);

  // Miniature CosmoFlow model + optimizer.
  Rng rng(11);
  auto model = apps::build_cosmoflow_model(dim, rng);
  dnn::Sgd optimizer(*model, {.learning_rate = 0.02F, .momentum = 0.9F,
                              .weight_decay = 0.0F, .warmup_steps = 4,
                              .decay_every = 0});

  for (int epoch = 0; epoch < epochs; ++epoch) {
    pipe.start_epoch(static_cast<std::uint64_t>(epoch));
    double epoch_loss = 0;
    std::size_t steps = 0;
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      double batch_loss = 0;
      for (const auto& tensor : batch.samples) {
        const dnn::Tensor input = apps::cosmo_input_from_fp16(tensor);
        const dnn::Tensor pred = model->forward(input);
        const auto loss = dnn::mse_loss(pred, tensor.float_labels);
        model->backward(loss.grad);
        batch_loss += loss.loss;
      }
      optimizer.step(static_cast<float>(batch.size()));
      epoch_loss += batch_loss / batch.size();
      ++steps;
    }
    std::printf("epoch %d: mean loss %.5f (%zu steps, lr %.4f)\n", epoch,
                epoch_loss / static_cast<double>(steps), steps,
                optimizer.current_lr());
  }

  const auto& stats = pipe.stats();
  std::printf(
      "\npipeline: %llu samples decoded on the device engine "
      "(%.1f ms total, %llu warps, %s moved)\n",
      static_cast<unsigned long long>(stats.samples),
      stats.decode_gpu_seconds * 1e3,
      static_cast<unsigned long long>(stats.gpu.warps),
      format_bytes(stats.gpu.bytes_total()).c_str());
  return 0;
}
