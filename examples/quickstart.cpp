// Quickstart: the core sciprep workflow in ~60 lines.
//
//   1. synthesize a CosmoFlow sample (stand-in for the N-body dataset),
//   2. encode it with the lookup-table codec,
//   3. decode it on the CPU and on the simulated GPU — with the log1p
//      preprocessing fused and FP16 output,
//   4. verify the decode matches the baseline preprocessing bit-for-bit.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "sciprep/common/stats.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/sim/simgpu.hpp"

int main() {
  using namespace sciprep;

  // 1. A 64^3 universe at 4 redshifts, labelled with its cosmological params.
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = 64;
  gen_cfg.seed = 42;
  const data::CosmoGenerator generator(gen_cfg);
  const io::CosmoSample sample = generator.generate(/*index=*/0);
  std::printf("sample: %d^3 voxels x 4 redshifts, %zu values, labels "
              "(Om=%.3f s8=%.3f ns=%.3f h=%.3f)\n",
              sample.dim, sample.value_count(), sample.params[0],
              sample.params[1], sample.params[2], sample.params[3]);

  // 2. Encode: unique groups of 4 redshift counts become table keys.
  const codec::CosmoCodec codec;  // defaults: fused log1p, RLE broadcast
  const Bytes encoded = codec.encode_sample(sample);
  const auto info = codec::CosmoCodec::inspect(encoded);
  std::printf("encoded: %zu -> %zu bytes (%.2fx), %u lookup table(s), "
              "%llu unique groups\n",
              sample.byte_size(), encoded.size(),
              static_cast<double>(sample.byte_size()) / encoded.size(),
              info.block_count,
              static_cast<unsigned long long>(info.total_groups));

  // 3a. CPU decode (what the CPU-placed DALI plugin does).
  const codec::TensorF16 on_cpu = codec.decode_sample_cpu(encoded);

  // 3b. GPU decode on the warp-lockstep engine (the GPU-placed plugin).
  sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
  const codec::TensorF16 on_gpu = codec.decode_sample_gpu(encoded, gpu);
  const auto& ks = gpu.lifetime_stats();
  std::printf("gpu decode: %llu warps, %s moved, %llu divergent branches\n",
              static_cast<unsigned long long>(ks.warps),
              format_bytes(ks.bytes_total()).c_str(),
              static_cast<unsigned long long>(ks.divergent_branches));

  // 4. Both decodes must equal the baseline preprocessing exactly: fp16
  //    output, log1p already applied, labels lossless.
  const codec::TensorF16 reference =
      codec::CosmoCodec::reference_preprocess_sample(sample);
  for (std::size_t i = 0; i < reference.values.size(); ++i) {
    if (on_cpu.values[i].bits() != reference.values[i].bits() ||
        on_gpu.values[i].bits() != reference.values[i].bits()) {
      std::printf("MISMATCH at value %zu\n", i);
      return 1;
    }
  }
  std::printf("verified: CPU and GPU decodes match the baseline "
              "preprocessing bit-for-bit (%zu FP16 values)\n",
              reference.values.size());
  return 0;
}
