// Compression explorer: writes a sample of either workload to disk in every
// storage variant (raw, gzip, codec), reads them back, and reports sizes,
// timings and decode quality — a small CLI for poking at the §V trade-offs.
//
// Usage: compression_explorer [cosmo|cam] [dim|height] [out_dir=/tmp]
#include <chrono>
#include <cstdio>
#include <string>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/compress/gzip.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/io/tfrecord.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <class F>
double timed(F&& f) {
  const double t0 = now_seconds();
  f();
  return (now_seconds() - t0) * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sciprep;
  const std::string workload = argc > 1 ? argv[1] : "cosmo";
  const int size = argc > 2 ? std::atoi(argv[2]) : (workload == "cosmo" ? 64 : 384);
  const std::string out_dir = argc > 3 ? argv[3] : "/tmp";

  std::printf("%-14s %-12s %-10s %-12s %-12s\n", "variant", "bytes", "ratio",
              "encode ms", "decode ms");

  if (workload == "cosmo") {
    data::CosmoGenConfig cfg;
    cfg.dim = size;
    cfg.seed = 1;
    const auto sample = data::CosmoGenerator(cfg).generate(0);
    const codec::CosmoCodec codec;

    io::TfRecordWriter w;
    w.append(sample.serialize());
    const Bytes raw = std::move(w).take();
    io::write_file(out_dir + "/sample.tfrecord", raw);

    Bytes zipped;
    const double gzip_enc = timed([&] { zipped = compress::gzip_compress(raw); });
    io::write_file(out_dir + "/sample.tfrecord.gz", zipped);
    double gzip_dec = timed([&] { (void)compress::gzip_decompress(zipped); });

    Bytes encoded;
    const double lut_enc = timed([&] { encoded = codec.encode_sample(sample); });
    io::write_file(out_dir + "/sample.cse", encoded);
    const Bytes back = io::read_file(out_dir + "/sample.cse");
    double lut_dec = timed([&] { (void)codec.decode_sample_cpu(back); });

    double base_prep = timed(
        [&] { (void)codec::CosmoCodec::reference_preprocess_sample(sample); });

    std::printf("%-14s %-12zu %-10.2f %-12s %-12.2f\n", "raw tfrecord",
                raw.size(), 1.0, "-", base_prep);
    std::printf("%-14s %-12zu %-10.2f %-12.2f %-12.2f\n", "gzip", zipped.size(),
                static_cast<double>(raw.size()) / zipped.size(), gzip_enc,
                gzip_dec + base_prep);
    std::printf("%-14s %-12zu %-10.2f %-12.2f %-12.2f\n", "cosmo-lut",
                encoded.size(), static_cast<double>(raw.size()) / encoded.size(),
                lut_enc, lut_dec);
    std::printf("\n(gzip decode still pays the baseline preprocessing; the "
                "codec's decode IS the preprocessing)\n");
  } else if (workload == "cam") {
    data::CamGenConfig cfg;
    cfg.height = size;
    cfg.width = size * 3 / 2;
    cfg.channels = 16;
    cfg.seed = 1;
    const auto sample = data::CamGenerator(cfg).generate(0);
    const codec::CamCodec codec;

    const Bytes raw = sample.serialize();
    io::write_file(out_dir + "/sample.h5l", raw);

    Bytes encoded;
    const double enc_ms = timed([&] { encoded = codec.encode_sample(sample); });
    io::write_file(out_dir + "/sample.cae", encoded);
    const Bytes back = io::read_file(out_dir + "/sample.cae");
    codec::TensorF16 decoded;
    const double dec_ms =
        timed([&] { decoded = codec.decode_sample_cpu(back); });
    const double base_prep = timed(
        [&] { (void)codec::CamCodec::reference_preprocess_sample(sample); });

    std::printf("%-14s %-12zu %-10.2f %-12s %-12.2f\n", "raw h5", raw.size(),
                1.0, "-", base_prep);
    std::printf("%-14s %-12zu %-10.2f %-12.2f %-12.2f\n", "cam-delta",
                encoded.size(), static_cast<double>(raw.size()) / encoded.size(),
                enc_ms, dec_ms);
    const auto info = codec::CamCodec::inspect(back);
    std::printf("\nline census: %llu delta / %llu raw / %llu constant; "
                "%.2f segments per delta line\n",
                static_cast<unsigned long long>(info.delta_lines),
                static_cast<unsigned long long>(info.raw_lines),
                static_cast<unsigned long long>(info.constant_lines),
                static_cast<double>(info.segments) /
                    std::max<std::uint64_t>(1, info.delta_lines));
  } else {
    std::fprintf(stderr, "usage: %s [cosmo|cam] [size] [out_dir]\n", argv[0]);
    return 2;
  }
  return 0;
}
