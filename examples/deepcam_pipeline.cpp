// DeepCAM pipeline walkthrough: climate dataset -> differential codec ->
// pipeline with augmentation ops, comparing CPU- vs GPU-placed decode and
// printing the per-line encoding census and device-engine statistics.
//
// Usage: deepcam_pipeline [samples=8] [height=192] [width=288]
#include <cstdio>

#include "sciprep/common/stats.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/codec.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/pipeline/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace sciprep;
  const int nsamples = argc > 1 ? std::atoi(argv[1]) : 8;
  const int height = argc > 2 ? std::atoi(argv[2]) : 192;
  const int width = argc > 3 ? std::atoi(argv[3]) : 288;

  data::CamGenConfig gen_cfg;
  gen_cfg.height = height;
  gen_cfg.width = width;
  gen_cfg.channels = 16;
  gen_cfg.seed = 33;
  const data::CamGenerator generator(gen_cfg);
  const codec::CamCodec codec;

  // Inspect one encoded sample: the per-line mode census of §V.A.
  const io::CamSample first = generator.generate(0);
  const Bytes encoded = codec.encode_sample(first);
  const auto info = codec::CamCodec::inspect(encoded);
  std::printf("encoding census (sample 0, %dx%dx16):\n", height, width);
  std::printf("  %llu delta lines (%.2f segments/line), %llu raw lines, "
              "%llu constant lines\n",
              static_cast<unsigned long long>(info.delta_lines),
              static_cast<double>(info.segments) /
                  std::max<std::uint64_t>(1, info.delta_lines),
              static_cast<unsigned long long>(info.raw_lines),
              static_cast<unsigned long long>(info.constant_lines));
  std::printf("  %zu -> %zu bytes (%.2fx); labels %llu bytes (lossless)\n\n",
              first.byte_size(), encoded.size(),
              static_cast<double>(first.byte_size()) / encoded.size(),
              static_cast<unsigned long long>(info.label_bytes));

  const auto dataset = pipeline::InMemoryDataset::make_cam(
      generator, static_cast<std::size_t>(nsamples),
      pipeline::StorageFormat::kEncoded, &codec);

  // CPU-placed decode with the DeepCAM augmentations.
  pipeline::PipelineConfig cpu_cfg;
  cpu_cfg.batch_size = 2;
  cpu_cfg.seed = 3;
  cpu_cfg.worker_threads = 2;
  cpu_cfg.ops = {std::make_shared<pipeline::RandomFlipX>(0.5),
                 std::make_shared<pipeline::RandomFlipY>(0.25)};
  pipeline::DataPipeline cpu_pipe(dataset, codec, cpu_cfg);
  pipeline::Batch batch;
  std::size_t labelled_pixels = 0;
  std::size_t total_pixels = 0;
  while (cpu_pipe.next_batch(batch)) {
    for (const auto& sample : batch.samples) {
      for (const auto label : sample.byte_labels) {
        labelled_pixels += (label != 0);
      }
      total_pixels += sample.byte_labels.size();
    }
  }
  std::printf("cpu pipeline: %llu samples, decode %.1f ms total, "
              "extreme-weather pixels %.2f%%\n",
              static_cast<unsigned long long>(cpu_pipe.stats().samples),
              cpu_pipe.stats().decode_cpu_seconds * 1e3,
              100.0 * static_cast<double>(labelled_pixels) /
                  static_cast<double>(total_pixels));

  // GPU-placed decode: same samples through the warp engine.
  sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
  pipeline::PipelineConfig gpu_cfg = cpu_cfg;
  gpu_cfg.ops.clear();
  gpu_cfg.decode_placement = codec::Placement::kGpu;
  pipeline::DataPipeline gpu_pipe(dataset, codec, gpu_cfg, &gpu);
  while (gpu_pipe.next_batch(batch)) {
  }
  const auto& gs = gpu_pipe.stats().gpu;
  std::printf("gpu pipeline: %llu samples, %llu warps (one per line), "
              "%llu divergent branches (delta segments + tails), %s moved\n",
              static_cast<unsigned long long>(gpu_pipe.stats().samples),
              static_cast<unsigned long long>(gs.warps),
              static_cast<unsigned long long>(gs.divergent_branches),
              format_bytes(gs.bytes_total()).c_str());
  std::printf("decode kernel is %s-bound on the engine\n",
              gs.bandwidth_bound() ? "bandwidth" : "compute/divergence");
  return 0;
}
