#include "sciprep/data/cosmo_gen.hpp"

#include <cmath>
#include <vector>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"

namespace sciprep::data {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

/// Multiplicative cascade: refine a coarse lognormal field by factors of two,
/// multiplying each child cell by exp(sigma_level * N(0,1)). Returns dim³
/// strictly positive densities with mean ~1.
std::vector<float> cascade_density(int dim, int coarse, double sigma, Rng& rng) {
  std::vector<float> field(static_cast<std::size_t>(coarse) * coarse * coarse);
  for (auto& v : field) {
    v = static_cast<float>(std::exp(sigma * rng.normal()));
  }
  int cur = coarse;
  double level_sigma = sigma;
  while (cur < dim) {
    const int next = cur * 2;
    level_sigma *= 0.72;  // smaller fluctuations at smaller scales (~Kolmogorov)
    std::vector<float> refined(static_cast<std::size_t>(next) * next * next);
    for (int z = 0; z < next; ++z) {
      for (int y = 0; y < next; ++y) {
        for (int x = 0; x < next; ++x) {
          const std::size_t parent =
              (static_cast<std::size_t>(z / 2) * cur + (y / 2)) * cur + (x / 2);
          const float mult =
              static_cast<float>(std::exp(level_sigma * rng.normal()));
          refined[(static_cast<std::size_t>(z) * next + y) * next + x] =
              field[parent] * mult;
        }
      }
    }
    field = std::move(refined);
    cur = next;
  }
  // Normalize to mean 1 so `mean_count` has its documented meaning.
  double sum = 0;
  for (const float v : field) sum += v;
  const auto scale = static_cast<float>(field.size() / sum);
  for (auto& v : field) v *= scale;
  return field;
}

}  // namespace

CosmoGenerator::CosmoGenerator(CosmoGenConfig config) : config_(config) {
  if (!is_pow2(config_.dim) || config_.dim < 8) {
    throw ConfigError(
        fmt("cosmo generator: dim {} must be a power of two >= 8", config_.dim));
  }
}

CosmoParams CosmoGenerator::params_for(std::uint64_t index) const {
  Rng rng = Rng(config_.seed).fork(index * 2 + 1);
  const CosmoParams mean{};
  auto vary = [&rng](float m) {
    return m * static_cast<float>(rng.uniform(0.70, 1.30));
  };
  return {vary(mean.omega_m), vary(mean.sigma_8), vary(mean.n_s),
          vary(mean.h_0)};
}

io::CosmoSample CosmoGenerator::generate(std::uint64_t index) const {
  const CosmoParams p = params_for(index);
  Rng rng = Rng(config_.seed).fork(index * 2);

  const int dim = config_.dim;
  // sigma_8 controls fluctuation amplitude; h_0 the correlation length (via
  // the coarse-grid size the cascade starts from).
  const double sigma = 1.10 * (p.sigma_8 / 0.80);
  int coarse = dim / 16;
  if (p.h_0 > 0.70F * 1.1F) coarse = dim / 32;   // longer correlations
  if (p.h_0 < 0.70F * 0.9F) coarse = dim / 8;    // shorter correlations
  coarse = std::max(2, coarse);

  const std::vector<float> density = cascade_density(dim, coarse, sigma, rng);

  // Structure growth: each redshift sees the same field sharpened by an
  // increasing exponent (progressive clustering toward redshift 0), tilted by
  // the spectral index. Redshift order matches the dataset: oldest first.
  std::array<double, io::CosmoSample::kRedshifts> gamma{};
  const double tilt = p.n_s / 0.96;
  const std::array<double, 4> base_gamma = {0.55, 0.80, 1.10, 1.45};
  // Particle intensity per redshift: total matter (omega_m) sets the budget;
  // later snapshots concentrate the same matter into fewer, denser voxels.
  std::array<double, 4> intensity{};
  for (int r = 0; r < 4; ++r) {
    gamma[static_cast<std::size_t>(r)] = base_gamma[static_cast<std::size_t>(r)] * tilt;
    intensity[static_cast<std::size_t>(r)] =
        config_.mean_count * (p.omega_m / 0.30) * (0.85 + 0.05 * r);
  }

  // Normalizing constants so each snapshot keeps mean `intensity[r]` after
  // sharpening: E[rho^gamma] != 1.
  std::array<double, 4> norm{};
  for (int r = 0; r < 4; ++r) {
    double sum = 0;
    for (const float v : density) {
      sum += std::pow(static_cast<double>(v), gamma[static_cast<std::size_t>(r)]);
    }
    norm[static_cast<std::size_t>(r)] =
        intensity[static_cast<std::size_t>(r)] * static_cast<double>(density.size()) / sum;
  }

  io::CosmoSample sample;
  sample.dim = dim;
  sample.params = {p.omega_m, p.sigma_8, p.n_s, p.h_0};
  sample.counts.resize(sample.value_count());

  std::size_t out = 0;
  for (const float rho : density) {
    for (int r = 0; r < io::CosmoSample::kRedshifts; ++r) {
      const double mean =
          norm[static_cast<std::size_t>(r)] *
          std::pow(static_cast<double>(rho), gamma[static_cast<std::size_t>(r)]);
      sample.counts[out++] = static_cast<std::int32_t>(rng.poisson(mean));
    }
  }
  return sample;
}

}  // namespace sciprep::data
