// Synthetic CosmoFlow dataset generator.
//
// Stands in for the N-body (pyCOLA) simulation output: dim³ histograms of
// dark-matter particle counts at 4 redshifts, labelled with the 4 cosmological
// parameters that generated them. The generator reproduces the data
// properties §V.B of the paper exploits:
//   * particle counts are small integers -> few hundred unique values/sample,
//   * value frequency follows a power law (most voxels near-empty, rare dense
//     clusters),
//   * the four redshift channels are snapshots of the SAME underlying density
//     field at increasing clustering strength, so per-voxel groups-of-4 are
//     highly coupled (few tens of thousands of unique groups out of ~10^11
//     combinatorial possibilities).
// Mechanism: a multiplicative-cascade lognormal density field (clustering) is
// sharpened with a redshift-dependent exponent (structure growth), scaled by
// the cosmological parameters, then Poisson-sampled into counts.
#pragma once

#include <array>
#include <cstdint>

#include "sciprep/io/samples.hpp"

namespace sciprep::data {

/// The four cosmological parameters of the benchmark, each varied uniformly
/// over ±30% of its mean (matching the dataset description in §V.B).
struct CosmoParams {
  float omega_m = 0.30F;   // matter density: scales particle intensity
  float sigma_8 = 0.80F;   // fluctuation amplitude: cascade variance
  float n_s = 0.96F;       // spectral index: tilts clustering growth
  float h_0 = 0.70F;       // Hubble parameter: correlation length
};

struct CosmoGenConfig {
  int dim = 128;             // voxels per side; must be a power of two >= 8
  std::uint64_t seed = 1;    // dataset-level seed
  double mean_count = 1.9;   // mean particles per voxel at redshift 0
};

/// Deterministic generator: `generate(i)` always produces the same sample for
/// the same (config, i), so distributed ranks can synthesize disjoint shards
/// without communication.
class CosmoGenerator {
 public:
  explicit CosmoGenerator(CosmoGenConfig config);

  /// Parameters drawn (uniformly, ±30%) for universe `index`.
  [[nodiscard]] CosmoParams params_for(std::uint64_t index) const;

  /// Synthesize sample `index`.
  [[nodiscard]] io::CosmoSample generate(std::uint64_t index) const;

  [[nodiscard]] const CosmoGenConfig& config() const noexcept {
    return config_;
  }

 private:
  CosmoGenConfig config_;
};

}  // namespace sciprep::data
