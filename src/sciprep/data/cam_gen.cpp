#include "sciprep/data/cam_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"

namespace sciprep::data {

namespace {

// 16 CAM5-like variables with plausible magnitudes. Wildly different offsets
// and scales are deliberate: they exercise the codec's per-segment exponent
// handling.
constexpr ChannelSpec kChannelSpecs[16] = {
    {"TMQ", 35.0F, 18.0F, 2.2F},      // total precipitable water
    {"U850", 2.0F, 12.0F, 1.8F},      // zonal wind, 850 hPa
    {"V850", 0.5F, 10.0F, 1.8F},      // meridional wind, 850 hPa
    {"UBOT", 1.5F, 9.0F, 1.5F},       // lowest-level zonal wind
    {"VBOT", 0.3F, 8.0F, 1.5F},       // lowest-level meridional wind
    {"QREFHT", 0.012F, 0.006F, 1.2F}, // reference humidity (kg/kg)
    {"PS", 98000.0F, 2500.0F, 2.5F},  // surface pressure
    {"PSL", 101000.0F, 2200.0F, 2.8F},// sea-level pressure
    {"T200", 220.0F, 9.0F, 0.8F},     // temperature, 200 hPa
    {"T500", 258.0F, 11.0F, 1.0F},    // temperature, 500 hPa
    {"PRECT", 3.0e-8F, 2.5e-8F, 3.0F},// precipitation rate
    {"TS", 289.0F, 16.0F, 1.0F},      // surface temperature
    {"TREFHT", 288.0F, 15.0F, 1.0F},  // reference temperature
    {"Z1000", 120.0F, 90.0F, 1.4F},   // geopotential height, 1000 hPa
    {"Z200", 11800.0F, 240.0F, 1.1F}, // geopotential height, 200 hPa
    {"ZBOT", 62.0F, 8.0F, 0.8F},      // lowest model level height
};

/// Bilinearly upsample a coarse grid to (height, width). The coarse grid is
/// much coarser along x than y, producing the longitude smoothness the paper
/// observes in CAM5 data.
void add_upsampled_noise(std::vector<float>& plane, int height, int width,
                         int cy, int cx, float amplitude, Rng& rng) {
  std::vector<float> coarse(static_cast<std::size_t>(cy + 1) * (cx + 1));
  for (auto& v : coarse) {
    v = amplitude * static_cast<float>(rng.normal());
  }
  for (int y = 0; y < height; ++y) {
    const double gy = static_cast<double>(y) * cy / height;
    const int y0 = static_cast<int>(gy);
    const double fy = gy - y0;
    for (int x = 0; x < width; ++x) {
      const double gx = static_cast<double>(x) * cx / width;
      const int x0 = static_cast<int>(gx);
      const double fx = gx - x0;
      const std::size_t base =
          static_cast<std::size_t>(y0) * (cx + 1) + static_cast<std::size_t>(x0);
      const double v00 = coarse[base];
      const double v01 = coarse[base + 1];
      const double v10 = coarse[base + cx + 1];
      const double v11 = coarse[base + cx + 2];
      const double v = v00 * (1 - fy) * (1 - fx) + v01 * (1 - fy) * fx +
                       v10 * fy * (1 - fx) + v11 * fy * fx;
      plane[static_cast<std::size_t>(y) * width + x] += static_cast<float>(v);
    }
  }
}

struct Cyclone {
  double cx, cy;      // center (pixels)
  double radius;      // core radius (pixels)
  double strength;    // 0.6 .. 1.6
};

struct River {
  double x0, y0;      // start
  double dx, dy;      // unit direction
  double length;
  double halfwidth;
  double strength;
};

}  // namespace

const ChannelSpec& channel_spec(int channel) {
  return kChannelSpecs[static_cast<std::size_t>(channel % 16)];
}

CamGenerator::CamGenerator(CamGenConfig config) : config_(config) {
  if (config_.height < 8 || config_.width < 8 || config_.channels < 1) {
    throw ConfigError(fmt("cam generator: degenerate dims {}x{}x{}",
                          config_.channels, config_.height, config_.width));
  }
}

io::CamSample CamGenerator::generate(std::uint64_t index) const {
  Rng rng = Rng(config_.seed).fork(index);
  const int h = config_.height;
  const int w = config_.width;
  const int nc = config_.channels;

  io::CamSample sample;
  sample.height = h;
  sample.width = w;
  sample.channels = nc;
  sample.image.resize(sample.value_count());
  sample.labels.assign(sample.pixel_count(), 0);

  // --- Draw the extreme-weather events for this sample -------------------
  std::vector<Cyclone> cyclones;
  const std::uint32_t n_cyc = rng.poisson(config_.cyclone_rate);
  for (std::uint32_t i = 0; i < n_cyc; ++i) {
    cyclones.push_back({rng.uniform(0.08, 0.92) * w,
                        rng.uniform(0.15, 0.85) * h,
                        rng.uniform(0.015, 0.045) * w,
                        rng.uniform(0.6, 1.6)});
  }
  std::vector<River> rivers;
  const std::uint32_t n_riv = rng.poisson(config_.river_rate);
  for (std::uint32_t i = 0; i < n_riv; ++i) {
    const double angle = rng.uniform(-0.5, 0.5);  // mostly zonal bands
    rivers.push_back({rng.uniform(0.0, 0.6) * w, rng.uniform(0.1, 0.9) * h,
                      std::cos(angle), std::sin(angle),
                      rng.uniform(0.3, 0.6) * w, rng.uniform(0.008, 0.02) * w,
                      rng.uniform(0.5, 1.4)});
  }

  // --- Labels: union of event supports -----------------------------------
  for (const Cyclone& c : cyclones) {
    const int y_lo = std::max(0, static_cast<int>(c.cy - 2 * c.radius));
    const int y_hi = std::min(h - 1, static_cast<int>(c.cy + 2 * c.radius));
    const int x_lo = std::max(0, static_cast<int>(c.cx - 2 * c.radius));
    const int x_hi = std::min(w - 1, static_cast<int>(c.cx + 2 * c.radius));
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        const double d = std::hypot(x - c.cx, y - c.cy);
        if (d < 1.4 * c.radius) {
          sample.labels[static_cast<std::size_t>(y) * w + x] = 1;
        }
      }
    }
  }
  for (const River& r : rivers) {
    for (double t = 0; t < r.length; t += 1.0) {
      const double px = r.x0 + r.dx * t;
      const double py = r.y0 + r.dy * t;
      const int y_lo = std::max(0, static_cast<int>(py - r.halfwidth));
      const int y_hi = std::min(h - 1, static_cast<int>(py + r.halfwidth));
      for (int y = y_lo; y <= y_hi; ++y) {
        const int x = static_cast<int>(px);
        if (x >= 0 && x < w) {
          auto& lbl = sample.labels[static_cast<std::size_t>(y) * w + x];
          if (lbl == 0) lbl = 2;  // cyclone labels take precedence
        }
      }
    }
  }

  // --- Per-channel field synthesis ----------------------------------------
  std::vector<float> plane(sample.pixel_count());
  for (int c = 0; c < nc; ++c) {
    const ChannelSpec& spec = channel_spec(c);
    std::fill(plane.begin(), plane.end(), 0.0F);

    // Large-scale structure: coarse in x (longitude smooth), finer in y.
    add_upsampled_noise(plane, h, w, /*cy=*/12, /*cx=*/5, 0.9F, rng);
    add_upsampled_noise(plane, h, w, /*cy=*/48, /*cx=*/20, 0.28F, rng);

    // Latitudinal climatology: smooth meridional gradient (e.g. temperature
    // falls toward the poles), plus a gentle zonal wave.
    const double wave_phase = rng.uniform(0.0, 2 * std::numbers::pi);
    const double wave_k = 1 + rng.next_below(3);
    for (int y = 0; y < h; ++y) {
      const double lat = (static_cast<double>(y) / h - 0.5) * 2;  // -1..1
      const double merid = -0.8 * lat * lat + 0.15 * lat;
      for (int x = 0; x < w; ++x) {
        const double zonal =
            0.18 * std::sin(wave_k * 2 * std::numbers::pi * x / w + wave_phase);
        plane[static_cast<std::size_t>(y) * w + x] +=
            static_cast<float>(merid + zonal);
      }
    }

    // Extreme events: radially symmetric perturbations with steep flanks.
    for (const Cyclone& cyc : cyclones) {
      const double gain = cyc.strength * spec.anomaly_gain;
      const int y_lo = std::max(0, static_cast<int>(cyc.cy - 3 * cyc.radius));
      const int y_hi = std::min(h - 1, static_cast<int>(cyc.cy + 3 * cyc.radius));
      const int x_lo = std::max(0, static_cast<int>(cyc.cx - 3 * cyc.radius));
      const int x_hi = std::min(w - 1, static_cast<int>(cyc.cx + 3 * cyc.radius));
      for (int y = y_lo; y <= y_hi; ++y) {
        for (int x = x_lo; x <= x_hi; ++x) {
          const double d = std::hypot(x - cyc.cx, y - cyc.cy) / cyc.radius;
          // Deep pressure-like well with a sharp eyewall at d ~ 0.35.
          const double well = -std::exp(-d * d);
          const double eyewall = 0.8 * std::exp(-16 * (d - 0.35) * (d - 0.35));
          plane[static_cast<std::size_t>(y) * w + x] +=
              static_cast<float>(gain * (well + eyewall));
        }
      }
    }
    for (const River& r : rivers) {
      const double gain = 0.7 * r.strength * spec.anomaly_gain;
      for (double t = 0; t < r.length; t += 1.0) {
        const double px = r.x0 + r.dx * t;
        const double py = r.y0 + r.dy * t;
        const int x = static_cast<int>(px);
        if (x < 0 || x >= w) continue;
        const int y_lo = std::max(0, static_cast<int>(py - 3 * r.halfwidth));
        const int y_hi = std::min(h - 1, static_cast<int>(py + 3 * r.halfwidth));
        for (int y = y_lo; y <= y_hi; ++y) {
          const double d = (y - py) / r.halfwidth;
          plane[static_cast<std::size_t>(y) * w + x] +=
              static_cast<float>(gain * std::exp(-d * d));
        }
      }
    }

    // Scale to physical units and add sensor noise (the part the lossy
    // encoder is allowed to discard).
    float* out = sample.image.data() + static_cast<std::size_t>(c) * h * w;
    for (std::size_t i = 0; i < plane.size(); ++i) {
      const float physical = spec.offset + spec.scale * plane[i];
      const float noise = static_cast<float>(
          config_.noise_level * spec.scale * rng.normal());
      out[i] = physical + noise;
    }
  }
  return sample;
}

}  // namespace sciprep::data
