// Synthetic DeepCAM (CAM5-like) climate sample generator.
//
// Stands in for the CAM5 climate dataset: 16-channel FP32 weather images with
// per-pixel extreme-weather segmentation labels. Reproduces the properties
// §V.A of the paper exploits:
//   * large areas of smooth variation, smoothest along the x (longitude)
//     direction,
//   * per-channel physical value ranges spanning very different magnitudes
//     (pressure ~1e5 Pa, temperature ~250-310 K, humidity ~0-70 kg/m²,
//     winds ~±40 m/s),
//   * small-amplitude sensor noise on the smooth background (what the lossy
//     differential encoder removes),
//   * rare localized extreme phenomena (tropical cyclones, atmospheric
//     rivers) with abrupt gradients — the regions the encoder leaves raw and
//     the network must find.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/io/samples.hpp"

namespace sciprep::data {

struct CamGenConfig {
  int height = 768;
  int width = 1152;
  int channels = 16;
  std::uint64_t seed = 1;
  double cyclone_rate = 2.5;   // mean cyclones per sample (Poisson)
  double river_rate = 1.5;     // mean atmospheric rivers per sample
  double noise_level = 3e-4;   // relative sensor noise amplitude
};

/// Physical interpretation of each generated channel (used for realistic
/// value ranges; index into kChannelSpecs by channel id % 16).
struct ChannelSpec {
  const char* name;   // CAM5 variable name
  float offset;       // mean value
  float scale;        // variation amplitude
  float anomaly_gain; // how strongly extreme phenomena perturb this channel
};
const ChannelSpec& channel_spec(int channel);

/// Deterministic per-index generator, same contract as CosmoGenerator.
class CamGenerator {
 public:
  explicit CamGenerator(CamGenConfig config);

  [[nodiscard]] io::CamSample generate(std::uint64_t index) const;

  [[nodiscard]] const CamGenConfig& config() const noexcept { return config_; }

 private:
  CamGenConfig config_;
};

}  // namespace sciprep::data
