#include "sciprep/io/tfexample.hpp"

#include <cstring>

#include "sciprep/common/error.hpp"

namespace sciprep::io {

namespace {

constexpr std::uint32_t kWireVarint = 0;
constexpr std::uint32_t kWireLen = 2;
constexpr std::uint32_t kWire32 = 5;

std::uint64_t make_tag(std::uint32_t field, std::uint32_t wire) {
  return (static_cast<std::uint64_t>(field) << 3) | wire;
}

void put_len_delimited(ByteWriter& out, std::uint32_t field, ByteSpan body) {
  put_varint(out, make_tag(field, kWireLen));
  put_varint(out, body.size());
  out.put_bytes(body);
}

Bytes serialize_feature(const Feature& f) {
  ByteWriter inner;
  switch (f.kind) {
    case Feature::Kind::kBytes: {
      ByteWriter list;
      for (const Bytes& b : f.bytes_list) {
        put_len_delimited(list, 1, b);
      }
      put_len_delimited(inner, 1, list.bytes());
      break;
    }
    case Feature::Kind::kFloat: {
      // Packed floats: field 1, one length-delimited run of IEEE bits.
      ByteWriter packed;
      for (const float v : f.float_list) {
        packed.put<float>(v);
      }
      ByteWriter list;
      put_len_delimited(list, 1, packed.bytes());
      put_len_delimited(inner, 2, list.bytes());
      break;
    }
    case Feature::Kind::kInt64: {
      ByteWriter packed;
      for (const std::int64_t v : f.int64_list) {
        put_varint(packed, static_cast<std::uint64_t>(v));
      }
      ByteWriter list;
      put_len_delimited(list, 1, packed.bytes());
      put_len_delimited(inner, 3, list.bytes());
      break;
    }
  }
  return std::move(inner).take();
}

Feature parse_feature(ByteSpan data) {
  ByteReader in(data);
  Feature f;
  if (in.done()) {
    return f;  // empty feature: defaults to empty bytes list
  }
  const std::uint64_t tag = get_varint(in);
  const auto field = static_cast<std::uint32_t>(tag >> 3);
  const auto wire = static_cast<std::uint32_t>(tag & 7);
  if (wire != kWireLen) {
    throw_format("tfexample: Feature field {} has wire type {}", field, wire);
  }
  const std::uint64_t len = get_varint(in);
  ByteReader list(in.get_bytes(static_cast<std::size_t>(len)));
  switch (field) {
    case 1: {  // BytesList
      f.kind = Feature::Kind::kBytes;
      while (!list.done()) {
        const std::uint64_t t = get_varint(list);
        if (t != make_tag(1, kWireLen)) {
          throw_format("tfexample: BytesList has unexpected tag {}", t);
        }
        const std::uint64_t n = get_varint(list);
        const ByteSpan b = list.get_bytes(static_cast<std::size_t>(n));
        f.bytes_list.emplace_back(b.begin(), b.end());
      }
      break;
    }
    case 2: {  // FloatList
      f.kind = Feature::Kind::kFloat;
      while (!list.done()) {
        const std::uint64_t t = get_varint(list);
        if (t == make_tag(1, kWireLen)) {  // packed
          const std::uint64_t n = get_varint(list);
          if (n % 4 != 0) {
            throw_format("tfexample: packed FloatList length {} not *4", n);
          }
          ByteReader run(list.get_bytes(static_cast<std::size_t>(n)));
          while (!run.done()) {
            f.float_list.push_back(run.get<float>());
          }
        } else if (t == make_tag(1, kWire32)) {  // unpacked
          f.float_list.push_back(list.get<float>());
        } else {
          throw_format("tfexample: FloatList has unexpected tag {}", t);
        }
      }
      break;
    }
    case 3: {  // Int64List
      f.kind = Feature::Kind::kInt64;
      while (!list.done()) {
        const std::uint64_t t = get_varint(list);
        if (t == make_tag(1, kWireLen)) {  // packed
          const std::uint64_t n = get_varint(list);
          ByteReader run(list.get_bytes(static_cast<std::size_t>(n)));
          while (!run.done()) {
            f.int64_list.push_back(static_cast<std::int64_t>(get_varint(run)));
          }
        } else if (t == make_tag(1, kWireVarint)) {  // unpacked
          f.int64_list.push_back(static_cast<std::int64_t>(get_varint(list)));
        } else {
          throw_format("tfexample: Int64List has unexpected tag {}", t);
        }
      }
      break;
    }
    default:
      throw_format("tfexample: unknown Feature field {}", field);
  }
  if (!in.done()) {
    throw_format("tfexample: trailing bytes after Feature oneof");
  }
  return f;
}

}  // namespace

void put_varint(ByteWriter& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put<std::uint8_t>(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.put<std::uint8_t>(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(ByteReader& in) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const auto byte = in.get<std::uint8_t>();
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 64) {
      throw_format("varint longer than 10 bytes");
    }
  }
}

Bytes TfExample::serialize() const {
  // Features message: repeated MapEntry { 1: key, 2: Feature }.
  ByteWriter features_msg;
  for (const auto& [name, feature] : features) {
    ByteWriter entry;
    put_len_delimited(entry, 1, as_bytes(std::string_view(name)));
    put_len_delimited(entry, 2, serialize_feature(feature));
    put_len_delimited(features_msg, 1, entry.bytes());
  }
  ByteWriter example;
  put_len_delimited(example, 1, features_msg.bytes());
  return std::move(example).take();
}

TfExample TfExample::parse(ByteSpan data) {
  ByteReader in(data);
  TfExample example;
  const std::uint64_t tag = get_varint(in);
  if (tag != make_tag(1, kWireLen)) {
    throw_format("tfexample: expected Example.features, got tag {}", tag);
  }
  const std::uint64_t flen = get_varint(in);
  ByteReader features(in.get_bytes(static_cast<std::size_t>(flen)));
  if (!in.done()) {
    throw_format("tfexample: trailing bytes after Example.features");
  }
  while (!features.done()) {
    const std::uint64_t etag = get_varint(features);
    if (etag != make_tag(1, kWireLen)) {
      throw_format("tfexample: expected map entry, got tag {}", etag);
    }
    const std::uint64_t elen = get_varint(features);
    ByteReader entry(features.get_bytes(static_cast<std::size_t>(elen)));

    std::string key;
    Feature value;
    while (!entry.done()) {
      const std::uint64_t ftag = get_varint(entry);
      const std::uint64_t flen2 = get_varint(entry);
      const ByteSpan body = entry.get_bytes(static_cast<std::size_t>(flen2));
      if (ftag == make_tag(1, kWireLen)) {
        key.assign(reinterpret_cast<const char*>(body.data()), body.size());
      } else if (ftag == make_tag(2, kWireLen)) {
        value = parse_feature(body);
      } else {
        throw_format("tfexample: unknown map-entry tag {}", ftag);
      }
    }
    example.features.emplace(std::move(key), std::move(value));
  }
  return example;
}

const Bytes& TfExample::bytes_feature(const std::string& name) const {
  const auto it = features.find(name);
  if (it == features.end() || it->second.kind != Feature::Kind::kBytes ||
      it->second.bytes_list.empty()) {
    throw_format("tfexample: missing bytes feature '{}'", name);
  }
  return it->second.bytes_list.front();
}

const std::vector<float>& TfExample::float_feature(
    const std::string& name) const {
  const auto it = features.find(name);
  if (it == features.end() || it->second.kind != Feature::Kind::kFloat) {
    throw_format("tfexample: missing float feature '{}'", name);
  }
  return it->second.float_list;
}

const std::vector<std::int64_t>& TfExample::int64_feature(
    const std::string& name) const {
  const auto it = features.find(name);
  if (it == features.end() || it->second.kind != Feature::Kind::kInt64) {
    throw_format("tfexample: missing int64 feature '{}'", name);
  }
  return it->second.int64_list;
}

}  // namespace sciprep::io
