// TFRecord container format (the on-disk format of the CosmoFlow dataset).
//
// Each record is framed as
//   uint64 length | uint32 masked_crc32c(length) | payload | uint32 masked_crc32c(payload)
// exactly as TensorFlow writes it. A reader validates both CRCs, so silent
// storage corruption surfaces as FormatError rather than garbage samples.
//
// GZIP-compressed TFRecord files (TFRecordOptions compression_type="GZIP")
// wrap the whole record stream in a single gzip member; helpers for that
// variant are provided because it is the paper's compression baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/common/buffer.hpp"
#include "sciprep/compress/gzip.hpp"

namespace sciprep::io {

/// Appends framed records to an in-memory byte stream.
class TfRecordWriter {
 public:
  void append(ByteSpan payload);

  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }
  [[nodiscard]] const Bytes& stream() const noexcept { return out_.bytes(); }
  Bytes take() && { return std::move(out_).take(); }

 private:
  ByteWriter out_;
  std::size_t count_ = 0;
};

/// Iterates framed records in a byte stream, validating CRCs.
class TfRecordReader {
 public:
  explicit TfRecordReader(ByteSpan stream) : in_(stream) {}

  /// Returns false at clean end-of-stream. Throws TruncatedError (naming the
  /// record's offset) when the stream ends inside a record's framing, and
  /// FormatError on CRC mismatches. A payload CRC failure is resumable: the
  /// reader position has already advanced past the bad record, so calling
  /// next() again yields the following record (skip-style recovery policies
  /// rely on this).
  bool next(Bytes& payload);

  /// Convenience: parse every record in `stream`.
  static std::vector<Bytes> read_all(ByteSpan stream);

 private:
  ByteReader in_;
};

/// Compress a TFRecord stream the way tf.io.TFRecordOptions(GZIP) does.
Bytes gzip_tfrecord_stream(ByteSpan stream,
                           compress::DeflateLevel level =
                               compress::DeflateLevel::kDefault);

/// Inverse of gzip_tfrecord_stream.
Bytes gunzip_tfrecord_stream(ByteSpan stream);

/// Write/read a byte stream to/from the host filesystem.
void write_file(const std::string& path, ByteSpan data);
Bytes read_file(const std::string& path);

}  // namespace sciprep::io
