#include "sciprep/io/samples.hpp"

#include <cstring>

#include "sciprep/common/error.hpp"

namespace sciprep::io {

TfExample CosmoSample::to_example() const {
  SCIPREP_ASSERT(counts.size() == value_count());
  TfExample ex;
  // The benchmark dataset stores counts as uint16 histograms; values are
  // small integers by construction, so this is lossless for valid samples.
  Bytes raw(counts.size() * sizeof(std::uint16_t));
  auto* out = reinterpret_cast<std::uint16_t*>(raw.data());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::int32_t c = counts[i];
    if (c < 0 || c > 0xFFFF) {
      throw_format("cosmo sample: count {} at index {} exceeds uint16", c, i);
    }
    out[i] = static_cast<std::uint16_t>(c);
  }
  ex.features.emplace("x", Feature::of_bytes(std::move(raw)));
  ex.features.emplace(
      "y", Feature::of_floats({params[0], params[1], params[2], params[3]}));
  ex.features.emplace("size", Feature::of_int64s({dim}));
  return ex;
}

CosmoSample CosmoSample::from_example(const TfExample& example) {
  CosmoSample s;
  const auto& size = example.int64_feature("size");
  if (size.size() != 1 || size[0] <= 0 || size[0] > 4096) {
    throw_format("cosmo sample: bad size feature");
  }
  s.dim = static_cast<int>(size[0]);
  const Bytes& raw = example.bytes_feature("x");
  if (raw.size() != s.value_count() * sizeof(std::uint16_t)) {
    throw_format("cosmo sample: payload is {} bytes, expected {}", raw.size(),
                 s.value_count() * sizeof(std::uint16_t));
  }
  s.counts.resize(s.value_count());
  const auto* in = reinterpret_cast<const std::uint16_t*>(raw.data());
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    s.counts[i] = in[i];
  }
  const auto& y = example.float_feature("y");
  if (y.size() != kParams) {
    throw_format("cosmo sample: label has {} values, expected {}", y.size(),
                 kParams);
  }
  std::copy(y.begin(), y.end(), s.params.begin());
  return s;
}

H5File CamSample::to_h5() const {
  SCIPREP_ASSERT(image.size() == value_count());
  SCIPREP_ASSERT(labels.size() == pixel_count());
  H5File file;
  file.add_array<float>("climate", DType::kF32,
                        {static_cast<std::uint64_t>(channels),
                         static_cast<std::uint64_t>(height),
                         static_cast<std::uint64_t>(width)},
                        std::span<const float>(image));
  file.add_array<std::uint8_t>("labels", DType::kU8,
                               {static_cast<std::uint64_t>(height),
                                static_cast<std::uint64_t>(width)},
                               std::span<const std::uint8_t>(labels));
  return file;
}

CamSample CamSample::from_h5(const H5File& file) {
  const Dataset& climate = file.dataset("climate");
  if (climate.dtype != DType::kF32 || climate.shape.size() != 3) {
    throw_format("cam sample: 'climate' must be f32 [c,h,w]");
  }
  CamSample s;
  s.channels = static_cast<int>(climate.shape[0]);
  s.height = static_cast<int>(climate.shape[1]);
  s.width = static_cast<int>(climate.shape[2]);
  const auto values = climate.as_span<float>();
  s.image.assign(values.begin(), values.end());

  const Dataset& labels = file.dataset("labels");
  if (labels.dtype != DType::kU8 || labels.shape.size() != 2 ||
      labels.shape[0] != climate.shape[1] || labels.shape[1] != climate.shape[2]) {
    throw_format("cam sample: 'labels' must be u8 [h,w] matching 'climate'");
  }
  const auto mask = labels.as_span<std::uint8_t>();
  s.labels.assign(mask.begin(), mask.end());
  return s;
}

}  // namespace sciprep::io
