// h5lite — a small chunked scientific-data container.
//
// Stands in for HDF5 (the DeepCAM/CAM5 sample format): named n-dimensional
// datasets with typed elements, per-dataset string attributes, and chunked
// payload storage with per-chunk CRC32C so corruption is detected at read
// time. Only the container semantics the pipeline needs are implemented.
//
// Layout (little-endian):
//   "H5LT" | u32 version | u32 dataset_count
//   per dataset:
//     name | u8 dtype | u32 ndim | u64 dims[ndim]
//     u32 attr_count | (name, value) strings
//     u32 chunk_count | per chunk: u64 payload_size | u32 crc32c | payload
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sciprep/common/buffer.hpp"
#include "sciprep/common/error.hpp"

namespace sciprep::io {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF16 = 1,
  kI32 = 2,
  kU16 = 3,
  kU8 = 4,
  kI64 = 5,
};

/// Size of one element of `dtype` in bytes.
std::size_t dtype_size(DType dtype);
const char* dtype_name(DType dtype);

/// One named n-dimensional array plus attributes.
struct Dataset {
  std::string name;
  DType dtype = DType::kF32;
  std::vector<std::uint64_t> shape;
  Bytes data;  // element_count() * dtype_size bytes
  std::map<std::string, std::string> attrs;

  [[nodiscard]] std::uint64_t element_count() const noexcept;

  /// Typed view over `data`; throws FormatError if T mismatches dtype size.
  template <class T>
  [[nodiscard]] std::span<const T> as_span() const {
    if (sizeof(T) != dtype_size(dtype) || data.size() % sizeof(T) != 0) {
      throw_format("h5lite: dataset '{}' is {} ({}B/elem), asked for {}B view",
                   name, dtype_name(dtype), dtype_size(dtype), sizeof(T));
    }
    return {reinterpret_cast<const T*>(data.data()), data.size() / sizeof(T)};
  }
};

/// An in-memory h5lite file: an ordered set of datasets.
class H5File {
 public:
  /// Add a dataset; name must be unique.
  void add(Dataset dataset);

  /// Typed convenience: copies `values` into a new dataset.
  template <class T>
  void add_array(std::string name, DType dtype, std::vector<std::uint64_t> shape,
                 std::span<const T> values) {
    SCIPREP_ASSERT(sizeof(T) == dtype_size(dtype));
    Dataset d;
    d.name = std::move(name);
    d.dtype = dtype;
    d.shape = std::move(shape);
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    d.data.assign(p, p + values.size_bytes());
    add(std::move(d));
  }

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Throws FormatError when the dataset is absent.
  [[nodiscard]] const Dataset& dataset(const std::string& name) const;
  [[nodiscard]] const std::vector<Dataset>& datasets() const {
    return datasets_;
  }

  /// Serialize with the given chunk size (payload bytes per chunk).
  [[nodiscard]] Bytes serialize(std::size_t chunk_size = 4 * 1024 * 1024) const;

  /// Parse and validate every chunk CRC.
  static H5File parse(ByteSpan data);

 private:
  std::vector<Dataset> datasets_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace sciprep::io
