#include "sciprep/io/tfrecord.hpp"

#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/sysio.hpp"
#include "sciprep/guard/cancel.hpp"

namespace sciprep::io {

namespace {

std::uint32_t crc_of_length(std::uint64_t length) {
  ByteWriter w;
  w.put<std::uint64_t>(length);
  return mask_crc(crc32c(w.bytes()));
}

}  // namespace

void TfRecordWriter::append(ByteSpan payload) {
  const auto length = static_cast<std::uint64_t>(payload.size());
  out_.put<std::uint64_t>(length);
  out_.put<std::uint32_t>(crc_of_length(length));
  out_.put_bytes(payload);
  out_.put<std::uint32_t>(mask_crc(crc32c(payload)));
  ++count_;
}

bool TfRecordReader::next(Bytes& payload) {
  if (in_.done()) return false;
  const std::size_t record_start = in_.position();
  if (in_.remaining() < 12) {
    throw TruncatedError(
        fmt("tfrecord: stream ends inside the record header at offset {} "
            "({} of 12 header bytes present)",
            record_start, in_.remaining()),
        record_start);
  }
  const auto length = in_.get<std::uint64_t>();
  const auto length_crc = in_.get<std::uint32_t>();
  if (length_crc != crc_of_length(length)) {
    throw_format("tfrecord: length CRC mismatch at offset {}", record_start);
  }
  if (length > in_.remaining() || in_.remaining() - length < 4) {
    throw TruncatedError(
        fmt("tfrecord: record at offset {} declares {} payload bytes but "
            "only {} bytes remain (including the 4-byte payload CRC)",
            record_start, length, in_.remaining()),
        record_start);
  }
  // Past this point the reader position advances over the whole record
  // before any CRC verdict, so a payload CRC failure leaves the stream
  // positioned at the next record and the caller can resync by calling
  // next() again.
  const ByteSpan body = in_.get_bytes(static_cast<std::size_t>(length));
  const auto body_crc = in_.get<std::uint32_t>();
  if (body_crc != mask_crc(crc32c(body))) {
    throw_format(
        "tfrecord: payload CRC mismatch for {}-byte record at offset {}",
        length, record_start);
  }
  payload.assign(body.begin(), body.end());
  return true;
}

std::vector<Bytes> TfRecordReader::read_all(ByteSpan stream) {
  TfRecordReader reader(stream);
  std::vector<Bytes> records;
  Bytes payload;
  while (reader.next(payload)) {
    guard::poll_cancellation();  // cancellation point per record
    records.push_back(std::move(payload));
    payload.clear();
  }
  return records;
}

Bytes gzip_tfrecord_stream(ByteSpan stream, compress::DeflateLevel level) {
  return compress::gzip_compress(stream, level);
}

Bytes gunzip_tfrecord_stream(ByteSpan stream) {
  return compress::gzip_decompress(stream);
}

// Dataset/checkpoint file movement rides the shared EINTR/partial-op-safe
// loops in sysio; these wrappers only keep the historical io:: spelling.
void write_file(const std::string& path, ByteSpan data) {
  sysio::write_file(path, data);
}

Bytes read_file(const std::string& path) { return sysio::read_file(path); }

}  // namespace sciprep::io
