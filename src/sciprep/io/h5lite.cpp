#include "sciprep/io/h5lite.hpp"

#include <algorithm>

#include "sciprep/common/crc.hpp"

namespace sciprep::io {

namespace {
constexpr std::uint32_t kMagic = 0x544C3548u;  // "H5LT" little-endian
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kF32:
    case DType::kI32:
      return 4;
    case DType::kF16:
    case DType::kU16:
      return 2;
    case DType::kU8:
      return 1;
    case DType::kI64:
      return 8;
  }
  throw_format("h5lite: bad dtype {}", static_cast<int>(dtype));
}

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kI32:
      return "i32";
    case DType::kU16:
      return "u16";
    case DType::kU8:
      return "u8";
    case DType::kI64:
      return "i64";
  }
  return "?";
}

std::uint64_t Dataset::element_count() const noexcept {
  std::uint64_t n = 1;
  for (const auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

void H5File::add(Dataset dataset) {
  if (index_.contains(dataset.name)) {
    throw_format("h5lite: duplicate dataset '{}'", dataset.name);
  }
  if (dataset.element_count() * dtype_size(dataset.dtype) != dataset.data.size()) {
    throw_format("h5lite: dataset '{}' shape/data mismatch ({} elems, {} bytes)",
                 dataset.name, dataset.element_count(), dataset.data.size());
  }
  index_.emplace(dataset.name, datasets_.size());
  datasets_.push_back(std::move(dataset));
}

bool H5File::contains(const std::string& name) const {
  return index_.contains(name);
}

const Dataset& H5File::dataset(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw_format("h5lite: no dataset '{}'", name);
  }
  return datasets_[it->second];
}

Bytes H5File::serialize(std::size_t chunk_size) const {
  SCIPREP_ASSERT(chunk_size > 0);
  ByteWriter out;
  out.put<std::uint32_t>(kMagic);
  out.put<std::uint32_t>(kVersion);
  out.put<std::uint32_t>(static_cast<std::uint32_t>(datasets_.size()));
  for (const Dataset& d : datasets_) {
    out.put_string(d.name);
    out.put<std::uint8_t>(static_cast<std::uint8_t>(d.dtype));
    out.put<std::uint32_t>(static_cast<std::uint32_t>(d.shape.size()));
    for (const auto dim : d.shape) {
      out.put<std::uint64_t>(dim);
    }
    out.put<std::uint32_t>(static_cast<std::uint32_t>(d.attrs.size()));
    for (const auto& [k, v] : d.attrs) {
      out.put_string(k);
      out.put_string(v);
    }
    const std::size_t nchunks = d.data.empty()
                                    ? 0
                                    : (d.data.size() + chunk_size - 1) / chunk_size;
    out.put<std::uint32_t>(static_cast<std::uint32_t>(nchunks));
    const ByteSpan all(d.data);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t offset = c * chunk_size;
      const std::size_t take = std::min(chunk_size, d.data.size() - offset);
      const ByteSpan chunk = all.subspan(offset, take);
      out.put<std::uint64_t>(take);
      out.put<std::uint32_t>(crc32c(chunk));
      out.put_bytes(chunk);
    }
  }
  return std::move(out).take();
}

H5File H5File::parse(ByteSpan data) {
  ByteReader in(data);
  if (in.get<std::uint32_t>() != kMagic) {
    throw_format("h5lite: bad magic");
  }
  const auto version = in.get<std::uint32_t>();
  if (version != kVersion) {
    throw_format("h5lite: unsupported version {}", version);
  }
  const auto count = in.get<std::uint32_t>();
  H5File file;
  for (std::uint32_t i = 0; i < count; ++i) {
    Dataset d;
    d.name = in.get_string();
    d.dtype = static_cast<DType>(in.get<std::uint8_t>());
    (void)dtype_size(d.dtype);  // validates the enum value
    const auto ndim = in.get<std::uint32_t>();
    d.shape.resize(ndim);
    for (auto& dim : d.shape) {
      dim = in.get<std::uint64_t>();
    }
    const auto nattrs = in.get<std::uint32_t>();
    for (std::uint32_t a = 0; a < nattrs; ++a) {
      std::string k = in.get_string();
      d.attrs.emplace(std::move(k), in.get_string());
    }
    const auto nchunks = in.get<std::uint32_t>();
    // The declared shape can lie (bit rot); chunk payloads cannot exceed the
    // bytes actually present, so cap the reservation at the input size.
    d.data.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(d.element_count() * dtype_size(d.dtype),
                                in.remaining())));
    for (std::uint32_t c = 0; c < nchunks; ++c) {
      const std::size_t chunk_start = in.position();
      if (in.remaining() < 12) {
        throw TruncatedError(
            fmt("h5lite: file ends inside the header of chunk {} of dataset "
                "'{}' at offset {}",
                c, d.name, chunk_start),
            chunk_start);
      }
      const auto size = in.get<std::uint64_t>();
      const auto crc = in.get<std::uint32_t>();
      if (size > in.remaining()) {
        throw TruncatedError(
            fmt("h5lite: chunk {} of dataset '{}' at offset {} declares {} "
                "bytes but only {} remain",
                c, d.name, chunk_start, size, in.remaining()),
            chunk_start);
      }
      const ByteSpan chunk = in.get_bytes(static_cast<std::size_t>(size));
      if (crc32c(chunk) != crc) {
        throw_format("h5lite: chunk {} of dataset '{}' fails CRC", c, d.name);
      }
      d.data.insert(d.data.end(), chunk.begin(), chunk.end());
    }
    file.add(std::move(d));
  }
  return file;
}

}  // namespace sciprep::io
