// Minimal protobuf wire-format codec for tf.train.Example.
//
// The CosmoFlow TFRecord payloads are serialized tf.train.Example messages:
//   Example        { 1: Features }
//   Features       { 1: map<string, Feature> }  (map = repeated MapEntry{1:key 2:value})
//   Feature        { 1: BytesList | 2: FloatList | 3: Int64List }
//   BytesList      { 1: repeated bytes }
//   FloatList      { 1: repeated float  (packed) }
//   Int64List      { 1: repeated int64  (packed) }
// Only the schema above is implemented — enough to interoperate with the
// benchmark's data layout without pulling in protobuf.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "sciprep/common/buffer.hpp"

namespace sciprep::io {

struct Feature {
  // exactly one of these is meaningful; `kind` selects it
  enum class Kind { kBytes, kFloat, kInt64 } kind = Kind::kBytes;
  std::vector<Bytes> bytes_list;
  std::vector<float> float_list;
  std::vector<std::int64_t> int64_list;

  static Feature of_bytes(Bytes b) {
    Feature f;
    f.kind = Kind::kBytes;
    f.bytes_list.push_back(std::move(b));
    return f;
  }
  static Feature of_floats(std::vector<float> v) {
    Feature f;
    f.kind = Kind::kFloat;
    f.float_list = std::move(v);
    return f;
  }
  static Feature of_int64s(std::vector<std::int64_t> v) {
    Feature f;
    f.kind = Kind::kInt64;
    f.int64_list = std::move(v);
    return f;
  }
};

/// A tf.train.Example: named features.
struct TfExample {
  std::map<std::string, Feature> features;

  /// Serialize to protobuf wire format.
  [[nodiscard]] Bytes serialize() const;

  /// Parse from protobuf wire format; throws FormatError on malformed input
  /// or unknown fields (strict by design: our own writers are the only
  /// producers).
  static TfExample parse(ByteSpan data);

  /// Access helpers that throw FormatError when the feature is missing or of
  /// the wrong kind, so call sites read as schema assertions.
  [[nodiscard]] const Bytes& bytes_feature(const std::string& name) const;
  [[nodiscard]] const std::vector<float>& float_feature(
      const std::string& name) const;
  [[nodiscard]] const std::vector<std::int64_t>& int64_feature(
      const std::string& name) const;
};

/// Low-level varint helpers, exposed for tests.
void put_varint(ByteWriter& out, std::uint64_t value);
std::uint64_t get_varint(ByteReader& in);

}  // namespace sciprep::io
