// In-memory sample types for the two workloads, plus their on-disk encodings
// (TFRecord/tf.Example for CosmoFlow, h5lite for DeepCAM) matching how the
// MLPerf HPC benchmarks store them.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sciprep/common/buffer.hpp"
#include "sciprep/io/h5lite.hpp"
#include "sciprep/io/tfexample.hpp"

namespace sciprep::io {

/// A CosmoFlow training sample: a dim³ voxel grid of dark-matter particle
/// counts at 4 redshifts, labelled with the 4 cosmological parameters that
/// generated the universe.
///
/// Layout is redshift-innermost ([z][y][x][r]), so the "group of 4 redshift
/// values per voxel" the encoder exploits is contiguous.
struct CosmoSample {
  static constexpr int kRedshifts = 4;
  static constexpr int kParams = 4;

  int dim = 0;  // voxels per side (the benchmark uses 128)
  std::vector<std::int32_t> counts;  // dim^3 * kRedshifts
  std::array<float, kParams> params{};

  [[nodiscard]] std::size_t voxel_count() const {
    return static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim) *
           static_cast<std::size_t>(dim);
  }
  [[nodiscard]] std::size_t value_count() const {
    return voxel_count() * kRedshifts;
  }
  /// Raw (uncompressed) sample payload size on disk: the benchmark stores
  /// counts as uint16 histograms.
  [[nodiscard]] std::size_t byte_size() const {
    return value_count() * sizeof(std::uint16_t);
  }

  /// Count at voxel (x, y, z), redshift r.
  [[nodiscard]] std::int32_t at(int x, int y, int z, int r) const {
    const std::size_t idx =
        ((static_cast<std::size_t>(z) * dim + y) * dim + x) * kRedshifts +
        static_cast<std::size_t>(r);
    return counts[idx];
  }

  /// tf.train.Example with features "x" (raw int32 bytes), "y" (4 floats),
  /// and "size" (dim), mirroring the benchmark's TFRecord schema.
  [[nodiscard]] TfExample to_example() const;
  static CosmoSample from_example(const TfExample& example);

  /// Convenience: full TFRecord payload round trip.
  [[nodiscard]] Bytes serialize() const { return to_example().serialize(); }
  static CosmoSample parse(ByteSpan payload) {
    return from_example(TfExample::parse(payload));
  }
};

/// A DeepCAM training sample: a 16-channel FP32 climate image plus a per-pixel
/// segmentation mask (0 = background, 1 = tropical cyclone, 2 = atmospheric
/// river).
///
/// Layout is channel-major ([c][h][w]) — each channel is a contiguous image
/// whose rows are the smooth x-direction lines the encoder compresses.
struct CamSample {
  static constexpr int kClasses = 3;

  int height = 0;   // benchmark: 768
  int width = 0;    // benchmark: 1152
  int channels = 0; // benchmark: 16
  std::vector<float> image;          // channels * height * width
  std::vector<std::uint8_t> labels;  // height * width

  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(height) * static_cast<std::size_t>(width);
  }
  [[nodiscard]] std::size_t value_count() const {
    return pixel_count() * static_cast<std::size_t>(channels);
  }
  [[nodiscard]] std::size_t byte_size() const {
    return value_count() * sizeof(float) + pixel_count();
  }

  [[nodiscard]] float at(int c, int y, int x) const {
    return image[(static_cast<std::size_t>(c) * height + y) * width + x];
  }
  /// Span over one row of one channel — the unit the codec operates on.
  [[nodiscard]] std::span<const float> line(int c, int y) const {
    return {image.data() + (static_cast<std::size_t>(c) * height + y) * width,
            static_cast<std::size_t>(width)};
  }

  /// h5lite file with datasets "climate" (f32 [c,h,w]) and "labels" (u8 [h,w]).
  [[nodiscard]] H5File to_h5() const;
  static CamSample from_h5(const H5File& file);

  [[nodiscard]] Bytes serialize() const { return to_h5().serialize(); }
  static CamSample parse(ByteSpan data) { return from_h5(H5File::parse(data)); }
};

}  // namespace sciprep::io
