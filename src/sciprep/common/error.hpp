// Error types shared across the sciprep library.
//
// The library reports recoverable failures (corrupt input, format violations,
// capacity overruns) via exceptions derived from `Error`, following the
// C++ Core Guidelines (E.2). Programming errors are guarded with SCIPREP_ASSERT
// which is active in all build types: a data-loading pipeline that silently
// decodes garbage is worse than one that stops.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sciprep/common/format.hpp"

namespace sciprep {

/// Base class for all sciprep exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

/// Input data violates a format contract (truncated stream, bad CRC,
/// out-of-range key, ...).
class FormatError : public Error {
 public:
  using Error::Error;
};

/// A configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// An I/O operation on the host filesystem failed.
class IoError : public Error {
 public:
  using Error::Error;
};

/// An I/O operation failed in a way that is expected to succeed on retry
/// (a parallel-filesystem stall, a dropped connection, an injected transient
/// fault). Recovery policies may retry these; they must not retry anything
/// else.
class TransientError : public IoError {
 public:
  using IoError::IoError;
};

/// Stored data ends before its own framing says it should (a record whose
/// declared length runs past EOF, a chunk table pointing beyond the file).
/// Carries the stream offset of the element that could not be completed.
/// Derives from IoError — a truncated shard is an I/O-level defect — but
/// classifies as corrupt: rereading the same bytes cannot help.
class TruncatedError : public IoError {
 public:
  TruncatedError(std::string msg, std::uint64_t offset)
      : IoError(std::move(msg)), offset_(offset) {}
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::uint64_t offset_ = 0;
};

/// The operation was cooperatively cancelled (sciprep::guard) — the caller
/// tore down the epoch or the process is shutting down. Never recoverable:
/// recovery policies re-throw so the pipeline unwinds promptly instead of
/// retrying or skipping its way past an abort.
class CancelledError : public Error {
 public:
  using Error::Error;
};

/// A guarded stage overran its deadline (the sciprep::guard watchdog).
/// Derives TransientError deliberately: a hang on shared storage is expected
/// to clear on a fresh attempt, so recovery policies treat deadline expiry
/// exactly like a slow, retryable I/O fault. Carries the stage name and the
/// elapsed time when the watchdog fired.
class DeadlineError : public TransientError {
 public:
  DeadlineError(std::string msg, std::string stage, double elapsed_seconds)
      : TransientError(std::move(msg)),
        stage_(std::move(stage)),
        elapsed_seconds_(elapsed_seconds) {}
  [[nodiscard]] const std::string& stage() const noexcept { return stage_; }
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return elapsed_seconds_;
  }

 private:
  std::string stage_;
  double elapsed_seconds_ = 0;
};

/// Failure families as seen by recovery policies (sciprep::fault). The class
/// decides which actions can possibly help: transients may clear on retry,
/// corrupt data stays corrupt (skip or fall back), config errors are caller
/// bugs and never recoverable, cancellation must unwind, and everything else
/// is fatal.
enum class ErrorClass {
  kTransient,  // expected to clear on retry (includes deadline expiry)
  kCorrupt,    // the bytes are bad and will stay bad
  kConfig,     // caller error; policies must re-throw
  kCancelled,  // cooperative cancellation; policies must re-throw
  kFatal,      // unknown failure; policies must re-throw
};

inline ErrorClass classify(const std::exception& e) noexcept {
  if (dynamic_cast<const ConfigError*>(&e) != nullptr) {
    return ErrorClass::kConfig;
  }
  if (dynamic_cast<const CancelledError*>(&e) != nullptr) {
    return ErrorClass::kCancelled;
  }
  if (dynamic_cast<const TransientError*>(&e) != nullptr) {
    return ErrorClass::kTransient;
  }
  if (dynamic_cast<const TruncatedError*>(&e) != nullptr ||
      dynamic_cast<const FormatError*>(&e) != nullptr) {
    return ErrorClass::kCorrupt;
  }
  return ErrorClass::kFatal;
}

inline const char* error_class_name(ErrorClass c) noexcept {
  switch (c) {
    case ErrorClass::kTransient:
      return "transient";
    case ErrorClass::kCorrupt:
      return "corrupt";
    case ErrorClass::kConfig:
      return "config";
    case ErrorClass::kCancelled:
      return "cancelled";
    case ErrorClass::kFatal:
      return "fatal";
  }
  return "?";
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw Error(fmt("assertion failed: {} at {}:{}", expr, file, line));
}
}  // namespace detail

#define SCIPREP_ASSERT(expr)                                       \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::sciprep::detail::assert_fail(#expr, __FILE__, __LINE__);   \
    }                                                              \
  } while (false)

/// Throw FormatError with a formatted message.
template <class... Args>
[[noreturn]] void throw_format(std::string_view format_string, Args&&... args) {
  throw FormatError(fmt(format_string, std::forward<Args>(args)...));
}

}  // namespace sciprep
