// Error types shared across the sciprep library.
//
// The library reports recoverable failures (corrupt input, format violations,
// capacity overruns) via exceptions derived from `Error`, following the
// C++ Core Guidelines (E.2). Programming errors are guarded with SCIPREP_ASSERT
// which is active in all build types: a data-loading pipeline that silently
// decodes garbage is worse than one that stops.
#pragma once

#include <stdexcept>
#include <string>

#include "sciprep/common/format.hpp"

namespace sciprep {

/// Base class for all sciprep exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

/// Input data violates a format contract (truncated stream, bad CRC,
/// out-of-range key, ...).
class FormatError : public Error {
 public:
  using Error::Error;
};

/// A configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// An I/O operation on the host filesystem failed.
class IoError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw Error(fmt("assertion failed: {} at {}:{}", expr, file, line));
}
}  // namespace detail

#define SCIPREP_ASSERT(expr)                                       \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::sciprep::detail::assert_fail(#expr, __FILE__, __LINE__);   \
    }                                                              \
  } while (false)

/// Throw FormatError with a formatted message.
template <class... Args>
[[noreturn]] void throw_format(std::string_view format_string, Args&&... args) {
  throw FormatError(fmt(format_string, std::forward<Args>(args)...));
}

}  // namespace sciprep
