#include "sciprep/common/threadpool.hpp"

#include <algorithm>
#include <utility>

namespace sciprep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  // Run inline when the pool would add nothing but overhead.
  if (n <= grain || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sciprep
