#include "sciprep/common/threadpool.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "sciprep/common/format.hpp"

namespace sciprep {

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index = next.fetch_add(1);
  return index;
}

namespace {

// Function-local statics: usable from other static-storage objects (the
// global tracer's exporter) regardless of initialization order.
std::mutex& thread_names_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::uint32_t, std::string>& thread_names_map() {
  static std::map<std::uint32_t, std::string> names;
  return names;
}

}  // namespace

void set_thread_name(std::string name) {
  const std::uint32_t index = thread_index();
  std::lock_guard lock(thread_names_mutex());
  thread_names_map()[index] = std::move(name);
}

std::string thread_name(std::uint32_t index) {
  std::lock_guard lock(thread_names_mutex());
  const auto& names = thread_names_map();
  const auto it = names.find(index);
  return it == names.end() ? std::string() : it->second;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      set_thread_name(fmt("pool.worker-{}", i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    queue_.push_back({std::move(task), std::chrono::steady_clock::now(),
                      guard::current_token()});
    depth = queue_.size();
  }
  cv_task_.notify_one();
  if (ThreadPoolObserver* obs = observer_.load()) {
    obs->on_enqueue(depth);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  // Run inline when the pool would add nothing but overhead.
  if (n <= grain || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    const auto started = std::chrono::steady_clock::now();
    try {
      const guard::CancelScope scope(std::move(task.token));
      task.fn();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    if (ThreadPoolObserver* obs = observer_.load()) {
      const auto finished = std::chrono::steady_clock::now();
      obs->on_task_complete(
          std::chrono::duration<double>(started - task.enqueued_at).count(),
          std::chrono::duration<double>(finished - started).count());
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sciprep
