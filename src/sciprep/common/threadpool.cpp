#include "sciprep/common/threadpool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "sciprep/common/format.hpp"

namespace sciprep {

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index = next.fetch_add(1);
  return index;
}

namespace {

// Function-local statics: usable from other static-storage objects (the
// global tracer's exporter) regardless of initialization order.
std::mutex& thread_names_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::uint32_t, std::string>& thread_names_map() {
  static std::map<std::uint32_t, std::string> names;
  return names;
}

}  // namespace

void set_thread_name(std::string name) {
  const std::uint32_t index = thread_index();
  std::lock_guard lock(thread_names_mutex());
  thread_names_map()[index] = std::move(name);
}

std::string thread_name(std::uint32_t index) {
  std::lock_guard lock(thread_names_mutex());
  const auto& names = thread_names_map();
  const auto it = names.find(index);
  return it == names.end() ? std::string() : it->second;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      set_thread_name(fmt("pool.worker-{}", i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queued_;
}

void ThreadPool::enqueue_locked(QueuedTask task, std::uint64_t key,
                                std::uint32_t weight) {
  SubQueue& q = queues_[key];
  q.weight = std::max<std::uint32_t>(1, weight);
  if (q.tasks.empty()) {
    // A class rejoining after idling starts at the current virtual time: it
    // competes fairly from now on but cannot cash in credit accumulated
    // while it had nothing to run.
    q.pass = std::max(q.pass, vtime_);
  }
  q.tasks.push_back(std::move(task));
  ++queued_;
}

void ThreadPool::submit(std::function<void()> task, std::uint64_t key,
                        std::uint32_t weight) {
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    enqueue_locked({std::move(task), std::chrono::steady_clock::now(),
                    guard::current_token(), /*group=*/nullptr},
                   key, weight);
    depth = queued_;
  }
  cv_task_.notify_one();
  if (ThreadPoolObserver* obs = observer_.load()) {
    obs->on_enqueue(depth);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain, std::uint64_t key,
                              std::uint32_t weight) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  // Run inline when the pool would add nothing but overhead.
  if (n <= grain || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Group-local completion: the caller waits for exactly its own grains and
  // sees exactly its own first failure — never another caller's — so many
  // tenants can fan out on one shared pool without error or latency bleed.
  auto group = std::make_shared<TaskGroup>();
  for (std::size_t begin = 0; begin < n; begin += grain) {
    ++group->remaining;
  }
  std::size_t depth = 0;
  std::size_t grains = 0;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t begin = 0; begin < n; begin += grain) {
      const std::size_t end = std::min(n, begin + grain);
      ++grains;
      enqueue_locked({[&fn, begin, end] {
                        for (std::size_t i = begin; i < end; ++i) fn(i);
                      },
                      std::chrono::steady_clock::now(),
                      guard::current_token(), group},
                     key, weight);
    }
    depth = queued_;
  }
  cv_task_.notify_all();
  if (ThreadPoolObserver* obs = observer_.load()) {
    // One on_enqueue per task, pairing with each task's on_task_complete.
    for (std::size_t g = 0; g < grains; ++g) obs->on_enqueue(depth);
  }
  std::unique_lock glock(group->m);
  group->cv.wait(glock, [&] { return group->remaining == 0; });
  if (group->error) {
    std::exception_ptr err = std::exchange(group->error, nullptr);
    glock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      if (queued_ == 0) {
        return;  // stopping
      }
      // Stride pick: the backlogged class with the smallest pass runs next
      // (ties break toward the smallest key, deterministically). The number
      // of classes is the number of concurrent tenants — single digits — so
      // a linear scan beats any priority structure's constant factor.
      auto chosen = queues_.end();
      for (auto it = queues_.begin(); it != queues_.end(); ++it) {
        if (it->second.tasks.empty()) continue;
        if (chosen == queues_.end() || it->second.pass < chosen->second.pass) {
          chosen = it;
        }
      }
      SubQueue& q = chosen->second;
      vtime_ = q.pass;
      q.pass += kStrideUnit / q.weight;
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      --queued_;
      ++active_;
    }
    const auto started = std::chrono::steady_clock::now();
    try {
      const guard::CancelScope scope(std::move(task.token));
      task.fn();
    } catch (...) {
      if (task.group) {
        // Group tasks fail their own parallel_for call only.
        std::lock_guard glock(task.group->m);
        if (!task.group->error) task.group->error = std::current_exception();
      } else {
        // Bare submit()ed failures surface through wait_idle().
        std::lock_guard lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    if (ThreadPoolObserver* obs = observer_.load()) {
      const auto finished = std::chrono::steady_clock::now();
      obs->on_task_complete(
          std::chrono::duration<double>(started - task.enqueued_at).count(),
          std::chrono::duration<double>(finished - started).count());
    }
    if (task.group) {
      // Completion is announced only after the observer saw the task, so a
      // caller woken by its group never races the pool's telemetry.
      {
        std::lock_guard glock(task.group->m);
        --task.group->remaining;
      }
      task.group->cv.notify_one();
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queued_ == 0 && active_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sciprep
