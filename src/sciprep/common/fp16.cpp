#include "sciprep/common/fp16.hpp"

#include <bit>
#include <cstdint>

namespace sciprep {

namespace {
constexpr std::uint32_t kF32SignMask = 0x8000'0000u;
constexpr int kF32ExpBias = 127;
constexpr int kF16ExpBias = 15;
}  // namespace

std::uint16_t fp32_to_fp16_bits(float value) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((f & kF32SignMask) >> 16);
  const std::uint32_t abs = f & 0x7FFF'FFFFu;

  // NaN / Inf.
  if (abs >= 0x7F80'0000u) {
    if (abs > 0x7F80'0000u) {
      // NaN: preserve top mantissa bits, force a quiet NaN payload bit so the
      // result stays a NaN even if the truncated payload would be zero.
      return static_cast<std::uint16_t>(sign | 0x7C00u | 0x0200u |
                                        ((abs >> 13) & 0x03FFu));
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  // Overflow to infinity: anything >= 2^16 - 2^4 (half of max ulp above
  // kHalfMax) rounds to Inf. Threshold in f32 bits: exponent 142, mantissa
  // pattern for 65520.
  if (abs >= 0x4780'0000u) {  // 65536.0f
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  const int exp32 = static_cast<int>(abs >> 23);
  const int unbiased = exp32 - kF32ExpBias;

  if (unbiased >= -14) {
    // Normal half range (may still round up to Inf at the very top).
    std::uint32_t mant = abs & 0x007F'FFFFu;
    std::uint32_t half =
        (static_cast<std::uint32_t>(unbiased + kF16ExpBias) << 10) | (mant >> 13);
    // Round to nearest even on the 13 dropped bits.
    const std::uint32_t rem = mant & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
      ++half;  // carries propagate into the exponent correctly
    }
    return static_cast<std::uint16_t>(sign | half);
  }

  // Denormal half or underflow to zero.
  if (unbiased < -25) {
    return sign;  // underflows to signed zero even after rounding
  }
  // Build the significand with the implicit leading 1, then shift right so the
  // binary point matches a half denormal (exponent -14, no implicit bit).
  std::uint32_t sig = (abs & 0x007F'FFFFu) | 0x0080'0000u;
  const int shift = -14 - unbiased + 13;  // total right-shift to 10-bit field
  const std::uint32_t half = sig >> shift;
  const std::uint32_t rem = sig & ((1u << shift) - 1);
  const std::uint32_t halfway = 1u << (shift - 1);
  std::uint32_t rounded = half;
  if (rem > halfway || (rem == halfway && (half & 1u))) {
    ++rounded;  // may round up into the smallest normal, which is correct
  }
  return static_cast<std::uint16_t>(sign | rounded);
}

float fp16_bits_to_fp32(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x03FFu;

  if (exp == 0x1Fu) {  // Inf / NaN
    return std::bit_cast<float>(sign | 0x7F80'0000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) {
      return std::bit_cast<float>(sign);  // signed zero
    }
    // Denormal: normalize by shifting the mantissa until the leading 1 moves
    // into the implicit position.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x0400u) == 0);
    const std::uint32_t exp32 =
        static_cast<std::uint32_t>(kF32ExpBias - kF16ExpBias - e);
    return std::bit_cast<float>(sign | (exp32 << 23) | ((m & 0x03FFu) << 13));
  }
  const std::uint32_t exp32 = exp + (kF32ExpBias - kF16ExpBias);
  return std::bit_cast<float>(sign | (exp32 << 23) | (mant << 13));
}

}  // namespace sciprep
