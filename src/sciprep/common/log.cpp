#include "sciprep/common/log.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "sciprep/common/threadpool.hpp"

namespace sciprep {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogHook> g_hook{nullptr};
std::array<std::atomic<std::uint64_t>, 4> g_counts{};
std::mutex g_io_mutex;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// "2026-08-06T12:34:56.789Z" into `out` (at least 32 bytes).
void format_utc_timestamp(char* out, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char date[24];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(out, size, "%s.%03dZ", date, static_cast<int>(ms));
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

std::uint64_t log_count(LogLevel level) noexcept {
  return g_counts[static_cast<std::size_t>(level)].load(
      std::memory_order_relaxed);
}

void reset_log_counts() noexcept {
  for (auto& c : g_counts) c.store(0, std::memory_order_relaxed);
}

void set_log_hook(LogHook hook) noexcept { g_hook.store(hook); }

void log_message(LogLevel level, std::string_view message) {
  g_counts[static_cast<std::size_t>(level)].fetch_add(
      1, std::memory_order_relaxed);
  if (const LogHook hook = g_hook.load()) {
    hook(level, message);
  }
  if (level < g_level.load()) return;
  char timestamp[32];
  format_utc_timestamp(timestamp, sizeof(timestamp));
  const std::uint32_t tid = thread_index();
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%s sciprep:%s t%u] %.*s\n", timestamp,
               level_name(level), tid, static_cast<int>(message.size()),
               message.data());
  std::fflush(stderr);
}

}  // namespace sciprep
