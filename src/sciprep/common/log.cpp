#include "sciprep/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sciprep {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, std::string_view message) {
  if (level < g_level.load()) return;
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[sciprep:%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
  std::fflush(stderr);
}

}  // namespace sciprep
