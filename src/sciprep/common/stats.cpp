#include "sciprep/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"

namespace sciprep {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void FrequencyTable::add(std::int64_t value, std::uint64_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
FrequencyTable::by_frequency() const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out(counts_.begin(),
                                                          counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double FrequencyTable::power_law_slope(std::size_t ranks) const {
  const auto ordered = by_frequency();
  const std::size_t n = std::min(ranks, ordered.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(ordered[i].second));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (dn * sxy - sx * sy) / denom;
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile_sorted(std::span<const double> sorted_values, double q) {
  SCIPREP_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted_values.empty()) return std::numeric_limits<double>::quiet_NaN();
  SCIPREP_ASSERT(std::is_sorted(sorted_values.begin(), sorted_values.end()));
  if (sorted_values.size() == 1) return sorted_values[0];
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

LogHistogram::LogHistogram() : LogHistogram(Options()) {}

LogHistogram::LogHistogram(Options options) : options_(options) {
  SCIPREP_ASSERT(options_.min_value > 0);
  SCIPREP_ASSERT(options_.max_value > options_.min_value);
  SCIPREP_ASSERT(options_.buckets_per_octave >= 1);
  log2_min_ = std::log2(options_.min_value);
  const double octaves =
      std::log2(options_.max_value) - log2_min_;
  const auto spans = static_cast<std::size_t>(
      std::ceil(octaves * options_.buckets_per_octave));
  // Bucket 0 is the underflow bucket; the last bucket doubles as overflow.
  buckets_.assign(1 + std::max<std::size_t>(1, spans), 0);
}

std::size_t LogHistogram::bucket_index(double value) const noexcept {
  if (!(value > options_.min_value)) return 0;  // also catches NaN
  const double octaves = std::log2(value) - log2_min_;
  const auto idx = 1 + static_cast<std::size_t>(
                           octaves * options_.buckets_per_octave);
  return std::min(idx, buckets_.size() - 1);
}

double LogHistogram::bucket_lower(std::size_t index) const noexcept {
  if (index == 0) return 0.0;
  return std::exp2(log2_min_ + static_cast<double>(index - 1) /
                                   options_.buckets_per_octave);
}

double LogHistogram::bucket_upper(std::size_t index) const noexcept {
  if (index + 1 >= buckets_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return std::exp2(log2_min_ +
                   static_cast<double>(index) / options_.buckets_per_octave);
}

void LogHistogram::record(double value, std::uint64_t weight) {
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[bucket_index(value)] += weight;
  count_ += weight;
  sum_ += value * static_cast<double>(weight);
}

void LogHistogram::merge(const LogHistogram& other) {
  SCIPREP_ASSERT(buckets_.size() == other.buckets_.size());
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::mean() const noexcept {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : sum_ / static_cast<double>(count_);
}

double LogHistogram::min() const noexcept {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double LogHistogram::max() const noexcept {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double LogHistogram::quantile(double q) const {
  SCIPREP_ASSERT(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  // Exact at the extremes (min/max are tracked alongside the buckets).
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Same rank convention as percentile(): rank q*(n-1) over the samples.
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const auto in_bucket = static_cast<double>(buckets_[i]);
    if (target < static_cast<double>(before) + in_bucket) {
      const double frac =
          (target - static_cast<double>(before) + 0.5) / in_bucket;
      const double lo = std::max(bucket_lower(i), options_.min_value *
                                                      0.5);  // avoid log(0)
      double hi = bucket_upper(i);
      if (!std::isfinite(hi)) hi = std::max(max_, lo * 2);
      const double v = lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
      return std::clamp(v, min_, max_);
    }
    before += buckets_[i];
  }
  return max_;
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return unit == 0 ? fmt("{} B", bytes) : fmt("{:.2f} {}", v, kUnits[unit]);
}

}  // namespace sciprep
