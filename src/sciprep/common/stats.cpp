#include "sciprep/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"

namespace sciprep {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void FrequencyTable::add(std::int64_t value, std::uint64_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
FrequencyTable::by_frequency() const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out(counts_.begin(),
                                                          counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double FrequencyTable::power_law_slope(std::size_t ranks) const {
  const auto ordered = by_frequency();
  const std::size_t n = std::min(ranks, ordered.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(ordered[i].second));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (dn * sxy - sx * sy) / denom;
}

double percentile(std::span<const double> sorted_values, double q) {
  SCIPREP_ASSERT(!sorted_values.empty());
  SCIPREP_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted_values.size() == 1) return sorted_values[0];
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return unit == 0 ? fmt("{} B", bytes) : fmt("{:.2f} {}", v, kUnits[unit]);
}

}  // namespace sciprep
