// Minimal `{}`-placeholder string formatting.
//
// The toolchain this library targets (GCC 12) predates std::format in
// libstdc++, so sciprep carries its own small formatter. Supported syntax is
// the std::format subset the library uses:
//   {}         default conversion
//   {:.3f}     fixed-point with precision (also e / g)
//   {:8}       minimum width, right-aligned
//   {:<8}      minimum width, left-aligned
//   {:8.2f}    width + precision
//   {:x}       hexadecimal integers
// Arguments are consumed left to right; excess/missing arguments throw.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace sciprep {

namespace fmt_detail {

struct Spec {
  int width = 0;
  int precision = -1;
  char type = 0;        // 0, 'f', 'e', 'g', 'x', 'd'
  bool left_align = false;
};

inline Spec parse_spec(std::string_view s) {
  Spec spec;
  std::size_t i = 0;
  if (i < s.size() && (s[i] == '<' || s[i] == '>')) {
    spec.left_align = s[i] == '<';
    ++i;
  }
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    spec.width = spec.width * 10 + (s[i] - '0');
    ++i;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    spec.precision = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      spec.precision = spec.precision * 10 + (s[i] - '0');
      ++i;
    }
  }
  if (i < s.size()) {
    spec.type = s[i];
    ++i;
  }
  if (i != s.size()) {
    throw std::invalid_argument("sciprep::fmt: bad format spec '" +
                                std::string(s) + "'");
  }
  return spec;
}

inline void pad(std::string& out, const Spec& spec, std::string_view body) {
  if (static_cast<int>(body.size()) >= spec.width) {
    out.append(body);
    return;
  }
  const std::size_t fill = static_cast<std::size_t>(spec.width) - body.size();
  if (spec.left_align) {
    out.append(body);
    out.append(fill, ' ');
  } else {
    out.append(fill, ' ');
    out.append(body);
  }
}

inline void format_one(std::string& out, const Spec& spec, double v) {
  char conv = spec.type != 0 ? spec.type : 'g';
  if (conv == 'd') conv = 'g';
  char buf[64];
  const int prec = spec.precision >= 0 ? spec.precision : 6;
  char pattern[16] = {'%', '.', '*'};
  pattern[3] = conv;
  pattern[4] = '\0';
  std::snprintf(buf, sizeof(buf), pattern, prec, v);
  pad(out, spec, buf);
}

template <class T>
  requires std::is_integral_v<T>
inline void format_one(std::string& out, const Spec& spec, T v) {
  if (spec.type == 'f' || spec.type == 'e' || spec.type == 'g' ||
      spec.precision >= 0) {
    format_one(out, spec, static_cast<double>(v));
    return;
  }
  char buf[32];
  if (spec.type == 'x') {
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(
                      static_cast<std::make_unsigned_t<T>>(v)));
  } else if constexpr (std::is_signed_v<T>) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  }
  pad(out, spec, buf);
}

inline void format_one(std::string& out, const Spec& spec,
                       std::string_view v) {
  pad(out, spec, v);
}
inline void format_one(std::string& out, const Spec& spec, const char* v) {
  pad(out, spec, std::string_view(v));
}
inline void format_one(std::string& out, const Spec& spec,
                       const std::string& v) {
  pad(out, spec, v);
}
inline void format_one(std::string& out, const Spec& spec, bool v) {
  pad(out, spec, v ? "true" : "false");
}
inline void format_one(std::string& out, const Spec& spec, float v) {
  format_one(out, spec, static_cast<double>(v));
}

inline void format_rest(std::string& out, std::string_view fmt) {
  std::size_t i = 0;
  while (i < fmt.size()) {
    if (fmt[i] == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        i += 2;
        continue;
      }
      throw std::invalid_argument(
          "sciprep::fmt: more placeholders than arguments");
    }
    if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out.push_back('}');
      i += 2;
      continue;
    }
    out.push_back(fmt[i++]);
  }
}

template <class First, class... Rest>
void format_rest(std::string& out, std::string_view fmt, First&& first,
                 Rest&&... rest) {
  std::size_t i = 0;
  while (i < fmt.size()) {
    if (fmt[i] == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        i += 2;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        throw std::invalid_argument("sciprep::fmt: unterminated placeholder");
      }
      std::string_view body = fmt.substr(i + 1, close - i - 1);
      Spec spec;
      if (!body.empty()) {
        if (body[0] != ':') {
          throw std::invalid_argument(
              "sciprep::fmt: only sequential {} placeholders are supported");
        }
        spec = parse_spec(body.substr(1));
      }
      format_one(out, spec, std::forward<First>(first));
      format_rest(out, fmt.substr(close + 1), std::forward<Rest>(rest)...);
      return;
    }
    if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out.push_back('}');
      i += 2;
      continue;
    }
    out.push_back(fmt[i++]);
  }
  throw std::invalid_argument("sciprep::fmt: more arguments than placeholders");
}

}  // namespace fmt_detail

/// Format `args` into `fmt` ({}-style placeholders, see file comment).
template <class... Args>
std::string fmt(std::string_view format_string, Args&&... args) {
  std::string out;
  out.reserve(format_string.size() + sizeof...(Args) * 8);
  fmt_detail::format_rest(out, format_string, std::forward<Args>(args)...);
  return out;
}

}  // namespace sciprep
