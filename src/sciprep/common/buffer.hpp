// Byte-buffer serialization helpers.
//
// All on-disk formats in sciprep (h5lite, TFRecord, codec containers) are
// little-endian; these helpers centralize the scalar marshalling so format
// code reads as field lists rather than shift soup.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sciprep/common/error.hpp"

namespace sciprep {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Appends little-endian scalars and raw ranges to a growing byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : out_(std::move(initial)) {}

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void put(T value) {
    static_assert(std::endian::native == std::endian::little,
                  "sciprep serialization assumes a little-endian host");
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  void put_bytes(ByteSpan bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }
  void put_string(std::string_view s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Reserve `n` bytes now and return their offset, for later patching.
  std::size_t reserve(std::size_t n) {
    const std::size_t at = out_.size();
    out_.resize(out_.size() + n);
    return at;
  }
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void patch(std::size_t offset, T value) {
    SCIPREP_ASSERT(offset + sizeof(T) <= out_.size());
    std::memcpy(out_.data() + offset, &value, sizeof(T));
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

/// Sequential little-endian reader over a byte span. Throws FormatError on
/// truncation, so format parsers never read past the input.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    if (pos_ + sizeof(T) > data_.size()) {
      throw_format("truncated input: need {} bytes at offset {}, have {}",
                   sizeof(T), pos_, data_.size() - pos_);
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  ByteSpan get_bytes(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw_format("truncated input: need {} bytes at offset {}, have {}", n,
                   pos_, data_.size() - pos_);
    }
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    ByteSpan s = get_bytes(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }

  void skip(std::size_t n) { (void)get_bytes(n); }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// View a trivially-copyable vector as raw bytes (for hashing / writing).
template <class T>
  requires std::is_trivially_copyable_v<T>
ByteSpan as_bytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()), v.size() * sizeof(T)};
}

inline ByteSpan as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace sciprep
