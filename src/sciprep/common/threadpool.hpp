// Fixed-size worker pool with a blocking parallel_for.
//
// Used by the pipeline executor for CPU-side per-sample decode (the paper
// assigns "different samples to different threads" on the CPU) and by SimGpu
// to back its warp engine. Exceptions thrown by work items are captured and
// rethrown on the calling thread.
//
// Cancellation: submit() captures the submitter's ambient guard::CancelToken
// and the worker re-installs it (guard::CancelScope) around the task, so
// cancellation context flows through the pool transparently — a task that
// calls guard::poll_cancellation() observes the cancellation state of
// whoever submitted it, including through nested parallel_for fan-outs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sciprep/guard/cancel.hpp"

namespace sciprep {

/// Small dense id for the calling thread (0 for the first thread that asks).
/// Stable for the thread's lifetime; used for log lines and trace spans.
std::uint32_t thread_index() noexcept;

/// Register a human-readable role name for the calling thread, keyed by its
/// thread_index(). Pool workers, the guard watchdog, and the insight exporter
/// name themselves; apps may name their consumer thread. The name shows up as
/// Perfetto `thread_name` metadata in exported traces and in flight-recorder
/// incident files. Re-naming overwrites.
void set_thread_name(std::string name);

/// The registered name for a thread_index(), or "" when the thread never
/// named itself.
[[nodiscard]] std::string thread_name(std::uint32_t index);

/// Observation hook for ThreadPool queue/task telemetry. Implementations
/// must be thread-safe; callbacks run on submitter and worker threads.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  /// A task was queued; `queue_depth` counts it.
  virtual void on_enqueue(std::size_t queue_depth) { (void)queue_depth; }
  /// A task finished. `queue_seconds` is the time it waited in the queue,
  /// `run_seconds` the time it ran (including a throwing run).
  virtual void on_task_complete(double queue_seconds, double run_seconds) {
    (void)queue_seconds;
    (void)run_seconds;
  }
};

class ThreadPool {
 public:
  /// `threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Attach an unowned observer (nullptr detaches). The observer must
  /// outlive the pool or be detached before destruction.
  void set_observer(ThreadPoolObserver* observer) noexcept {
    observer_.store(observer);
  }

  /// Tasks currently waiting in the queue (excludes running tasks).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Enqueue one task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// captured exception, if any.
  void wait_idle();

  /// Run fn(i) for i in [0, n), partitioned into contiguous grains, and wait.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
    guard::CancelToken token;  // submitter's ambient token (often null)
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::atomic<ThreadPoolObserver*> observer_{nullptr};
};

/// Process-wide shared pool for callers that do not manage their own.
ThreadPool& global_pool();

}  // namespace sciprep
