// Fixed-size worker pool with a blocking parallel_for and weighted-fair
// scheduling across submission classes.
//
// Used by the pipeline executor for CPU-side per-sample decode (the paper
// assigns "different samples to different threads" on the CPU), by SimGpu
// to back its warp engine, and — shared — by sciprep::serve to multiplex
// many tenants' decode fan-outs onto one set of workers. Exceptions thrown
// by work items are captured and rethrown on the calling thread.
//
// Scheduling: every task belongs to a scheduling class (`key`), and classes
// compete under stride scheduling — each class advances a virtual-time pass
// by kStrideUnit/weight per dispatched task, and workers always pick the
// backlogged class with the smallest pass. A class with weight 3 therefore
// gets 3x the dispatch rate of a weight-1 class while both are backlogged,
// and an idle class rejoins at the current virtual time instead of cashing
// in saved-up credit (no starvation, no burst debt). The default key 0 /
// weight 1 makes a single-tenant pool behave exactly like a FIFO queue.
//
// Cancellation: submit() captures the submitter's ambient guard::CancelToken
// and the worker re-installs it (guard::CancelScope) around the task, so
// cancellation context flows through the pool transparently — a task that
// calls guard::poll_cancellation() observes the cancellation state of
// whoever submitted it, including through nested parallel_for fan-outs.
//
// Isolation: parallel_for tracks its own task group — completion and the
// first captured exception are per-call, not pool-global — so two tenants
// fanning out on one shared pool never observe each other's failures or
// block on each other's stragglers beyond ordinary queueing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sciprep/guard/cancel.hpp"

namespace sciprep {

/// Small dense id for the calling thread (0 for the first thread that asks).
/// Stable for the thread's lifetime; used for log lines and trace spans.
std::uint32_t thread_index() noexcept;

/// Register a human-readable role name for the calling thread, keyed by its
/// thread_index(). Pool workers, the guard watchdog, and the insight exporter
/// name themselves; apps may name their consumer thread. The name shows up as
/// Perfetto `thread_name` metadata in exported traces and in flight-recorder
/// incident files. Re-naming overwrites.
void set_thread_name(std::string name);

/// The registered name for a thread_index(), or "" when the thread never
/// named itself.
[[nodiscard]] std::string thread_name(std::uint32_t index);

/// Observation hook for ThreadPool queue/task telemetry. Implementations
/// must be thread-safe; callbacks run on submitter and worker threads.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  /// A task was queued; `queue_depth` counts it.
  virtual void on_enqueue(std::size_t queue_depth) { (void)queue_depth; }
  /// A task finished. `queue_seconds` is the time it waited in the queue,
  /// `run_seconds` the time it ran (including a throwing run).
  virtual void on_task_complete(double queue_seconds, double run_seconds) {
    (void)queue_seconds;
    (void)run_seconds;
  }
};

class ThreadPool {
 public:
  /// Virtual-time quantum one weight-1 task advances a class's pass by.
  static constexpr std::uint64_t kStrideUnit = 1 << 16;

  /// `threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Attach an unowned observer (nullptr detaches). The observer must
  /// outlive the pool or be detached before destruction.
  void set_observer(ThreadPoolObserver* observer) noexcept {
    observer_.store(observer);
  }

  /// Tasks currently waiting in the queue (excludes running tasks).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Enqueue one task under scheduling class `key` with the class's fair
  /// share `weight` (>= 1; the latest submit's weight wins for the class).
  /// Returns immediately.
  void submit(std::function<void()> task, std::uint64_t key = 0,
              std::uint32_t weight = 1);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception captured from a bare submit()ed task, if any (parallel_for
  /// failures are rethrown by parallel_for itself, never here).
  void wait_idle();

  /// Run fn(i) for i in [0, n), partitioned into contiguous grains, and wait
  /// for exactly these grains (not the whole pool). The first exception any
  /// grain throws is rethrown here after the group drains; other callers'
  /// tasks and failures are invisible. `key`/`weight` place the grains in a
  /// scheduling class (see submit).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1, std::uint64_t key = 0,
                    std::uint32_t weight = 1);

 private:
  /// Completion + error state of one parallel_for call. Workers decrement
  /// `remaining` only after the task's observer callback has fired, so a
  /// caller woken by the group cannot observe missing telemetry.
  struct TaskGroup {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
    guard::CancelToken token;  // submitter's ambient token (often null)
    std::shared_ptr<TaskGroup> group;  // null for bare submit()ed tasks
  };

  /// One scheduling class's backlog and virtual-time position.
  struct SubQueue {
    std::deque<QueuedTask> tasks;
    std::uint64_t pass = 0;
    std::uint32_t weight = 1;
  };

  void enqueue_locked(QueuedTask task, std::uint64_t key, std::uint32_t weight);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::map<std::uint64_t, SubQueue> queues_;
  std::size_t queued_ = 0;   // total tasks across queues_
  std::uint64_t vtime_ = 0;  // pass of the last dispatched class
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::atomic<ThreadPoolObserver*> observer_{nullptr};
};

/// Process-wide shared pool for callers that do not manage their own.
ThreadPool& global_pool();

}  // namespace sciprep
