// Fixed-size worker pool with a blocking parallel_for.
//
// Used by the pipeline executor for CPU-side per-sample decode (the paper
// assigns "different samples to different threads" on the CPU) and by SimGpu
// to back its warp engine. Exceptions thrown by work items are captured and
// rethrown on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sciprep {

class ThreadPool {
 public:
  /// `threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue one task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// captured exception, if any.
  void wait_idle();

  /// Run fn(i) for i in [0, n), partitioned into contiguous grains, and wait.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Process-wide shared pool for callers that do not manage their own.
ThreadPool& global_pool();

}  // namespace sciprep
