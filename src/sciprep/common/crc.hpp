// CRC-32 (ISO-HDLC / zlib polynomial, for gzip framing) and CRC-32C
// (Castagnoli, for TFRecord), plus TFRecord's masked CRC transform.
#pragma once

#include <cstdint>

#include "sciprep/common/buffer.hpp"

namespace sciprep {

/// CRC-32 with polynomial 0xEDB88320 (reflected), as used by gzip/zlib.
/// `seed` is the running CRC for incremental computation (start at 0).
std::uint32_t crc32(ByteSpan data, std::uint32_t seed = 0) noexcept;

/// CRC-32C with polynomial 0x82F63B78 (reflected Castagnoli), as used by
/// TFRecord.
std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0) noexcept;

/// TFRecord masks CRCs so that a CRC stored alongside data cannot be mistaken
/// for a CRC of that data. See tensorflow/core/lib/hash/crc32c.h.
constexpr std::uint32_t mask_crc(std::uint32_t crc) noexcept {
  constexpr std::uint32_t kMaskDelta = 0xA282EAD8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}
constexpr std::uint32_t unmask_crc(std::uint32_t masked) noexcept {
  constexpr std::uint32_t kMaskDelta = 0xA282EAD8u;
  const std::uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace sciprep
