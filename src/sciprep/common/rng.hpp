// Deterministic random number generation for synthetic dataset synthesis.
//
// xoshiro256** with splitmix64 seeding: fast, reproducible across platforms,
// and independent of libstdc++'s distribution implementations (we implement
// the distributions we need so generated datasets are bit-stable).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace sciprep {

/// splitmix64 — used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derive an independent seed for one stream of an epoch-keyed family.
///
/// This is THE decision function every layer that touches ordering or
/// randomness derives from (DESIGN.md §12): the global epoch shuffle uses
/// stream id kShuffleStream, per-sample augmentation uses the sample id, and
/// sciprep::shard derives nothing else — per-rank sample sequences are slices
/// of the one global stream, so they are reproducible at any rank count.
/// Two splitmix64 rounds over a multiplicative mix keep the three inputs
/// decorrelated (adjacent epochs / ranks do not yield adjacent states).
constexpr std::uint64_t split_seed(std::uint64_t seed, std::uint64_t epoch,
                                   std::uint64_t stream) noexcept {
  std::uint64_t state = seed ^ (epoch * 0x9E3779B97F4A7C15ULL) ^
                        ((stream + 1) * 0xD6E8FEB86659FD93ULL);
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  return a ^ (b << 1);
}

/// Reserved stream id for the global epoch shuffle (outside any plausible
/// sample-id range, so shuffle and augmentation streams never collide).
inline constexpr std::uint64_t kShuffleStream = 0x73687566666C65ULL;  // "shuffle"

/// xoshiro256** 1.0 (Blackman & Vigna).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5C1D2EA9ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  float next_float() noexcept {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24F;
  }

  /// Uniform integer in [0, bound) with rejection to remove modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box–Muller (caches the second variate).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Poisson-distributed count. Knuth's method for small mean, normal
  /// approximation (clamped at zero) beyond 64 where Knuth's product
  /// underflows and the approximation error is < 1%.
  std::uint32_t poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double v = mean + std::sqrt(mean) * normal();
      return v <= 0.0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = next_double();
    std::uint32_t count = 0;
    while (prod > limit) {
      ++count;
      prod *= next_double();
    }
    return count;
  }

  /// Derive an independent stream for a substream index (e.g. per-sample).
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream * 0xA24BAED4963EE407ULL + 0x9FB21C651E98DF25ULL);
    Rng child(0);
    for (auto& word : child.state_) {
      word = splitmix64(sm);
    }
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace sciprep
