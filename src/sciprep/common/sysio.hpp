// EINTR/partial-operation-safe system I/O.
//
// Every byte-moving path in sciprep — dataset files, checkpoint writes,
// incident/telemetry emits, and the wire transport's sockets — funnels
// through these helpers, so the tree contains exactly one audited
// read/write loop. POSIX read(2)/write(2) may move fewer bytes than asked
// (signals, pipe buffers, socket windows) and may fail with EINTR without
// moving anything; naive callers turn both into silent truncation. The
// loops here restart on EINTR, continue after partial transfers, and map
// errno onto the sciprep error taxonomy:
//
//   EAGAIN/EWOULDBLOCK (a deadline socket timed out), EPIPE/ECONNRESET
//   (the peer vanished) -> TransientError, so retry/reconnect policies
//   engage; everything else -> IoError.
//
// read_full() returns short only at end-of-stream — a caller that needs an
// exact count checks the return and reports truncation with its own
// framing context.
#pragma once

#include <cstddef>
#include <string>

#include "sciprep/common/buffer.hpp"

namespace sciprep::sysio {

/// Read up to `n` bytes from `fd` into `buf`, restarting on EINTR and
/// continuing after partial reads. Returns the number of bytes read, which
/// is < `n` only when the stream ended first. Throws TransientError on
/// timeout/peer-reset errno, IoError otherwise.
std::size_t read_full(int fd, void* buf, std::size_t n);

/// Write all `n` bytes of `buf` to `fd`, restarting on EINTR and continuing
/// after partial writes. Throws TransientError on timeout/broken-pipe errno,
/// IoError otherwise.
void write_full(int fd, const void* buf, std::size_t n);

/// Read a whole regular file. Throws IoError if it cannot be opened.
Bytes read_file(const std::string& path);

/// Create/truncate `path` and write `data` through the audited loop.
void write_file(const std::string& path, ByteSpan data);

/// Append `data` to `path`, creating it if absent.
void append_file(const std::string& path, ByteSpan data);

}  // namespace sciprep::sysio
