#include "sciprep/common/crc.hpp"

#include <array>

namespace sciprep {

namespace {

constexpr std::array<std::uint32_t, 256> make_table(std::uint32_t poly) {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (poly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTableIso = make_table(0xEDB8'8320u);
constexpr auto kTableCastagnoli = make_table(0x82F6'3B78u);

std::uint32_t crc_generic(const std::array<std::uint32_t, 256>& table,
                          ByteSpan data, std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFF'FFFFu;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFF'FFFFu;
}

}  // namespace

std::uint32_t crc32(ByteSpan data, std::uint32_t seed) noexcept {
  return crc_generic(kTableIso, data, seed);
}

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) noexcept {
  return crc_generic(kTableCastagnoli, data, seed);
}

}  // namespace sciprep
