#include "sciprep/common/crc.hpp"

#include <array>
#include <cstring>

namespace sciprep {

namespace {

// Slice-by-8: eight derived tables let the loop fold 8 input bytes per
// iteration instead of 1, lifting the software CRC from ~0.4 GB/s to a few
// GB/s. table[0] is the classic byte-at-a-time table; table[k][i] is the
// CRC of byte i followed by k zero bytes, so eight lookups XOR into the
// same running value one 64-bit load covers.
using Table8 = std::array<std::array<std::uint32_t, 256>, 8>;

constexpr Table8 make_table8(std::uint32_t poly) {
  Table8 t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (poly ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr auto kTableIso = make_table8(0xEDB8'8320u);
constexpr auto kTableCastagnoli = make_table8(0x82F6'3B78u);

std::uint32_t crc_sliced(const Table8& t, ByteSpan data,
                         std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFF'FFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Little-endian load: byte p[0] lands in the low lane, matching the
    // reflected CRC's low-byte-first fold order. The whole codebase's
    // on-disk/on-wire formats already assume little-endian hosts.
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= c;
    c = t[7][word & 0xFFu] ^ t[6][(word >> 8) & 0xFFu] ^
        t[5][(word >> 16) & 0xFFu] ^ t[4][(word >> 24) & 0xFFu] ^
        t[3][(word >> 32) & 0xFFu] ^ t[2][(word >> 40) & 0xFFu] ^
        t[1][(word >> 48) & 0xFFu] ^ t[0][(word >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFF'FFFFu;
}

// Hardware CRC-32C: SSE4.2's crc32 instruction implements exactly the
// reflected Castagnoli polynomial. Detected once at startup; the software
// slice-by-8 path is the fallback and the two produce identical values.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SCIPREP_CRC32C_HW 1

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    ByteSpan data, std::uint32_t seed) noexcept {
  std::uint64_t c = seed ^ 0xFFFF'FFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = __builtin_ia32_crc32qi(static_cast<std::uint32_t>(c), *p++);
  }
  return static_cast<std::uint32_t>(c) ^ 0xFFFF'FFFFu;
}

bool crc32c_hw_available() noexcept {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}
#endif

}  // namespace

std::uint32_t crc32(ByteSpan data, std::uint32_t seed) noexcept {
  return crc_sliced(kTableIso, data, seed);
}

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) noexcept {
#ifdef SCIPREP_CRC32C_HW
  if (crc32c_hw_available()) return crc32c_hw(data, seed);
#endif
  return crc_sliced(kTableCastagnoli, data, seed);
}

}  // namespace sciprep
