#include "sciprep/common/sysio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "sciprep/common/error.hpp"

namespace sciprep::sysio {

namespace {

[[noreturn]] void throw_errno(const char* verb, int err) {
  const std::string msg =
      fmt("sysio: {} failed: {} (errno {})", verb, std::strerror(err), err);
  // Timeouts and vanished peers are the transport faults the retry/reconnect
  // policies exist for; everything else is a real host I/O defect.
  if (err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT ||
      err == EPIPE || err == ECONNRESET) {
    throw TransientError(msg);
  }
  throw IoError(msg);
}

/// open(2) with EINTR restart; returns -1 with errno set on failure.
int open_restart(const char* path, int flags, mode_t mode) {
  for (;;) {
    const int fd = ::open(path, flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// RAII descriptor for the file-level helpers. close(2) after EINTR is
/// unspecified by POSIX; the descriptor must be treated as gone either way,
/// so close is called exactly once and EINTR is not retried.
struct Fd {
  int fd = -1;
  explicit Fd(int f) : fd(f) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  /// Close now and report failure (for write paths, where a deferred error
  /// from close is a short write in disguise).
  void close_checked(const std::string& path) {
    const int f = fd;
    fd = -1;
    if (::close(f) != 0 && errno != EINTR) {
      throw IoError(fmt("sysio: close of '{}' failed: {}", path,
                        std::strerror(errno)));
    }
  }
};

void write_open(const std::string& path, int flags, ByteSpan data) {
  const int raw = open_restart(path.c_str(), flags | O_WRONLY | O_CLOEXEC, 0644);
  if (raw < 0) {
    throw IoError(fmt("sysio: cannot open '{}' for writing: {}", path,
                      std::strerror(errno)));
  }
  Fd fd(raw);
  if (!data.empty()) write_full(fd.fd, data.data(), data.size());
  fd.close_checked(path);
}

}  // namespace

std::size_t read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, p + got, n - got);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) break;  // end of stream: short return, caller's framing decides
    if (errno == EINTR) continue;
    throw_errno("read", errno);
  }
  return got;
}

void write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t put = 0;
  while (put < n) {
    const ssize_t rc = ::write(fd, p + put, n - put);
    if (rc > 0) {
      put += static_cast<std::size_t>(rc);
      continue;
    }
    // write(2) returning 0 for a non-zero count is only possible for odd
    // descriptor types; treat it like EINTR and try again rather than spin
    // silently or report a bogus errno.
    if (rc == 0 || errno == EINTR) continue;
    throw_errno("write", errno);
  }
}

Bytes read_file(const std::string& path) {
  const int raw = open_restart(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (raw < 0) {
    throw IoError(fmt("sysio: cannot open '{}' for reading: {}", path,
                      std::strerror(errno)));
  }
  Fd fd(raw);
  struct stat st{};
  if (::fstat(fd.fd, &st) != 0) {
    throw IoError(fmt("sysio: cannot stat '{}': {}", path,
                      std::strerror(errno)));
  }
  // The stat size is only a hint: procfs files report 0, and a concurrently
  // written file can grow or shrink between fstat and read. Start from the
  // hint and keep extending until the stream actually ends.
  Bytes data(std::max<std::size_t>(
      st.st_size > 0 ? static_cast<std::size_t>(st.st_size) : 0, 4096));
  std::size_t got = read_full(fd.fd, data.data(), data.size());
  while (got == data.size()) {
    data.resize(data.size() + std::max<std::size_t>(data.size() / 2, 4096));
    got += read_full(fd.fd, data.data() + got, data.size() - got);
  }
  data.resize(got);
  return data;
}

void write_file(const std::string& path, ByteSpan data) {
  write_open(path, O_CREAT | O_TRUNC, data);
}

void append_file(const std::string& path, ByteSpan data) {
  write_open(path, O_CREAT | O_APPEND, data);
}

}  // namespace sciprep::sysio
