// LSB-first bit streams, as used by DEFLATE and by the DeepCAM differential
// codec's packed delta fields.
//
// Bits are packed into bytes starting at the least significant bit; multi-bit
// values are written least-significant-bit first (DEFLATE convention). Huffman
// codes, which DEFLATE stores most-significant-bit first, are bit-reversed by
// the caller before writing.
#pragma once

#include <cstdint>

#include "sciprep/common/buffer.hpp"
#include "sciprep/common/error.hpp"

namespace sciprep {

/// Writes bit fields LSB-first into a byte vector.
class BitWriter {
 public:
  /// Append `count` bits (<= 32) of `value`, LSB first.
  void put_bits(std::uint32_t value, int count) {
    SCIPREP_ASSERT(count >= 0 && count <= 32);
    acc_ |= static_cast<std::uint64_t>(value & mask(count)) << nbits_;
    nbits_ += count;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFFu));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFFu));
      acc_ = 0;
      nbits_ = 0;
    }
  }

  /// Append whole bytes; requires byte alignment.
  void put_bytes(ByteSpan bytes) {
    SCIPREP_ASSERT(nbits_ == 0);
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  /// Number of bits written so far (including buffered partial byte).
  [[nodiscard]] std::size_t bit_count() const noexcept {
    return out_.size() * 8 + static_cast<std::size_t>(nbits_);
  }

  Bytes finish() && {
    align_to_byte();
    return std::move(out_);
  }

 private:
  static constexpr std::uint32_t mask(int count) {
    return count == 32 ? 0xFFFF'FFFFu : (1u << count) - 1u;
  }

  Bytes out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// Reads bit fields LSB-first from a byte span. Throws FormatError past end.
class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  std::uint32_t get_bits(int count) {
    SCIPREP_ASSERT(count >= 0 && count <= 32);
    fill(count);
    if (nbits_ < count) {
      throw_format("bitstream truncated: need {} bits, have {}", count, nbits_);
    }
    const auto v = static_cast<std::uint32_t>(acc_ & maskbits(count));
    acc_ >>= count;
    nbits_ -= count;
    return v;
  }

  /// Read a single bit.
  std::uint32_t get_bit() { return get_bits(1); }

  /// Peek up to `count` bits without consuming; missing bits read as zero
  /// (DEFLATE decoders rely on this at stream end).
  std::uint32_t peek_bits(int count) {
    fill(count);
    return static_cast<std::uint32_t>(acc_ & maskbits(count));
  }

  /// Consume `count` bits previously peeked.
  void drop_bits(int count) {
    SCIPREP_ASSERT(count <= nbits_);
    acc_ >>= count;
    nbits_ -= count;
  }

  /// Discard buffered bits up to the next byte boundary.
  void align_to_byte() {
    const int drop = nbits_ % 8;
    acc_ >>= drop;
    nbits_ -= drop;
  }

  /// Copy whole bytes; requires byte alignment.
  ByteSpan get_bytes(std::size_t n) {
    SCIPREP_ASSERT(nbits_ % 8 == 0);
    // Return buffered bytes to the cursor before slicing.
    pos_ -= static_cast<std::size_t>(nbits_ / 8);
    acc_ = 0;
    nbits_ = 0;
    if (pos_ + n > data_.size()) {
      throw_format("bitstream truncated: need {} bytes, have {}", n,
                   data_.size() - pos_);
    }
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == data_.size() && nbits_ == 0;
  }

 private:
  static constexpr std::uint64_t maskbits(int count) {
    return count >= 64 ? ~0ULL : (1ULL << count) - 1ULL;
  }

  void fill(int need) {
    while (nbits_ < need && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace sciprep
