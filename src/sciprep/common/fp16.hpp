// Software IEEE 754 binary16 ("half") support.
//
// The paper's decoders emit half-precision samples to feed mixed-precision
// training; no hardware on the evaluation host is assumed to support FP16, so
// conversions are implemented in portable integer arithmetic with
// round-to-nearest-even, full denormal support, and Inf/NaN propagation.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace sciprep {

/// Convert an IEEE binary32 value to binary16 bits (round-to-nearest-even).
std::uint16_t fp32_to_fp16_bits(float value) noexcept;

/// Convert binary16 bits to the exactly-representable binary32 value.
float fp16_bits_to_fp32(std::uint16_t bits) noexcept;

/// Value type wrapping binary16 bits. Arithmetic is performed by converting
/// through float, mirroring how GPU mixed-precision pipelines upconvert for
/// accumulation.
class Half {
 public:
  constexpr Half() noexcept = default;
  explicit Half(float value) noexcept : bits_(fp32_to_fp16_bits(value)) {}

  static constexpr Half from_bits(std::uint16_t bits) noexcept {
    Half h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }
  [[nodiscard]] float to_float() const noexcept {
    return fp16_bits_to_fp32(bits_);
  }
  explicit operator float() const noexcept { return to_float(); }

  [[nodiscard]] constexpr bool is_nan() const noexcept {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] constexpr bool is_inf() const noexcept {
    return (bits_ & 0x7FFFu) == 0x7C00u;
  }
  [[nodiscard]] constexpr bool is_denormal() const noexcept {
    return (bits_ & 0x7C00u) == 0 && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] constexpr bool is_zero() const noexcept {
    return (bits_ & 0x7FFFu) == 0;
  }
  [[nodiscard]] constexpr bool signbit() const noexcept {
    return (bits_ & 0x8000u) != 0;
  }

  friend bool operator==(Half a, Half b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }
  friend Half operator+(Half a, Half b) noexcept {
    return Half(a.to_float() + b.to_float());
  }
  friend Half operator-(Half a, Half b) noexcept {
    return Half(a.to_float() - b.to_float());
  }
  friend Half operator*(Half a, Half b) noexcept {
    return Half(a.to_float() * b.to_float());
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2);

/// Largest finite half value (65504).
inline constexpr float kHalfMax = 65504.0F;
/// Smallest positive normal half (2^-14).
inline constexpr float kHalfMinNormal = 6.103515625e-05F;
/// Smallest positive denormal half (2^-24).
inline constexpr float kHalfMinDenormal = 5.9604644775390625e-08F;

/// Relative error bound introduced by rounding a normal-range float to half:
/// half the ulp at 11 bits of significand.
inline constexpr float kHalfRelativeEps = 4.8828125e-04F;  // 2^-11

}  // namespace sciprep
