// Lightweight descriptive statistics used by the data-analysis benches
// (Fig 5 value-frequency analysis) and the timing harness (percentiles of
// per-step times).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace sciprep {

/// Streaming mean / variance / min / max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact frequency table over discrete values (CosmoFlow particle counts are
/// small integers, so an ordered map is adequate and keeps output sorted).
class FrequencyTable {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t unique_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& counts() const {
    return counts_;
  }

  /// (value, frequency) pairs ordered by descending frequency — the rank
  /// ordering used for the Fig 5(a) power-law plot.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>>
  by_frequency() const;

  /// Least-squares slope of log(frequency) vs log(rank) over the top `ranks`
  /// entries: the power-law exponent estimate for Fig 5(a).
  [[nodiscard]] double power_law_slope(std::size_t ranks = 64) const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Percentile of a sample set (linear interpolation, q in [0,1]). The input
/// need not be sorted — an internal copy is sorted. Returns NaN on empty
/// input.
double percentile(std::span<const double> values, double q);

/// Percentile of an already-sorted sample set (asserts sortedness instead of
/// copying). Returns NaN on empty input.
double percentile_sorted(std::span<const double> sorted_values, double q);

/// Log-bucketed histogram for positive measurements (latencies, byte sizes).
///
/// Bucket 0 catches values <= min_value ("underflow"); the remaining buckets
/// partition [min_value, max_value] into `buckets_per_octave` geometric
/// sub-buckets per power of two, and the final bucket additionally absorbs
/// values above max_value. Exact count/sum/min/max are tracked alongside the
/// buckets, so quantile() is bucket-resolution-accurate in the middle of the
/// distribution and exact at the extremes.
class LogHistogram {
 public:
  struct Options {
    double min_value = 1e-9;  // one nanosecond, when recording seconds
    double max_value = 1e3;
    int buckets_per_octave = 4;
  };

  LogHistogram();  // default Options
  explicit LogHistogram(Options options);

  void record(double value, std::uint64_t weight = 1);
  /// Accumulate another histogram with identical Options.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;
  /// Inclusive-exclusive value range [lower, upper) covered by a bucket.
  /// bucket_lower(0) == 0; bucket_upper of the last bucket is +infinity.
  [[nodiscard]] double bucket_lower(std::size_t index) const noexcept;
  [[nodiscard]] double bucket_upper(std::size_t index) const noexcept;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;  // NaN when empty
  [[nodiscard]] double max() const noexcept;  // NaN when empty
  /// Quantile estimate (q in [0,1]); geometric interpolation inside the
  /// bucket holding the target rank, clamped to the observed [min, max].
  /// Returns NaN when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  double log2_min_ = 0;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Format a byte count as a human-readable string ("3.2 GiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace sciprep
