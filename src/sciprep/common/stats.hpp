// Lightweight descriptive statistics used by the data-analysis benches
// (Fig 5 value-frequency analysis) and the timing harness (percentiles of
// per-step times).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace sciprep {

/// Streaming mean / variance / min / max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact frequency table over discrete values (CosmoFlow particle counts are
/// small integers, so an ordered map is adequate and keeps output sorted).
class FrequencyTable {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t unique_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& counts() const {
    return counts_;
  }

  /// (value, frequency) pairs ordered by descending frequency — the rank
  /// ordering used for the Fig 5(a) power-law plot.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>>
  by_frequency() const;

  /// Least-squares slope of log(frequency) vs log(rank) over the top `ranks`
  /// entries: the power-law exponent estimate for Fig 5(a).
  [[nodiscard]] double power_law_slope(std::size_t ranks = 64) const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Percentile of a sample set (linear interpolation, q in [0,1]).
double percentile(std::span<const double> sorted_values, double q);

/// Format a byte count as a human-readable string ("3.2 GiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace sciprep
