// Minimal leveled logger. Pipeline workers log through this so diagnostic
// output from concurrent decode threads is line-atomic.
#pragma once

#include <string_view>

#include "sciprep/common/format.hpp"

namespace sciprep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

/// Emit one line (thread-safe, flushed) if `level` passes the threshold.
void log_message(LogLevel level, std::string_view message);

template <class... Args>
void log_debug(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_message(LogLevel::kDebug,
                fmt(format_string, std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_info(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_message(LogLevel::kInfo,
                fmt(format_string, std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_warn(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_message(LogLevel::kWarn,
                fmt(format_string, std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_error(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kError) {
    log_message(LogLevel::kError,
                fmt(format_string, std::forward<Args>(args)...));
  }
}

}  // namespace sciprep
