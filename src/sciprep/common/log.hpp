// Minimal leveled logger. Pipeline workers log through this so diagnostic
// output from concurrent decode threads is line-atomic. Each line carries an
// ISO-8601 UTC timestamp, the level tag, and a dense per-thread id:
//
//   [2026-08-06T12:34:56.789Z sciprep:WARN t3] message
//
// Per-level counters are kept for every warn/error that reaches log_message
// (whether or not the threshold suppresses the output), and an optional hook
// lets the observability layer mirror them into its metrics registry.
#pragma once

#include <cstdint>
#include <string_view>

#include "sciprep/common/format.hpp"

namespace sciprep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

/// Emit one line (thread-safe, flushed) if `level` passes the threshold.
/// Warn/error events are counted even when suppressed by the threshold.
void log_message(LogLevel level, std::string_view message);

/// Events of `level` seen by log_message since start (or reset).
std::uint64_t log_count(LogLevel level) noexcept;
void reset_log_counts() noexcept;

/// Hook invoked (after counting, before threshold filtering) for every
/// log_message call. Used by sciprep::obs to bump errors_total counters.
/// Pass nullptr to detach. The hook must be thread-safe.
using LogHook = void (*)(LogLevel level, std::string_view message);
void set_log_hook(LogHook hook) noexcept;

template <class... Args>
void log_debug(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_message(LogLevel::kDebug,
                fmt(format_string, std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_info(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_message(LogLevel::kInfo,
                fmt(format_string, std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_warn(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_message(LogLevel::kWarn,
                fmt(format_string, std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_error(std::string_view format_string, Args&&... args) {
  if (log_level() <= LogLevel::kError) {
    log_message(LogLevel::kError,
                fmt(format_string, std::forward<Args>(args)...));
  }
}

}  // namespace sciprep
