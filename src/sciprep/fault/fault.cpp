#include "sciprep/fault/fault.hpp"

#include <algorithm>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/guard/cancel.hpp"

namespace sciprep::fault {

namespace {

// Purpose tags keep the per-operation draws independent: the transient
// decision for an op must not correlate with its corruption decision.
constexpr std::uint64_t kPurposeTransient = 0;
constexpr std::uint64_t kPurposeCorrupt = 1;
constexpr std::uint64_t kPurposeTruncate = 2;
constexpr std::uint64_t kPurposeDelay = 3;
constexpr std::uint64_t kPurposeCorruptBit = 4;
constexpr std::uint64_t kPurposeTruncateLen = 5;

std::atomic<Injector*> g_global{nullptr};

std::size_t index_of(Site site) {
  const int i = static_cast<int>(site);
  SCIPREP_ASSERT(i >= 0 && i < kSiteCount);
  return static_cast<std::size_t>(i);
}

}  // namespace

const char* site_name(Site site) noexcept {
  switch (site) {
    case Site::kIoRead:
      return "io.read";
    case Site::kTfrecordPayloadCrc:
      return "tfrecord.payload_crc";
    case Site::kH5ChunkCrc:
      return "h5lite.chunk_crc";
    case Site::kCodecDecode:
      return "codec.decode";
    case Site::kGpuLaunch:
      return "gpu.launch";
    case Site::kRankHeartbeat:
      return "rank.heartbeat";
    case Site::kRankCrash:
      return "rank.crash";
    case Site::kWireFrameCrc:
      return "wire.frame_crc";
    case Site::kWireConnDrop:
      return "wire.conn_drop";
  }
  return "?";
}

const char* action_name(Action action) noexcept {
  switch (action) {
    case Action::kFail:
      return "fail";
    case Action::kRetry:
      return "retry";
    case Action::kSkipSample:
      return "skip_sample";
    case Action::kFallback:
      return "fallback";
  }
  return "?";
}

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRetry:
      return "retry";
    case EventKind::kRetryExhausted:
      return "retry_exhausted";
    case EventKind::kSkipSample:
      return "skip_sample";
    case EventKind::kFallback:
      return "fallback";
    case EventKind::kBudgetExhausted:
      return "budget_exhausted";
    case EventKind::kDeadlineExpired:
      return "deadline_expired";
    case EventKind::kResumeReject:
      return "resume_reject";
    case EventKind::kRankLost:
      return "rank_lost";
    case EventKind::kReshard:
      return "reshard";
    case EventKind::kTenantLost:
      return "tenant_lost";
    case EventKind::kTenantEvicted:
      return "tenant_evicted";
    case EventKind::kSessionShed:
      return "session_shed";
    case EventKind::kWireFault:
      return "wire_fault";
  }
  return "?";
}

Injector::Injector(std::uint64_t seed, obs::MetricsRegistry* metrics)
    : seed_(seed) {
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::global();
  injected_ = &registry.counter("fault.injected_total");
  for (int i = 0; i < kSiteCount; ++i) {
    site_counts_[static_cast<std::size_t>(i)] = &registry.counter(
        fmt("fault.{}_total", site_name(static_cast<Site>(i))));
  }
}

void Injector::configure(Site site, const SiteConfig& config) {
  sites_[index_of(site)] = config;
}

const SiteConfig& Injector::site_config(Site site) const noexcept {
  return sites_[static_cast<std::size_t>(static_cast<int>(site))];
}

std::uint64_t Injector::draw_u64(Site site, std::uint64_t op,
                                 std::uint64_t purpose) const noexcept {
  // One splitmix64 step over a mix of (seed, site, op, purpose): stateless,
  // so the decision for a given operation never depends on what else ran.
  std::uint64_t state =
      seed_ ^ ((static_cast<std::uint64_t>(site) + 1) * 0xA24BAED4963EE407ULL) ^
      (op * 0x9E3779B97F4A7C15ULL) ^ (purpose * 0xD6E8FEB86659FD93ULL);
  return splitmix64(state);
}

double Injector::draw(Site site, std::uint64_t op,
                      std::uint64_t purpose) const noexcept {
  return static_cast<double>(draw_u64(site, op, purpose) >> 11) * 0x1.0p-53;
}

void Injector::count(Site site) const noexcept {
  injected_->add(1);
  site_counts_[index_of(site)]->add(1);
}

void Injector::on_operation(Site site, std::uint64_t op) const {
  const SiteConfig& cfg = sites_[index_of(site)];
  if (cfg.delay_probability > 0 &&
      draw(site, op, kPurposeDelay) < cfg.delay_probability) {
    count(site);
    // Interruptible: an injected stall must behave like a real one — the
    // guard watchdog's deadline expiry (or an epoch cancellation) wakes the
    // sleep and unwinds the stage instead of serving the stall to the end.
    guard::interruptible_sleep(cfg.delay_seconds);
  }
  if (cfg.transient_probability > 0 &&
      draw(site, op, kPurposeTransient) < cfg.transient_probability) {
    count(site);
    throw TransientError(
        fmt("injected transient fault at {} (op {})", site_name(site), op));
  }
}

ByteSpan Injector::mutate(Site site, std::uint64_t op, ByteSpan data,
                          Bytes& scratch) const {
  const SiteConfig& cfg = sites_[index_of(site)];
  if (data.empty() ||
      (cfg.corrupt_probability <= 0 && cfg.truncate_probability <= 0)) {
    return data;
  }
  const bool corrupt = cfg.corrupt_probability > 0 &&
                       draw(site, op, kPurposeCorrupt) < cfg.corrupt_probability;
  const bool truncate =
      cfg.truncate_probability > 0 &&
      draw(site, op, kPurposeTruncate) < cfg.truncate_probability;
  if (!corrupt && !truncate) {
    return data;
  }
  scratch.assign(data.begin(), data.end());
  if (truncate) {
    // Keep a strict prefix (possibly empty) of the record.
    scratch.resize(static_cast<std::size_t>(
        draw_u64(site, op, kPurposeTruncateLen) % scratch.size()));
    count(site);
  }
  if (corrupt && !scratch.empty()) {
    // Flip one bit inside the record's first word. Every sciprep container
    // keeps verified framing there (codec magic, tfrecord length CRC, h5lite
    // superblock), so an injected corruption is deterministically *detected*
    // and surfaces as a typed error the policy layer can act on. Silent
    // body corruption — flips the format cannot see — is the fuzz suite's
    // domain, not the recovery path's.
    const std::uint64_t r = draw_u64(site, op, kPurposeCorruptBit);
    const std::size_t window = std::min<std::size_t>(scratch.size(), 4);
    scratch[static_cast<std::size_t>((r >> 3) % window)] ^=
        static_cast<std::uint8_t>(1u << (r & 7));
    count(site);
  }
  return ByteSpan(scratch);
}

Injector* Injector::global() noexcept {
  return g_global.load(std::memory_order_acquire);
}

void Injector::install_global(Injector* injector) noexcept {
  g_global.store(injector, std::memory_order_release);
}

}  // namespace sciprep::fault
