// Fault injection and recovery policies for the data pipeline.
//
// Two halves, one contract:
//
//   * `Injector` — a seeded, site-addressed fault source. Each injection
//     site (io.read, tfrecord.payload_crc, h5lite.chunk_crc, codec.decode,
//     gpu.launch) carries per-fault-kind probabilities; the injector can
//     fail an operation transiently, delay it, flip a byte in a record, or
//     truncate it. Every decision is a pure function of (seed, site, op id),
//     so injected runs are reproducible regardless of thread scheduling or
//     the order in which sites are consulted. Install one per pipeline
//     (PipelineConfig::injector) or process-wide (Injector::install_global).
//
//   * `FaultPolicy` — what the pipeline does when a sample fails. Actions
//     are per error class (transient vs corrupt, see common/error.hpp):
//     kFail re-throws (the pre-fault behavior, and the default), kRetry
//     re-reads transients with bounded backoff, kSkipSample quarantines the
//     sample id and keeps the epoch going, kFallback re-decodes through the
//     CPU baseline path. A bounded error budget caps total recovery events;
//     once spent, every further failure escalates to kFail.
//
// Recovery events land in the obs metrics registry: fault.injected_total
// (plus per-site fault.<site>_total) on the injector side, and
// pipeline.retries_total / pipeline.samples_skipped_total /
// pipeline.fallbacks_total / the pipeline.degraded gauge on the policy side.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "sciprep/common/buffer.hpp"
#include "sciprep/obs/metrics.hpp"

namespace sciprep::fault {

/// Addressable injection points. Names (site_name) follow the metric-style
/// dotted convention so they read naturally in configs and dumps.
enum class Site : int {
  kIoRead = 0,          // "io.read": fetching a sample's stored bytes
  kTfrecordPayloadCrc,  // "tfrecord.payload_crc": TFRecord payload at rest
  kH5ChunkCrc,          // "h5lite.chunk_crc": h5lite chunk data at rest
  kCodecDecode,         // "codec.decode": encoded codec payload at rest
  kGpuLaunch,           // "gpu.launch": submitting a decode kernel
  kRankHeartbeat,       // "rank.heartbeat": a rank's liveness beat going out
  kRankCrash,           // "rank.crash": a rank mid-batch (process death)
  kWireFrameCrc,        // "wire.frame_crc": a serving frame on the socket
  kWireConnDrop,        // "wire.conn_drop": a serving connection mid-request
};

inline constexpr int kSiteCount = 9;

const char* site_name(Site site) noexcept;

/// Per-site fault probabilities, each drawn independently per operation.
/// All-zero (the default) makes the site transparent.
struct SiteConfig {
  double transient_probability = 0;  // throw TransientError
  double corrupt_probability = 0;    // flip one framing bit (detectable)
  double truncate_probability = 0;   // cut the record short
  double delay_probability = 0;      // stall the operation
  double delay_seconds = 0;          // stall length when a delay fires
};

/// Seeded, deterministic fault source. Thread-safe: decisions involve no
/// mutable state, and the fired-fault counters are relaxed atomics.
class Injector {
 public:
  /// Fired faults are counted into `metrics` (fault.injected_total and
  /// fault.<site>_total); null means obs::MetricsRegistry::global(). The
  /// registry must outlive the injector.
  explicit Injector(std::uint64_t seed = 1,
                    obs::MetricsRegistry* metrics = nullptr);

  void configure(Site site, const SiteConfig& config);
  [[nodiscard]] const SiteConfig& site_config(Site site) const noexcept;
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Gate an operation through `site`: sleeps if the delay draw fires, then
  /// throws TransientError if the transient draw fires. `op` identifies the
  /// operation (e.g. a hash of epoch/sample/attempt); the same (site, op)
  /// always decides the same way.
  void on_operation(Site site, std::uint64_t op) const;

  /// Pass stored bytes through `site`'s corruption faults. When neither the
  /// corrupt nor the truncate draw fires, returns `data` untouched (the
  /// zero-fault hot path copies nothing). When one fires, `scratch` receives
  /// a mutated copy — a single bit flipped and/or the tail cut off at a
  /// deterministic position — and the returned span views `scratch`.
  [[nodiscard]] ByteSpan mutate(Site site, std::uint64_t op, ByteSpan data,
                                Bytes& scratch) const;

  /// Total faults fired by this injector (all sites, all kinds).
  [[nodiscard]] std::uint64_t injected_total() const noexcept {
    return injected_->value();
  }

  /// Process-wide injector consulted by pipelines with no per-pipeline one.
  /// Null (the default) means no injection anywhere.
  static Injector* global() noexcept;
  /// Install (or, with null, remove) the process-wide injector. The caller
  /// keeps ownership and must uninstall before destroying it.
  static void install_global(Injector* injector) noexcept;

 private:
  [[nodiscard]] double draw(Site site, std::uint64_t op,
                            std::uint64_t purpose) const noexcept;
  [[nodiscard]] std::uint64_t draw_u64(Site site, std::uint64_t op,
                                       std::uint64_t purpose) const noexcept;
  void count(Site site) const noexcept;

  std::uint64_t seed_;
  std::array<SiteConfig, kSiteCount> sites_{};
  obs::Counter* injected_;                             // fault.injected_total
  std::array<obs::Counter*, kSiteCount> site_counts_;  // fault.<site>_total
};

/// What the pipeline does with a failed sample.
enum class Action {
  kFail,        // re-throw to the caller (pre-fault behavior)
  kRetry,       // re-read/decode with bounded backoff (transients only)
  kSkipSample,  // quarantine the sample id, keep the epoch going
  kFallback,    // re-decode through the CPU baseline path
};

const char* action_name(Action action) noexcept;

struct RetryPolicy {
  int max_attempts = 3;            // total tries, including the first
  double backoff_seconds = 0;      // sleep before the second attempt
  double backoff_multiplier = 2;   // growth factor per further attempt
};

/// Per-error-class recovery policy, carried on PipelineConfig. The default
/// (kFail everywhere) reproduces today's throw-through behavior exactly.
struct FaultPolicy {
  Action on_transient = Action::kFail;  // kFail | kRetry | kSkipSample | kFallback
  Action on_corrupt = Action::kFail;    // kFail | kSkipSample | kFallback
  RetryPolicy retry;                    // used when on_transient == kRetry
  /// Escalation when retries are exhausted: kFail or kSkipSample.
  Action on_retry_exhausted = Action::kSkipSample;
  /// Recovery events (retries + skips + fallbacks) a pipeline may absorb
  /// *per epoch* before degradation is judged unacceptable and every further
  /// failure escalates to kFail. Guards against e.g. a wholly-corrupt shard
  /// silently skipping its way through an epoch; start_epoch() refills the
  /// budget, so a persistent bad shard fails every epoch rather than only
  /// the first.
  std::uint64_t error_budget = 256;
  /// Hard bound on the kSkipSample quarantine. Per epoch, a skip beyond the
  /// cap escalates to kFail (reported as kBudgetExhausted) instead of
  /// silently quarantining a pathologically corrupt dataset one sample at a
  /// time; across epochs, the lifetime quarantine list is compacted and its
  /// oldest entries evicted past the cap (fault.quarantine_evictions_total)
  /// so it can never grow without limit.
  std::uint64_t quarantine_cap = 1u << 16;

  [[nodiscard]] bool recovery_enabled() const noexcept {
    return on_transient != Action::kFail || on_corrupt != Action::kFail;
  }
};

/// Kinds of recovery/guard incidents a pipeline reports to an installed
/// RecoveryListener (PipelineConfig::on_recovery_event). These are the
/// moments the insight flight recorder treats as evidence-dump triggers.
enum class EventKind : int {
  kRetry = 0,        // a transient failure is about to be retried
  kRetryExhausted,   // retries ran out; the escalation action applied
  kSkipSample,       // a sample was quarantined for the rest of the epoch
  kFallback,         // a sample re-decoded through the CPU baseline path
  kBudgetExhausted,  // the per-epoch error budget is spent; failures escalate
  kDeadlineExpired,  // a guard watchdog deadline fired on a stage
  kResumeReject,     // checkpoint resume rejected (config mismatch)
  kRankLost,         // a rank stopped heartbeating or crashed mid-batch
  kReshard,          // a dead rank's remaining shard redistributed
  kTenantLost,       // a serve tenant's session lease expired (dead consumer)
  kTenantEvicted,    // a serve tenant evicted (error budget / cancellation)
  kSessionShed,      // admission control rejected or degraded a session
  kWireFault,        // a wire transport fault (bad frame, dropped connection)
};

const char* event_kind_name(EventKind kind) noexcept;

/// One recovery/guard incident, as reported to a RecoveryListener.
struct RecoveryEvent {
  EventKind kind = EventKind::kRetry;
  std::string stage;   // stage or site name, e.g. "io.read", "decode"
  std::string detail;  // human-readable context (the error message, etc.)
  std::uint64_t sample_index = 0;  // sample being processed (0 if n/a)
  int attempt = 0;                 // retry attempt number (0 if n/a)
  /// Which scope of a multi-pipeline run the event belongs to — "rank3" for
  /// a sharded rank, a tenant name for a serve session, empty (the default,
  /// and the single-pipeline case) for process scope. Carried into
  /// flight-recorder incidents so an incident names the rank or tenant it
  /// happened on, and used by the recorder's per-scope rate limiting.
  std::string scope;
};

/// Incident callback. Implementations must be thread-safe — events fire
/// concurrently from pool workers and the guard watchdog thread — and must
/// not throw (a throwing listener would turn recovery into failure).
using RecoveryListener = std::function<void(const RecoveryEvent&)>;

}  // namespace sciprep::fault
