#include "sciprep/guard/watchdog.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sciprep/common/threadpool.hpp"

namespace sciprep::guard {

namespace {

constexpr auto kForever = std::chrono::steady_clock::time_point::max();

}  // namespace

Watchdog::Watchdog(obs::MetricsRegistry* metrics) {
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::global();
  expired_ = &registry.counter("guard.deadline_expired_total");
  stall_seconds_ = &registry.histogram("guard.stall_seconds");
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_started_) thread_.join();
}

Watchdog::Armed Watchdog::arm(const char* stage, double deadline_seconds,
                              CancelToken token) {
  const auto now = std::chrono::steady_clock::now();
  const auto deadline =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(deadline_seconds));
  std::uint64_t id = 0;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_started_) {
      thread_started_ = true;
      thread_ = std::thread([this] { loop(); });
    }
    id = next_id_++;
    entries_.emplace(
        id, Entry{stage, std::move(token), now, deadline, /*expired=*/false});
    // Only prod the supervisor when this deadline is earlier than whatever
    // it is currently sleeping toward — the common arm (a fresh deadline,
    // later than the pending earliest) stays notification-free.
    wake = sleeping_forever_ || deadline < wake_at_;
  }
  if (wake) cv_.notify_one();
  return Armed(this, id);
}

void Watchdog::disarm(std::uint64_t id) {
  std::optional<double> stall;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(id);
    if (it == entries_.end()) return;
    if (it->second.expired) {
      stall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            it->second.armed_at)
                  .count();
    }
    entries_.erase(it);
  }
  if (stall) stall_seconds_->record(*stall);
}

void Watchdog::set_expiry_callback(
    std::function<void(const char* stage, double elapsed_seconds)> cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_expiry_ = std::move(cb);
}

void Watchdog::loop() {
  set_thread_name("guard.watchdog");
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    auto next = kForever;
    for (const auto& [id, entry] : entries_) {
      if (!entry.expired) next = std::min(next, entry.deadline);
    }
    if (next == kForever) {
      sleeping_forever_ = true;
      cv_.wait(lock);
      sleeping_forever_ = false;
      continue;
    }
    wake_at_ = next;
    sleeping_forever_ = false;
    cv_.wait_until(lock, next);
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<const char*, double>> fired;
    for (auto& [id, entry] : entries_) {
      if (entry.expired || entry.deadline > now) continue;
      entry.expired = true;
      expired_->add(1);
      const double elapsed =
          std::chrono::duration<double>(now - entry.armed_at).count();
      // Token cancellation takes the token's own mutex; that lock never
      // reaches back into the watchdog, so holding mutex_ here is safe.
      entry.token.cancel_deadline(entry.stage, elapsed);
      if (on_expiry_) fired.emplace_back(entry.stage, elapsed);
    }
    if (!fired.empty()) {
      // Fire outside the lock: the callback (flight recorder) does file IO
      // and must not stall arm/disarm on the worker threads.
      const auto cb = on_expiry_;
      lock.unlock();
      for (const auto& [stage, elapsed] : fired) cb(stage, elapsed);
      lock.lock();
    }
  }
}

}  // namespace sciprep::guard
