// Cooperative cancellation for the preprocessing pipeline (sciprep::guard).
//
// A `CancelToken` is a cheap, copyable handle to shared cancellation state.
// Tokens form a tree: `child()` creates a token that also observes every
// ancestor, so cancelling an epoch token unwinds all of its per-batch and
// per-stage descendants while a descendant's own cancellation (e.g. one
// stage's deadline expiring) stays contained.
//
// The default-constructed token is *null*: every query on it is a no-op that
// compiles down to a pointer test, so production pipelines with no
// cancellation configured pay nothing on the hot path.
//
// Propagation is ambient: `CancelScope` installs a token as the calling
// thread's current token (RAII, restores on exit), `ThreadPool::submit`
// captures the submitter's current token and re-installs it around the task
// on the worker, and long-running loops (codec decode, TFRecord iteration,
// SimGpu warps) call `poll_cancellation()` at their natural boundaries.
// Cancellation surfaces as `CancelledError` (caller abort) or
// `DeadlineError` (watchdog expiry) — both routed through the ErrorClass
// taxonomy so fault policies treat a hang exactly like a data fault.
//
// Header-only on purpose: sciprep::common (the thread pool) must see these
// types without a link-time dependency on the guard library.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "sciprep/common/error.hpp"

namespace sciprep::guard {

/// Why a token was cancelled; decides which error type check() throws.
enum class CancelKind : int {
  kNone = 0,
  kUser,      // explicit cancel(): check() throws CancelledError
  kDeadline,  // watchdog expiry: check() throws DeadlineError
};

class CancelToken {
 public:
  /// Null token: never cancelled, cancel() is a no-op, child() of it roots a
  /// fresh tree. This is the default everywhere cancellation is optional.
  CancelToken() = default;

  /// A fresh, independent cancellation root.
  [[nodiscard]] static CancelToken make() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// A token that is cancelled when either it or this token (or any further
  /// ancestor) is cancelled. child() of a null token returns a fresh root.
  [[nodiscard]] CancelToken child() const {
    CancelToken t = make();
    t.state_->parent = state_;
    return t;
  }

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Cancel this token (and thereby every descendant). The first cancel wins;
  /// later calls are no-ops. Safe from any thread; no-op on a null token.
  void cancel(std::string reason = "operation cancelled") const {
    cancel_impl(CancelKind::kUser, std::move(reason), {}, 0);
  }

  /// Watchdog entry point: mark this token as expired for `stage` after
  /// `elapsed_seconds`, so check() throws DeadlineError (a TransientError —
  /// recovery policies may retry a hang).
  void cancel_deadline(std::string stage, double elapsed_seconds) const {
    std::string reason = fmt("deadline expired in stage '{}' after {:.3f}s",
                             stage, elapsed_seconds);
    cancel_impl(CancelKind::kDeadline, std::move(reason), std::move(stage),
                elapsed_seconds);
  }

  /// True when this token or any ancestor has been cancelled. Lock-free: one
  /// relaxed-ish atomic load per chain link.
  [[nodiscard]] bool cancelled() const noexcept {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->kind.load(std::memory_order_acquire) != 0) return true;
    }
    return false;
  }

  /// Throw the cancellation as a typed error (DeadlineError for deadline
  /// expiry, CancelledError otherwise); returns if not cancelled.
  void check() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      const int kind = s->kind.load(std::memory_order_acquire);
      if (kind == 0) continue;
      std::string reason;
      std::string stage;
      double elapsed = 0;
      {
        std::lock_guard<std::mutex> lock(s->mutex);
        reason = s->reason;
        stage = s->stage;
        elapsed = s->elapsed_seconds;
      }
      if (kind == static_cast<int>(CancelKind::kDeadline)) {
        throw DeadlineError(std::move(reason), std::move(stage), elapsed);
      }
      throw CancelledError(std::move(reason));
    }
  }

  /// Sleep for `seconds`, waking early when cancelled: cancellation of this
  /// token wakes immediately via its condition variable; ancestor
  /// cancellation is noticed within one 10ms poll slice. Throws via check()
  /// when woken by cancellation. A null token sleeps plainly.
  void sleep_for(double seconds) const {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    if (state_ == nullptr) {
      std::this_thread::sleep_until(deadline);
      return;
    }
    constexpr auto kSlice = std::chrono::milliseconds(10);
    std::unique_lock<std::mutex> lock(state_->mutex);
    for (;;) {
      if (cancelled()) {
        lock.unlock();
        check();
        return;  // unreachable; check() throws when cancelled
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return;
      state_->cv.wait_until(lock, std::min(deadline, now + kSlice));
    }
  }

 private:
  struct State {
    std::atomic<int> kind{0};  // CancelKind; 0 = live
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::string reason;           // guarded by mutex
    std::string stage;            // guarded by mutex (deadline only)
    double elapsed_seconds = 0;   // guarded by mutex (deadline only)
    std::shared_ptr<State> parent;
  };

  void cancel_impl(CancelKind kind, std::string reason, std::string stage,
                   double elapsed_seconds) const {
    if (state_ == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->kind.load(std::memory_order_relaxed) != 0) return;
      state_->reason = std::move(reason);
      state_->stage = std::move(stage);
      state_->elapsed_seconds = elapsed_seconds;
      state_->kind.store(static_cast<int>(kind), std::memory_order_release);
    }
    state_->cv.notify_all();
  }

  std::shared_ptr<State> state_;
};

namespace detail {
inline CancelToken& ambient_token() noexcept {
  thread_local CancelToken token;
  return token;
}
}  // namespace detail

/// The calling thread's current token (null unless a CancelScope is active).
[[nodiscard]] inline const CancelToken& current_token() noexcept {
  return detail::ambient_token();
}

/// RAII: installs `token` as the thread's current token for the scope.
/// Installing a null token is a no-op (the enclosing token stays visible),
/// so optional cancellation composes without special cases.
class CancelScope {
 public:
  explicit CancelScope(CancelToken token) noexcept {
    if (token.valid()) {
      installed_ = true;
      prev_ = std::exchange(detail::ambient_token(), std::move(token));
    }
  }
  ~CancelScope() {
    if (installed_) detail::ambient_token() = std::move(prev_);
  }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  bool installed_ = false;
  CancelToken prev_;
};

/// Cooperative cancellation point for long-running loops: throws
/// CancelledError / DeadlineError when the thread's current token (or an
/// ancestor) is cancelled. Costs a thread-local load plus one atomic load
/// per chain link when live; a single pointer test when no token is set.
inline void poll_cancellation() {
  const CancelToken& token = detail::ambient_token();
  if (token.cancelled()) token.check();
}

/// Sleep that honors the thread's current token (plain sleep without one).
/// Used by the fault injector's delay site so injected stalls unwind when a
/// deadline or cancellation fires mid-stall.
inline void interruptible_sleep(double seconds) {
  detail::ambient_token().sleep_for(seconds);
}

}  // namespace sciprep::guard
