// sciprep::guard — deadlines, cooperative cancellation, and crash-consistent
// checkpoint/resume for the preprocessing pipeline.
//
// Umbrella header. Three pieces, one contract:
//
//   * cancel.hpp   — CancelToken / CancelScope / poll_cancellation():
//                    cooperative cancellation threaded through the pipeline,
//                    the thread pool, SimGpu launches, and both codecs, so a
//                    stuck or aborted epoch unwinds within one batch.
//   * watchdog.hpp — per-stage deadlines (PipelineConfig::deadlines) armed
//                    around io.read / gunzip / decode / prefetch-wait;
//                    expiry cancels the stage's token as a DeadlineError,
//                    which the FaultPolicy recovers like any transient fault.
//   * snapshot.hpp — versioned, CRC-framed epoch checkpoints written
//                    atomically; DataPipeline::snapshot() / resume() turn
//                    them into a bit-identical continuation of the epoch.
//
// See DESIGN.md §9 for the architecture and the snapshot field table.
#pragma once

#include "sciprep/guard/cancel.hpp"
#include "sciprep/guard/snapshot.hpp"
#include "sciprep/guard/watchdog.hpp"
