#include "sciprep/guard/snapshot.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/io/tfrecord.hpp"

namespace sciprep::guard {

namespace {

// magic + version + payload_len; the payload CRC trails the payload.
constexpr std::size_t kHeaderBytes = 12;

void put_id_list(ByteWriter& w, const std::vector<std::uint64_t>& ids) {
  w.put<std::uint64_t>(ids.size());
  for (const std::uint64_t id : ids) w.put<std::uint64_t>(id);
}

std::vector<std::uint64_t> get_id_list(ByteReader& r) {
  const auto n = r.get<std::uint64_t>();
  if (n > r.remaining() / sizeof(std::uint64_t)) {
    throw_format(
        "snapshot: id list declares {} entries but only {} payload bytes "
        "remain",
        n, r.remaining());
  }
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
  for (auto& id : ids) id = r.get<std::uint64_t>();
  return ids;
}

}  // namespace

Bytes Snapshot::serialize() const {
  ByteWriter payload;
  payload.put<std::uint64_t>(config_fingerprint);
  payload.put<std::uint64_t>(epoch);
  payload.put<std::uint64_t>(cursor);
  payload.put<std::uint64_t>(batch_index);
  payload.put<std::uint64_t>(recovery_events);
  payload.put<std::uint64_t>(samples);
  payload.put<std::uint64_t>(batches);
  payload.put<std::uint64_t>(bytes_at_rest);
  payload.put<std::uint64_t>(samples_skipped);
  payload.put<std::uint64_t>(fallbacks);
  payload.put<std::uint8_t>(degraded ? 1 : 0);
  put_id_list(payload, quarantine);
  put_id_list(payload, epoch_quarantine);

  ByteWriter out;
  out.put<std::uint32_t>(kMagic);
  out.put<std::uint32_t>(kVersion);
  out.put<std::uint32_t>(static_cast<std::uint32_t>(payload.size()));
  const std::uint32_t crc = crc32c(ByteSpan(payload.bytes()));
  out.put_bytes(ByteSpan(payload.bytes()));
  out.put<std::uint32_t>(crc);
  return std::move(out).take();
}

Snapshot Snapshot::parse(ByteSpan data) {
  if (data.size() < kHeaderBytes) {
    throw TruncatedError(
        fmt("snapshot: {} bytes is too short for the {}-byte header",
            data.size(), kHeaderBytes),
        data.size());
  }
  ByteReader header(data);
  const auto magic = header.get<std::uint32_t>();
  if (magic != kMagic) {
    throw_format("snapshot: bad magic {:08x} (expected {:08x})", magic,
                 kMagic);
  }
  const auto version = header.get<std::uint32_t>();
  if (version != kVersion) {
    throw_format("snapshot: unsupported version {} (this build reads {})",
                 version, kVersion);
  }
  const auto payload_len = header.get<std::uint32_t>();
  const std::size_t framed = kHeaderBytes + payload_len + sizeof(std::uint32_t);
  if (payload_len > data.size() - kHeaderBytes ||
      data.size() < framed) {
    throw TruncatedError(
        fmt("snapshot: header declares a {}-byte payload but only {} bytes "
            "follow it",
            payload_len, data.size() - kHeaderBytes),
        data.size());
  }
  if (data.size() != framed) {
    throw_format("snapshot: {} trailing bytes after the framed record",
                 data.size() - framed);
  }
  const ByteSpan payload = data.subspan(kHeaderBytes, payload_len);
  ByteReader tail(data.subspan(kHeaderBytes + payload_len));
  const auto stored_crc = tail.get<std::uint32_t>();
  const std::uint32_t actual_crc = crc32c(payload);
  if (stored_crc != actual_crc) {
    throw_format("snapshot: payload CRC mismatch (stored {:08x}, computed "
                 "{:08x})",
                 stored_crc, actual_crc);
  }

  ByteReader r(payload);
  Snapshot s;
  s.config_fingerprint = r.get<std::uint64_t>();
  s.epoch = r.get<std::uint64_t>();
  s.cursor = r.get<std::uint64_t>();
  s.batch_index = r.get<std::uint64_t>();
  s.recovery_events = r.get<std::uint64_t>();
  s.samples = r.get<std::uint64_t>();
  s.batches = r.get<std::uint64_t>();
  s.bytes_at_rest = r.get<std::uint64_t>();
  s.samples_skipped = r.get<std::uint64_t>();
  s.fallbacks = r.get<std::uint64_t>();
  s.degraded = r.get<std::uint8_t>() != 0;
  s.quarantine = get_id_list(r);
  s.epoch_quarantine = get_id_list(r);
  if (!r.done()) {
    throw_format("snapshot: {} unparsed bytes at the end of the payload",
                 r.remaining());
  }
  return s;
}

void write_snapshot(const std::string& path, const Snapshot& snapshot) {
  const std::string tmp = path + ".tmp";
  io::write_file(tmp, ByteSpan(snapshot.serialize()));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError(fmt("snapshot: cannot rename '{}' over '{}'", tmp, path));
  }
}

Snapshot read_snapshot(const std::string& path) {
  return Snapshot::parse(ByteSpan(io::read_file(path)));
}

std::string rank_snapshot_path(const std::string& dir, int rank) {
  return fmt("{}/rank-{}.ckpt", dir, rank);
}

void write_rank_snapshot(const std::string& dir, int rank,
                         const Snapshot& snapshot) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError(fmt("snapshot: cannot create checkpoint dir '{}': {}", dir,
                      ec.message()));
  }
  write_snapshot(rank_snapshot_path(dir, rank), snapshot);
}

Snapshot read_rank_snapshot(const std::string& dir, int rank) {
  return read_snapshot(rank_snapshot_path(dir, rank));
}

std::vector<Snapshot> read_coordinated(const std::string& dir, int world) {
  if (world < 1) {
    throw ConfigError(fmt("snapshot: world size {} must be >= 1", world));
  }
  std::vector<Snapshot> set;
  set.reserve(static_cast<std::size_t>(world));
  for (int rank = 0; rank < world; ++rank) {
    set.push_back(read_rank_snapshot(dir, rank));
    if (set.back().epoch != set.front().epoch) {
      throw ConfigError(
          fmt("snapshot: coordinated checkpoint in '{}' is torn — rank {} is "
              "at epoch {} but rank 0 is at epoch {}",
              dir, rank, set.back().epoch, set.front().epoch));
    }
  }
  return set;
}

Checkpointer::Checkpointer(std::string path, std::uint64_t every_n_batches,
                           obs::MetricsRegistry* metrics)
    : path_(std::move(path)), every_(every_n_batches) {
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::global();
  written_ = &registry.counter("guard.checkpoints_written_total");
  write_seconds_ = &registry.histogram("guard.checkpoint_write_seconds");
}

void Checkpointer::write(const Snapshot& snapshot) {
  const auto t0 = std::chrono::steady_clock::now();
  write_snapshot(path_, snapshot);
  written_->add(1);
  write_seconds_->record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace sciprep::guard
