// Deadline watchdog (sciprep::guard).
//
// One background thread supervises every armed stage. Arming registers a
// (stage, deadline, CancelToken) entry; if the entry is still armed when its
// deadline passes, the watchdog cancels the token with CancelKind::kDeadline
// and the stuck stage unwinds at its next cancellation point as a
// DeadlineError — which classifies as transient, so the pipeline's
// FaultPolicy (retry / skip / fallback / budget) applies to hangs exactly as
// it does to injected or real data faults.
//
// Expiries are exported through sciprep::obs as guard.deadline_expired_total
// plus guard.stall_seconds, a histogram of how long tripped stages had been
// running when they finally unwound (recorded at disarm time, i.e. the
// *observed* stall, not the configured deadline).
//
// The supervisor thread starts lazily on the first arm() and wakes only for
// the earliest pending deadline, so a pipeline that never arms a deadline
// pays nothing and a healthy armed pipeline pays one mutex'd map insert and
// erase per guarded stage.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "sciprep/guard/cancel.hpp"
#include "sciprep/obs/metrics.hpp"

namespace sciprep::guard {

/// Per-stage deadlines (seconds), carried on PipelineConfig. Zero disables a
/// stage's deadline; the all-zero default disables the watchdog entirely.
struct StageDeadlines {
  double io_read_seconds = 0;        // fetching a sample's stored bytes
  double decode_seconds = 0;         // one sample's full decode attempt
  double gunzip_seconds = 0;         // GZIP TFRecord inflate
  double prefetch_wait_seconds = 0;  // waiting on the prefetched batch

  [[nodiscard]] bool any() const noexcept {
    return io_read_seconds > 0 || decode_seconds > 0 || gunzip_seconds > 0 ||
           prefetch_wait_seconds > 0;
  }
};

class Watchdog {
 public:
  /// Expiry metrics land in `metrics`; null means the process-global
  /// registry. The registry must outlive the watchdog.
  explicit Watchdog(obs::MetricsRegistry* metrics = nullptr);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// RAII handle for one armed deadline; disarming (destruction) removes the
  /// entry and, if it expired, records the observed stall duration.
  class Armed {
   public:
    Armed() = default;
    Armed(Armed&& other) noexcept
        : dog_(std::exchange(other.dog_, nullptr)),
          id_(std::exchange(other.id_, 0)) {}
    Armed& operator=(Armed&& other) noexcept {
      if (this != &other) {
        reset();
        dog_ = std::exchange(other.dog_, nullptr);
        id_ = std::exchange(other.id_, 0);
      }
      return *this;
    }
    ~Armed() { reset(); }

    void reset() noexcept {
      if (dog_ != nullptr) {
        dog_->disarm(id_);
        dog_ = nullptr;
        id_ = 0;
      }
    }

   private:
    friend class Watchdog;
    Armed(Watchdog* dog, std::uint64_t id) : dog_(dog), id_(id) {}

    Watchdog* dog_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Arm `token` to be cancelled (kind = deadline) if still armed after
  /// `deadline_seconds`. `stage` must outlive the armed entry (string
  /// literals in practice).
  [[nodiscard]] Armed arm(const char* stage, double deadline_seconds,
                          CancelToken token);

  /// Total deadlines that have expired (guard.deadline_expired_total).
  [[nodiscard]] std::uint64_t expired_total() const noexcept {
    return expired_->value();
  }

  /// Install a callback fired (on the watchdog thread, outside the watchdog
  /// lock) for every deadline expiry, with the stage name and how long the
  /// stage had been running. Must be thread-safe and must not throw. Install
  /// before the first arm(); pass nullptr to remove.
  void set_expiry_callback(
      std::function<void(const char* stage, double elapsed_seconds)> cb);

 private:
  struct Entry {
    const char* stage = "";
    CancelToken token;
    std::chrono::steady_clock::time_point armed_at;
    std::chrono::steady_clock::time_point deadline;
    bool expired = false;
  };

  void disarm(std::uint64_t id);
  void loop();

  obs::Counter* expired_;        // guard.deadline_expired_total
  obs::Histogram* stall_seconds_;  // guard.stall_seconds
  std::function<void(const char*, double)> on_expiry_;  // see setter

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::chrono::steady_clock::time_point wake_at_{};  // loop's current sleep target
  bool sleeping_forever_ = true;  // loop has no pending deadline to wait for
  bool stopping_ = false;
  bool thread_started_ = false;
  std::thread thread_;  // lazily started by the first arm()
};

/// Arms `watchdog` for one stage *and* installs a fresh child of the
/// thread's current token as the stage's cancellation context, so a deadline
/// expiry cancels exactly this attempt — a retry gets a fresh token — while
/// outer cancellation still propagates in. No-op when `watchdog` is null or
/// the deadline is zero (the healthy production default).
class StageGuard {
 public:
  StageGuard(Watchdog* watchdog, const char* stage, double deadline_seconds) {
    if (watchdog == nullptr || deadline_seconds <= 0) return;
    token_ = current_token().child();
    armed_ = watchdog->arm(stage, deadline_seconds, token_);
    scope_.emplace(token_);
  }

  StageGuard(const StageGuard&) = delete;
  StageGuard& operator=(const StageGuard&) = delete;

 private:
  CancelToken token_;
  Watchdog::Armed armed_;
  // Declared last: the scope uninstalls the token before the entry disarms.
  std::optional<CancelScope> scope_;
};

}  // namespace sciprep::guard
