// Crash-consistent pipeline checkpoints (sciprep::guard).
//
// A Snapshot records everything DataPipeline needs to continue an epoch from
// a delivered-batch boundary and reproduce the bit-identical remaining batch
// sequence: the epoch (the shuffle order is a pure function of pipeline seed
// and epoch, so no raw RNG state needs persisting), the delivered-sample
// cursor, the next batch index, the quarantine lists, the consumed error
// budget, and the delivered-counter deltas so a resumed run's final metrics
// match an uninterrupted run's.
//
// On-disk framing (little-endian, see DESIGN.md §9 for the field table):
//
//   u32 magic "SGPK" | u32 version | u32 payload_len | payload | u32 crc32c(payload)
//
// Parsing surfaces typed errors — TruncatedError for short input,
// FormatError for bad magic / unsupported version / CRC mismatch / trailing
// garbage — and write_snapshot() is atomic (tmp + rename), so a crash during
// checkpointing leaves the previous snapshot intact: a reader sees either
// the old complete file or the new complete file, never a torn one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/common/buffer.hpp"
#include "sciprep/obs/metrics.hpp"

namespace sciprep::guard {

struct Snapshot {
  static constexpr std::uint32_t kMagic = 0x4B504753;  // "SGPK" (LE)
  static constexpr std::uint32_t kVersion = 1;

  /// Hash of the (dataset, pipeline config, injector seed) the snapshot was
  /// taken under; resume() rejects a snapshot with a different fingerprint.
  std::uint64_t config_fingerprint = 0;

  // Progress: where the next delivered batch comes from.
  std::uint64_t epoch = 0;
  std::uint64_t cursor = 0;       // samples of order_ already delivered
  std::uint64_t batch_index = 0;  // next index_in_epoch
  std::uint64_t recovery_events = 0;  // error budget consumed this epoch

  // Delivered-counter deltas, restored so a resumed run's final stats match
  // an uninterrupted run's (retry counters are deliberately absent: retries
  // before the checkpoint were spent wall-clock, not delivered data).
  std::uint64_t samples = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes_at_rest = 0;
  std::uint64_t samples_skipped = 0;
  std::uint64_t fallbacks = 0;
  bool degraded = false;

  std::vector<std::uint64_t> quarantine;        // lifetime skip events, sorted
  std::vector<std::uint64_t> epoch_quarantine;  // this epoch's skips, sorted

  [[nodiscard]] Bytes serialize() const;
  /// Inverse of serialize(). Throws TruncatedError / FormatError as
  /// documented above; never reads past `data`.
  [[nodiscard]] static Snapshot parse(ByteSpan data);

  [[nodiscard]] bool operator==(const Snapshot&) const = default;
};

/// Serialize + write atomically: the bytes land in `path + ".tmp"` and are
/// renamed over `path`. Throws IoError on filesystem failure.
void write_snapshot(const std::string& path, const Snapshot& snapshot);

/// Read + parse `path`. Throws IoError (unreadable) or parse errors.
[[nodiscard]] Snapshot read_snapshot(const std::string& path);

/// Per-rank snapshot namespacing for sharded runs: every rank of a world
/// checkpoints into one directory as rank-<rank>.ckpt, and a coordinated
/// resume reads the whole set back. The per-file framing (and its typed
/// error surface) is unchanged — these are path + consistency helpers.
[[nodiscard]] std::string rank_snapshot_path(const std::string& dir, int rank);

/// write_snapshot to rank_snapshot_path, creating `dir` first if missing.
void write_rank_snapshot(const std::string& dir, int rank,
                         const Snapshot& snapshot);

/// read_snapshot from rank_snapshot_path. Throws IoError / parse errors.
[[nodiscard]] Snapshot read_rank_snapshot(const std::string& dir, int rank);

/// Read the full coordinated checkpoint for a `world`-rank run: all of
/// rank-0.ckpt … rank-<world-1>.ckpt must be present, parse cleanly, and
/// agree on the epoch (the coordinator writes them at one barrier, so a
/// disagreement means the set is torn — ConfigError). Per-file failures
/// surface as that file's IoError / TruncatedError / FormatError.
[[nodiscard]] std::vector<Snapshot> read_coordinated(const std::string& dir,
                                                     int world);

/// Periodic checkpoint driver for training loops: asks `due()` after every
/// delivered batch, writes through `write()`. Exports
/// guard.checkpoints_written_total and guard.checkpoint_write_seconds.
class Checkpointer {
 public:
  /// Checkpoints to `path` every `every_n_batches` delivered batches
  /// (0 disables). Metrics land in `metrics` (null = process-global).
  Checkpointer(std::string path, std::uint64_t every_n_batches,
               obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] bool due(std::uint64_t batches_delivered) const noexcept {
    return every_ > 0 && batches_delivered > 0 &&
           batches_delivered % every_ == 0;
  }

  void write(const Snapshot& snapshot);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t written_total() const noexcept {
    return written_->value();
  }

 private:
  std::string path_;
  std::uint64_t every_;
  obs::Counter* written_;          // guard.checkpoints_written_total
  obs::Histogram* write_seconds_;  // guard.checkpoint_write_seconds
};

}  // namespace sciprep::guard
