#include "sciprep/wire/frame.hpp"

#include <cstring>

#include "sciprep/common/crc.hpp"
#include "sciprep/flow/snapshot.hpp"

namespace sciprep::wire {

namespace {

/// Fold a ByteReader position into a TruncatedError offset consistently.
[[noreturn]] void throw_truncated(std::string msg, std::size_t offset) {
  throw TruncatedError(std::move(msg), static_cast<std::uint64_t>(offset));
}

}  // namespace

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kWelcome:
      return "WELCOME";
    case FrameType::kAttach:
      return "ATTACH";
    case FrameType::kAttached:
      return "ATTACHED";
    case FrameType::kNext:
      return "NEXT";
    case FrameType::kBatch:
      return "BATCH";
    case FrameType::kEnd:
      return "END";
    case FrameType::kBeat:
      return "BEAT";
    case FrameType::kDetach:
      return "DETACH";
    case FrameType::kDetached:
      return "DETACHED";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kClockSync:
      return "CLOCK_SYNC";
    case FrameType::kStats:
      return "STATS";
    case FrameType::kTrace:
      return "TRACE";
  }
  return "?";
}

ByteWriter begin_frame(Bytes reuse) {
  reuse.clear();  // keeps the capacity
  ByteWriter w(std::move(reuse));
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint16_t>(kProtocolVersion);
  w.put<std::uint8_t>(0);   // type — patched by finish_frame()
  w.put<std::uint8_t>(0);   // flags — patched by finish_frame()
  w.put<std::uint32_t>(0);  // payload length — patched by finish_frame()
  return w;
}

Bytes finish_frame(ByteWriter&& w, FrameType type, std::uint8_t flags) {
  const std::size_t length = w.size() - kHeaderSize;
  if (length > kMaxPayload) {
    throw ConfigError(fmt("wire: payload of {} bytes exceeds the {} cap",
                          length, kMaxPayload));
  }
  w.patch<std::uint8_t>(6, static_cast<std::uint8_t>(type));
  w.patch<std::uint8_t>(7, flags);
  w.patch<std::uint32_t>(8, static_cast<std::uint32_t>(length));
  // The CRC covers everything after the magic: version, type, flags, length,
  // and payload. A flipped bit in the magic fails the magic check instead.
  const ByteSpan covered = ByteSpan(w.bytes()).subspan(4);
  w.put<std::uint32_t>(crc32c(covered));
  return std::move(w).take();
}

Bytes encode_frame(const Frame& frame) {
  ByteWriter w = begin_frame();
  w.put_bytes(frame.payload);
  return finish_frame(std::move(w), frame.type, frame.flags);
}

std::uint32_t decode_header(ByteSpan header) {
  if (header.size() < kHeaderSize) {
    throw_truncated(fmt("wire: frame header truncated: {} of {} bytes",
                        header.size(), kHeaderSize),
                    header.size());
  }
  ByteReader r(header);
  const auto magic = r.get<std::uint32_t>();
  if (magic != kMagic) {
    throw_format("wire: bad frame magic 0x{:x} (want 0x{:x})", magic, kMagic);
  }
  r.skip(4);  // version/type/flags — judged after the CRC, in decode_frame()
  const auto length = r.get<std::uint32_t>();
  if (length > kMaxPayload) {
    throw_format("wire: declared payload of {} bytes exceeds the {} cap",
                 length, kMaxPayload);
  }
  return length;
}

FrameView decode_frame_view(ByteSpan data) {
  const std::uint32_t length = decode_header(data);
  const std::size_t total = kHeaderSize + length + kTrailerSize;
  if (data.size() < total) {
    throw_truncated(
        fmt("wire: frame truncated: envelope declares {} bytes, have {}",
            total, data.size()),
        data.size());
  }
  if (data.size() > total) {
    throw_format("wire: {} trailing bytes after a {}-byte frame",
                 data.size() - total, total);
  }
  const std::uint32_t stored_crc = [&] {
    std::uint32_t crc = 0;
    std::memcpy(&crc, data.data() + total - kTrailerSize, sizeof(crc));
    return crc;
  }();
  const std::uint32_t actual_crc =
      crc32c(data.subspan(4, kHeaderSize - 4 + length));
  if (stored_crc != actual_crc) {
    throw_format("wire: frame CRC mismatch: stored 0x{:x}, computed 0x{:x}",
                 stored_crc, actual_crc);
  }
  // Version and type are judged only once the CRC proves the bytes are what
  // the peer sent: a flipped version bit is corruption, a clean CRC with a
  // different version is a genuinely incompatible speaker.
  ByteReader r(data.subspan(4));
  const auto version = r.get<std::uint16_t>();
  if (version != kProtocolVersion) {
    throw ProtocolError(fmt("wire: protocol version {} not supported (this "
                            "build speaks version {})",
                            version, kProtocolVersion));
  }
  const auto type = r.get<std::uint8_t>();
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > kMaxFrameType) {
    throw ProtocolError(fmt("wire: unknown frame type {}", type));
  }
  FrameView view;
  view.type = static_cast<FrameType>(type);
  view.flags = r.get<std::uint8_t>();
  r.skip(4);  // length, already validated
  view.payload = r.get_bytes(length);
  return view;
}

Frame decode_frame(ByteSpan data) {
  const FrameView view = decode_frame_view(data);
  Frame frame;
  frame.type = view.type;
  frame.flags = view.flags;
  frame.payload.assign(view.payload.begin(), view.payload.end());
  return frame;
}

// -- Payload schemas -------------------------------------------------------

Bytes HelloPayload::encode() const {
  ByteWriter w;
  w.put<std::uint32_t>(schema_version);
  w.put<std::uint64_t>(fingerprint);
  w.put_string(client);
  return std::move(w).take();
}

HelloPayload HelloPayload::decode(ByteSpan data) {
  ByteReader r(data);
  HelloPayload p;
  p.schema_version = r.get<std::uint32_t>();
  p.fingerprint = r.get<std::uint64_t>();
  p.client = r.get_string();
  return p;
}

Bytes WelcomePayload::encode() const {
  ByteWriter w;
  w.put<std::uint32_t>(schema_version);
  w.put<std::uint64_t>(fingerprint);
  return std::move(w).take();
}

WelcomePayload WelcomePayload::decode(ByteSpan data) {
  ByteReader r(data);
  WelcomePayload p;
  p.schema_version = r.get<std::uint32_t>();
  p.fingerprint = r.get<std::uint64_t>();
  return p;
}

Bytes AttachPayload::encode() const {
  ByteWriter w;
  w.put_string(tenant);
  return std::move(w).take();
}

AttachPayload AttachPayload::decode(ByteSpan data) {
  ByteReader r(data);
  AttachPayload p;
  p.tenant = r.get_string();
  return p;
}

Bytes AttachedPayload::encode() const {
  ByteWriter w;
  w.put<std::int32_t>(session);
  w.put<std::uint8_t>(admission);
  w.put<std::uint8_t>(resumed);
  w.put<std::uint64_t>(resume_seq);
  return std::move(w).take();
}

AttachedPayload AttachedPayload::decode(ByteSpan data) {
  ByteReader r(data);
  AttachedPayload p;
  p.session = r.get<std::int32_t>();
  p.admission = r.get<std::uint8_t>();
  p.resumed = r.get<std::uint8_t>();
  p.resume_seq = r.get<std::uint64_t>();
  return p;
}

Bytes NextPayload::encode() const {
  ByteWriter w;
  w.put<std::uint64_t>(ack);
  return std::move(w).take();
}

NextPayload NextPayload::decode(ByteSpan data) {
  ByteReader r(data);
  NextPayload p;
  p.ack = r.get<std::uint64_t>();
  return p;
}

Bytes BatchPayload::encode() const {
  ByteWriter w;
  encode_into(w);
  return std::move(w).take();
}

void BatchPayload::encode_into(ByteWriter& w) const {
  w.put<std::uint64_t>(seq);
  w.put<std::uint64_t>(batch.epoch);
  w.put<std::uint64_t>(batch.index_in_epoch);
  w.put<std::uint64_t>(batch.bytes_at_rest);
  SCIPREP_ASSERT(batch.samples.size() == batch.order_positions.size());
  w.put<std::uint32_t>(static_cast<std::uint32_t>(batch.samples.size()));
  for (const codec::TensorF16& sample : batch.samples) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(sample.shape.size()));
    for (const std::uint64_t dim : sample.shape) w.put<std::uint64_t>(dim);
    w.put<std::uint64_t>(static_cast<std::uint64_t>(sample.values.size()));
    w.put_bytes(as_bytes(sample.values));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(sample.float_labels.size()));
    w.put_bytes(as_bytes(sample.float_labels));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(sample.byte_labels.size()));
    w.put_bytes(ByteSpan(sample.byte_labels));
  }
  for (const std::uint64_t pos : batch.order_positions) {
    w.put<std::uint64_t>(pos);
  }
}

BatchPayload BatchPayload::decode(ByteSpan data) {
  ByteReader r(data);
  BatchPayload p;
  p.seq = r.get<std::uint64_t>();
  p.batch.epoch = r.get<std::uint64_t>();
  p.batch.index_in_epoch = r.get<std::uint64_t>();
  p.batch.bytes_at_rest = r.get<std::uint64_t>();
  const auto count = r.get<std::uint32_t>();
  // Every declared count is bounded by the bytes actually present before any
  // allocation sized from it: a body lying about its array lengths fails
  // typed (FormatError) instead of oversizing a vector. The checks divide
  // rather than multiply so a hostile 2^64-scale count cannot overflow.
  constexpr std::size_t kMinSampleBytes = 4 + 8 + 4 + 4;  // all-empty sample
  if (count > r.remaining() / kMinSampleBytes) {
    throw_format("wire: batch declares {} samples but only {} payload bytes "
                 "remain",
                 count, r.remaining());
  }
  p.batch.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    codec::TensorF16 sample;
    const auto rank = r.get<std::uint32_t>();
    if (rank > r.remaining() / sizeof(std::uint64_t)) {
      throw_format("wire: sample {} declares rank {} with {} bytes remaining",
                   i, rank, r.remaining());
    }
    sample.shape.reserve(rank);
    for (std::uint32_t d = 0; d < rank; ++d) {
      sample.shape.push_back(r.get<std::uint64_t>());
    }
    const auto value_count = r.get<std::uint64_t>();
    if (value_count > r.remaining() / sizeof(Half)) {
      throw_format(
          "wire: sample {} declares {} values with {} bytes remaining", i,
          value_count, r.remaining());
    }
    const ByteSpan values =
        r.get_bytes(static_cast<std::size_t>(value_count) * sizeof(Half));
    sample.values.resize(static_cast<std::size_t>(value_count));
    if (!values.empty()) {
      std::memcpy(sample.values.data(), values.data(), values.size());
    }
    const auto float_count = r.get<std::uint32_t>();
    if (float_count > r.remaining() / sizeof(float)) {
      throw_format(
          "wire: sample {} declares {} float labels with {} bytes remaining",
          i, float_count, r.remaining());
    }
    const ByteSpan floats =
        r.get_bytes(static_cast<std::size_t>(float_count) * sizeof(float));
    sample.float_labels.resize(float_count);
    if (!floats.empty()) {
      std::memcpy(sample.float_labels.data(), floats.data(), floats.size());
    }
    const auto byte_count = r.get<std::uint32_t>();
    const ByteSpan bytes = r.get_bytes(byte_count);
    sample.byte_labels.assign(bytes.begin(), bytes.end());
    p.batch.samples.push_back(std::move(sample));
  }
  p.batch.order_positions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    p.batch.order_positions.push_back(r.get<std::uint64_t>());
  }
  if (!r.done()) {
    throw_format("wire: {} trailing bytes after a batch payload",
                 r.remaining());
  }
  return p;
}

Bytes DetachedPayload::encode() const {
  ByteWriter w;
  w.put<std::uint64_t>(batches);
  w.put<std::uint64_t>(samples);
  w.put<std::uint64_t>(attaches);
  w.put<std::uint64_t>(sweeps);
  w.put<std::uint32_t>(digest_crc);
  return std::move(w).take();
}

DetachedPayload DetachedPayload::decode(ByteSpan data) {
  ByteReader r(data);
  DetachedPayload p;
  p.batches = r.get<std::uint64_t>();
  p.samples = r.get<std::uint64_t>();
  p.attaches = r.get<std::uint64_t>();
  p.sweeps = r.get<std::uint64_t>();
  p.digest_crc = r.get<std::uint32_t>();
  return p;
}

Bytes ErrorPayload::encode() const {
  ByteWriter w;
  w.put<std::uint8_t>(error_class);
  w.put_string(message);
  return std::move(w).take();
}

ErrorPayload ErrorPayload::decode(ByteSpan data) {
  ByteReader r(data);
  ErrorPayload p;
  p.error_class = r.get<std::uint8_t>();
  p.message = r.get_string();
  return p;
}

// -- Flow extensions -------------------------------------------------------

void encode_trace_context(ByteWriter& w, const TraceContext& ctx) {
  w.put<std::uint8_t>(kTraceContextVersion);
  w.put<std::uint64_t>(ctx.trace_id);
  w.put<std::uint64_t>(ctx.parent_span_id);
}

TraceContext decode_trace_context(ByteSpan& payload) {
  if (payload.size() < kTraceContextBytes) {
    throw_format(
        "wire: trace-context extension truncated: {} of {} bytes",
        payload.size(), kTraceContextBytes);
  }
  ByteReader r(payload.first(kTraceContextBytes));
  const auto version = r.get<std::uint8_t>();
  if (version != kTraceContextVersion) {
    throw ProtocolError(
        fmt("wire: trace-context extension version {} not supported (this "
            "build speaks version {})",
            version, kTraceContextVersion));
  }
  TraceContext ctx;
  ctx.trace_id = r.get<std::uint64_t>();
  ctx.parent_span_id = r.get<std::uint64_t>();
  payload = payload.subspan(kTraceContextBytes);
  return ctx;
}

Bytes ClockSyncPayload::encode() const {
  ByteWriter w;
  w.put<std::uint64_t>(t_client_ns);
  w.put<std::uint64_t>(t_server_ns);
  return std::move(w).take();
}

ClockSyncPayload ClockSyncPayload::decode(ByteSpan data) {
  ByteReader r(data);
  ClockSyncPayload p;
  p.t_client_ns = r.get<std::uint64_t>();
  p.t_server_ns = r.get<std::uint64_t>();
  return p;
}

Bytes StatsPayload::encode() const {
  ByteWriter w;
  w.put_string(scope);
  w.put<std::uint64_t>(t_server_ns);
  flow::encode_snapshot_into(w, delta);
  return std::move(w).take();
}

StatsPayload StatsPayload::decode(ByteSpan data) {
  ByteReader r(data);
  StatsPayload p;
  p.scope = r.get_string();
  p.t_server_ns = r.get<std::uint64_t>();
  p.delta = flow::decode_snapshot(r);
  if (!r.done()) {
    throw_format("wire: {} trailing bytes after a stats payload",
                 r.remaining());
  }
  return p;
}

Bytes TraceRequestPayload::encode() const {
  ByteWriter w;
  w.put<std::uint32_t>(max_spans);
  return std::move(w).take();
}

TraceRequestPayload TraceRequestPayload::decode(ByteSpan data) {
  ByteReader r(data);
  TraceRequestPayload p;
  p.max_spans = r.get<std::uint32_t>();
  return p;
}

Bytes TracePayload::encode() const {
  ByteWriter w;
  w.put<std::int64_t>(pid);
  w.put_string(process_name);
  w.put<std::uint64_t>(spans_dropped);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(spans.size()));
  for (const obs::TraceSpan& span : spans) {
    w.put_string(span.name);
    w.put_string(span.category);
    w.put<std::uint32_t>(span.thread);
    w.put<std::uint64_t>(span.t_start_ns);
    w.put<std::uint64_t>(span.t_end_ns);
    w.put_string(span.args_json);
  }
  return std::move(w).take();
}

TracePayload TracePayload::decode(ByteSpan data) {
  ByteReader r(data);
  TracePayload p;
  p.pid = r.get<std::int64_t>();
  p.process_name = r.get_string();
  p.spans_dropped = r.get<std::uint64_t>();
  const auto count = r.get<std::uint32_t>();
  // Bound the declared count by the bytes present before reserving.
  constexpr std::size_t kMinSpanBytes = 4 + 4 + 4 + 8 + 8 + 4;
  if (count > r.remaining() / kMinSpanBytes) {
    throw_format("wire: trace payload declares {} spans but only {} bytes "
                 "remain",
                 count, r.remaining());
  }
  p.spans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    obs::TraceSpan span;
    span.name = r.get_string();
    span.category = r.get_string();
    span.thread = r.get<std::uint32_t>();
    span.t_start_ns = r.get<std::uint64_t>();
    span.t_end_ns = r.get<std::uint64_t>();
    span.args_json = r.get_string();
    p.spans.push_back(std::move(span));
  }
  if (!r.done()) {
    throw_format("wire: {} trailing bytes after a trace payload",
                 r.remaining());
  }
  return p;
}

void throw_error_payload(const ErrorPayload& payload) {
  const std::string msg = fmt("wire: server error: {}", payload.message);
  switch (static_cast<ErrorClass>(payload.error_class)) {
    case ErrorClass::kTransient:
      throw TransientError(msg);
    case ErrorClass::kCorrupt:
      throw FormatError(msg);
    case ErrorClass::kConfig:
      throw ConfigError(msg);
    case ErrorClass::kCancelled:
      throw CancelledError(msg);
    case ErrorClass::kFatal:
      break;
  }
  throw Error(msg);
}

}  // namespace sciprep::wire
