// WireClient — consumer side of the sciprep::wire transport.
//
// A WireClient speaks the framed protocol to a WireServer over an AF_UNIX
// socket and presents the same next-batch surface a local consumer gets
// from DataService, with the process boundary absorbed:
//
//   * Deadlines everywhere. Every request carries the configured socket
//     deadline; a stalled or dead server surfaces as a TransientError after
//     request_timeout_seconds, never as an indefinite hang.
//
//   * Crash-safe reconnect. Any transport-level failure — connect refused,
//     read timeout, torn frame, CRC mismatch — closes the connection and
//     retries with capped exponential backoff, re-running the
//     HELLO/WELCOME/ATTACH handshake. The NEXT ack protocol makes retried
//     requests idempotent: the server redelivers its retained frame
//     byte-for-byte, so the delivered stream is exactly-once per process
//     and bit-identical across any number of disconnects.
//
//   * Resume after process death. A replacement process attaches under the
//     same tenant name; the server reports resumed=1 and the seq to ack
//     from, and the client continues the stream from there. The delivered
//     samples are recorded into a GlobalStreamDigest so the continuation
//     can be byte-compared against a fault-free run.
//
// Server-reported errors keep their type across the wire: a transient
// rejection (admission shed) is retried under the same backoff, while
// config/corrupt/fatal errors rethrow as ConfigError/FormatError/Error. A
// server speaking a different protocol version raises ProtocolError.
#pragma once

#include <cstdint>
#include <string>

#include "sciprep/flow/clock.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/shard/digest.hpp"
#include "sciprep/wire/frame.hpp"
#include "sciprep/wire/socket.hpp"

namespace sciprep::wire {

struct WireClientConfig {
  /// AF_UNIX socket path the server listens on.
  std::string socket_path;
  /// Tenant name to attach as; must be registered on the server.
  std::string tenant;
  /// Socket send/receive deadline per request.
  double request_timeout_seconds = 10.0;
  /// Reconnect/backoff budget: each transport failure sleeps
  /// min(backoff_initial * 2^attempt, backoff_max) and retries, up to
  /// max_reconnect_attempts consecutive failures before the last error is
  /// rethrown to the caller.
  int max_reconnect_attempts = 8;
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  /// Send the following NEXT as soon as a batch is handed to the caller, so
  /// the server produces and ships batch n+1 while the caller consumes
  /// batch n. Protocol-transparent: the ack window already makes an
  /// unconsumed in-flight reply redeliverable, so reconnects and takeovers
  /// behave exactly as in stop-and-wait mode — this only overlaps the wire
  /// with the work.
  bool pipeline_requests = true;
  /// Record every delivered sample into digest(). The CRC pass over each
  /// tensor is a real fraction of small-sample delivery cost; turn it off
  /// when the run does not need the bit-identity proof (mirrors
  /// ServiceConfig::verify_stream defaulting off server-side).
  bool record_digest = true;
  /// sciprep::flow — propagate a (trace_id, span_id) context on every NEXT
  /// (kFlagTraceContext extension), run the CLOCK_SYNC handshake at attach,
  /// and record the per-batch client-side attribution spans + histograms
  /// (flow.batch / flow.client.*). Off by default: the healthy path pays
  /// nothing.
  bool trace_propagate = false;
  /// Registry the flow.client.* histograms record into when trace_propagate
  /// is on; nullptr = the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Tracer for flow spans and the clock-sync timestamps; nullptr = the
  /// process-global tracer.
  obs::Tracer* tracer = nullptr;
};

/// Client-side transport accounting.
struct WireClientStats {
  std::uint64_t delivered = 0;    // batches received (== next ack)
  std::uint64_t attaches = 0;     // successful ATTACH handshakes
  std::uint64_t reconnects = 0;   // transport failures that forced one
  std::uint64_t retries = 0;      // server-side transient rejections retried
  std::uint64_t corrupt_frames = 0;  // torn/bit-flipped frames detected
};

class WireClient {
 public:
  explicit WireClient(WireClientConfig config);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connect and run the HELLO/WELCOME/ATTACH handshake. Implicit in the
  /// first next()/beat() call; explicit attach lets a trainer observe
  /// resumed()/degraded() before consuming.
  void attach();

  /// Receive the next batch; false once the stream ended. Retries and
  /// reconnects internally per the config; throws only when the backoff
  /// budget is exhausted or the server reports a non-transient error.
  bool next(pipeline::Batch& batch);

  /// Beat the tenant's lease without consuming — for gaps where the
  /// consumer computes for longer than the lease deadline.
  void beat();

  /// Cleanly close the tenant's session; returns the server-side stats.
  DetachedPayload detach();

  /// Pull the server's per-tenant MetricsSnapshot delta since the previous
  /// pull on this session (full snapshot on the first). The delta is also
  /// folded into server_totals(), so after the last pull the accumulated
  /// view equals the server-side tenant registry.
  StatsPayload pull_server_stats();

  /// Pull the server's span ring tail (0 = whole ring) plus its pid and
  /// process name, for a merged cross-process trace.
  TracePayload pull_server_trace(std::uint32_t max_spans = 0);

  [[nodiscard]] const WireClientStats& stats() const noexcept {
    return stats_;
  }
  /// Whether the server flagged the last ATTACHED/BATCH as DEGRADED.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  /// Whether the first ATTACH resumed an existing session (this process is
  /// a replacement consumer).
  [[nodiscard]] bool resumed() const noexcept { return resumed_; }
  /// The server's DataService session id, -1 before the first attach.
  [[nodiscard]] int server_session() const noexcept { return session_; }
  /// The server's config fingerprint, learned from the first WELCOME.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  /// Position-keyed digest over every sample this client delivered.
  [[nodiscard]] const shard::GlobalStreamDigest& digest() const noexcept {
    return digest_;
  }
  /// This run's trace id (nonzero once attached with trace_propagate).
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }
  /// Clock offset mapping server tracer timestamps onto ours; valid after
  /// the first attach with trace_propagate.
  [[nodiscard]] const flow::ClockOffset& clock_offset() const noexcept {
    return clock_offset_;
  }
  /// Server snapshot deltas accumulated across pull_server_stats() calls.
  [[nodiscard]] const obs::MetricsSnapshot& server_totals() const noexcept {
    return server_totals_;
  }
  /// The scope label ("tenant/<name>") the server reports in STATS replies,
  /// empty before the first pull.
  [[nodiscard]] const std::string& server_scope() const noexcept {
    return server_scope_;
  }
  [[nodiscard]] std::uint64_t stats_pulls() const noexcept {
    return stats_pulls_;
  }

 private:
  /// Connect + handshake if not currently connected; throws on failure
  /// (the caller's retry loop owns backoff).
  void ensure_attached();
  void backoff(int attempt);
  /// Build a NEXT frame for `ack`, prefixing the trace-context extension
  /// (span id ack+1) when trace propagation is on.
  [[nodiscard]] Frame make_next(std::uint64_t ack) const;
  /// Send `request`, receive one reply, reconnecting/backing off on any
  /// transport failure and retrying on server-side transient errors. The
  /// returned view is never kError; its payload points into reply_buf_ and
  /// is valid until the next roundtrip.
  FrameView roundtrip(const Frame& request);

  WireClientConfig config_;
  Socket conn_;
  /// Reusable receive buffer: a BATCH frame is decoded in place from here
  /// (no payload copy), and steady-state delivery does not allocate.
  Bytes reply_buf_;
  bool attached_ = false;
  /// A pipelined NEXT has been sent whose reply has not been received yet;
  /// the next frame on the wire answers it. Reset on every reconnect (a
  /// fresh connection has no outstanding request).
  bool next_in_flight_ = false;
  bool first_attach_done_ = false;
  bool ended_ = false;
  bool degraded_ = false;
  bool resumed_ = false;
  int session_ = -1;
  std::uint64_t fingerprint_ = 0;  // 0 until the first WELCOME
  WireClientStats stats_;
  shard::GlobalStreamDigest digest_;

  // sciprep::flow state (populated only when config_.trace_propagate).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Histogram* h_encode_ = nullptr;  // flow.client.encode_seconds
  obs::Histogram* h_wait_ = nullptr;    // flow.client.wait_seconds
  obs::Histogram* h_decode_ = nullptr;  // flow.client.decode_seconds
  std::uint64_t trace_id_ = 0;
  flow::ClockSyncEstimator clock_estimator_;
  flow::ClockOffset clock_offset_;
  obs::MetricsSnapshot server_totals_;
  std::string server_scope_;
  std::uint64_t stats_pulls_ = 0;
};

}  // namespace sciprep::wire
