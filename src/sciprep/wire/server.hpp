// WireServer — cross-process front of a DataService (sciprep::wire).
//
// One WireServer listens on an AF_UNIX socket and maps each connection onto
// a tenant session of the DataService it fronts. The service's existing
// guarantees pass through unchanged; the server adds exactly the properties
// a process boundary demands:
//
//   * Lease from liveness. Every request a connection makes (NEXT, BEAT)
//     beats its tenant's heartbeat-lease slot, so the lease now tracks real
//     socket traffic. A consumer that is SIGKILLed simply stops sending;
//     the maintenance thread's sweep_leases() pass then suspends its
//     session — checkpointing via guard::Snapshot and releasing its charge
//     — exactly as for an in-process dead consumer. Co-tenants never
//     notice.
//
//   * Exactly-once delivery across reconnects. Batches are sequenced per
//     tenant; NEXT carries the client's delivered count as an ack. The
//     server produces fresh when the ack matches its counter, re-sends its
//     retained last frame when the client is one behind (the reply was in
//     flight when the connection died), and rejects anything else as a
//     protocol error. A reconnecting client re-ATTACHes under the same
//     session id (taking over a live session or reattaching a swept one)
//     and the tenant's GlobalStreamDigest spans the disconnect.
//
//   * Hostile-input containment. A connection that sends garbage gets a
//     typed ERROR frame or is dropped; its tenant's session and every other
//     connection are untouched. Overload never hangs a client: admission
//     shedding surfaces as the DEGRADED flag on ATTACHED/BATCH frames, and
//     rejection as a transient ERROR the client can back off on.
//
// Request handlers hold a shared lock while the sweeper holds a unique one:
// DataService's "a session's next_batch must not race its own sweep"
// contract is kept by construction even with slow clients on live sockets.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "sciprep/fault/fault.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/serve/service.hpp"
#include "sciprep/wire/frame.hpp"
#include "sciprep/wire/socket.hpp"

namespace sciprep::wire {

struct WireServerConfig {
  /// AF_UNIX socket path to listen on (must fit sockaddr_un, ~107 bytes).
  std::string socket_path;
  /// Per-connection socket send/receive deadline. Bounds how long a handler
  /// can be pinned by a stalled peer; an idle-but-live connection just sees
  /// the read time out and polls again.
  double request_timeout_seconds = 5.0;
  /// Lease sweep cadence; 0 derives half the service's lease deadline.
  double sweep_interval_seconds = 0;
  int listen_backlog = 16;
  /// Optional injector for transport-fault drills: site wire.frame_crc
  /// mutates outgoing BATCH frames (the client must detect every flip),
  /// site wire.conn_drop severs a connection mid-request instead of
  /// replying (the client must reconnect and resume exactly-once).
  fault::Injector* injector = nullptr;
  /// Incident sink for transport faults (kWireFault, scoped to the tenant
  /// where one is attached). Same contract as ServiceConfig::on_event.
  fault::RecoveryListener on_event;
  /// wire.* counters land here; null means the fronted service's registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Artificial per-batch send delay (seconds), charged to the
  /// flow.server.send stage like any real socket stall — a deterministic way
  /// to drill the analyzer's wire-bound verdict without an actual slow link.
  double throttle_send_seconds = 0;
};

/// Per-tenant transport accounting, exposed for validation and carried to
/// the client in the DETACHED frame.
struct TenantWireStats {
  std::uint64_t batches = 0;   // batches produced over the wire
  std::uint64_t samples = 0;   // samples across those batches
  std::uint64_t attaches = 0;  // accepted ATTACHes (1 + reconnects/takeovers)
  std::uint64_t sweeps = 0;    // lease sweeps that suspended this tenant
  std::uint64_t resends = 0;   // retained-frame redeliveries
  bool ended = false;          // source stream exhausted (END sendable)
  bool detached = false;       // clean DETACH completed
};

class WireServer {
 public:
  /// Serve `service`'s dataset to the registered `tenants`. Clients attach
  /// by tenant name; the spec (pipeline config, epochs, weight) lives
  /// server-side — the wire carries names and batches, never configs.
  /// `service` must outlive the server.
  WireServer(serve::DataService& service,
             std::vector<serve::TenantSpec> tenants, WireServerConfig config);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Bind, listen, and start the accept + lease-sweep threads.
  void start();
  /// Stop accepting, sever every connection, join all threads. Idempotent.
  void stop();

  /// Block until every registered tenant has cleanly detached after END, or
  /// the timeout expires. Returns whether all detached.
  bool wait_all_detached(double timeout_seconds);

  [[nodiscard]] TenantWireStats tenant_stats(const std::string& name) const;
  /// The DataService session id serving `name`, or -1 before first attach.
  [[nodiscard]] int tenant_session(const std::string& name) const;
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  [[nodiscard]] std::uint64_t sweeps_total() const noexcept {
    return sweeps_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Session {
    int session = -1;            // DataService session id
    std::uint64_t next_seq = 0;  // seq the next service produce receives
    /// The last frame committed to the wire, kept for ack-window resend.
    Bytes retained;
    std::uint64_t retained_seq = 0;
    bool retained_valid = false;
    /// Read-ahead: the next frame, produced and encoded right after the
    /// previous send so a pipelined client's ack is answered instantly and
    /// the pipeline runs while the consumer consumes. Never been sent.
    Bytes ready;
    std::uint64_t ready_seq = 0;
    bool ready_valid = false;
    std::uint64_t send_ops = 0;  // injector op counter (fresh per send)
    long owner = -1;             // connection currently attached, -1 if none
    TenantWireStats stats;
    /// Totals as of the last STATS reply on this session; the next reply
    /// carries the delta against this (full snapshot on the first pull).
    obs::MetricsSnapshot stats_sent;
    /// Set when the tenant's pipeline escalated: the service evicted the
    /// session and every further request gets this error back.
    std::string terminal_error;
  };

  void accept_loop();
  void sweep_loop();
  void handle_connection(Socket conn, long conn_id);
  /// Dispatch one request frame; returns false to sever the connection.
  bool dispatch(const Socket& conn, long conn_id, std::string& attached,
                const Frame& request);
  void handle_attach(const Socket& conn, long conn_id, std::string& attached,
                     const Frame& request);
  void handle_next(const Socket& conn, long conn_id,
                   const std::string& attached, const Frame& request);
  /// Pull one batch from the service and encode it as a BATCH frame into
  /// `out` (seq tag in `seq`). False when the stream is exhausted; service
  /// eviction propagates as the thrown exception. `produce_ns`/`encode_ns`
  /// receive the measured durations of the two phases for flow attribution.
  bool encode_next_batch(Session& session, bool degraded, Bytes& out,
                         std::uint64_t& seq, std::int64_t& produce_ns,
                         std::int64_t& encode_ns);
  void handle_detach(const Socket& conn, const std::string& attached);
  /// flow handlers: steady-clock exchange, per-tenant snapshot delta, and
  /// the server span-ring pull.
  void handle_clock_sync(const Socket& conn, const Frame& request);
  void handle_stats(const Socket& conn, const std::string& attached);
  void handle_trace(const Socket& conn, const Frame& request);
  void send_error(const Socket& conn, ErrorClass error_class,
                  std::string message);
  void emit_wire_fault(const std::string& tenant, std::string detail);
  void release_owner(long conn_id);

  serve::DataService& service_;
  WireServerConfig config_;
  std::map<std::string, serve::TenantSpec> specs_;
  obs::MetricsRegistry* metrics_;

  obs::Counter& connections_total_;
  obs::Counter& frames_received_;
  obs::Counter& frames_sent_;
  obs::Counter& errors_sent_;
  obs::Counter& attaches_total_;
  obs::Counter& batches_sent_;
  obs::Counter& resends_total_;
  obs::Counter& sweeps_counter_;

  Socket listener_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> sweeps_total_{0};

  /// Handlers shared, sweeper unique: a sweep pass never overlaps a request.
  std::shared_mutex sweep_mutex_;
  /// Guards sessions_/connection bookkeeping + the all-detached condition.
  mutable std::mutex roster_mutex_;
  std::condition_variable roster_cv_;
  std::map<std::string, Session> sessions_;

  std::thread accept_thread_;
  std::thread sweep_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> conn_threads_;
  /// Live connection fds by id, so stop() can shutdown() each to wake its
  /// handler out of a blocked read. The handler owns the close.
  std::map<long, int> conn_fds_;
  long next_conn_id_ = 0;
};

}  // namespace sciprep::wire
