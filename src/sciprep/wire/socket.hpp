// AF_UNIX socket plumbing shared by WireServer and WireClient.
//
// Thin RAII + errno-mapping layer over the BSD socket calls; all byte
// movement goes through sysio::read_full/write_full, so the wire transport
// inherits the one audited EINTR/partial-I/O loop. Frame-level send/recv
// live here too: recv_frame() reads the fixed header, validates it before
// trusting the declared length, reads the remainder, and hands the whole
// envelope to decode_frame() — every malformed or torn input surfaces as a
// typed error, never as UB or an unbounded allocation.
#pragma once

#include <string>

#include "sciprep/common/buffer.hpp"
#include "sciprep/wire/frame.hpp"

namespace sciprep::wire {

/// Owning socket descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on an AF_UNIX socket at `path`, replacing any stale socket
/// file left by a crashed predecessor. Throws ConfigError when the path does
/// not fit sockaddr_un, IoError on system failure.
[[nodiscard]] Socket listen_unix(const std::string& path, int backlog);

/// Accept one connection; blocks up to the listener's receive deadline when
/// one is set. Returns an invalid Socket on timeout (so an accept loop can
/// poll a stop flag), throws IoError on real failure.
[[nodiscard]] Socket accept_unix(const Socket& listener);

/// Connect to the AF_UNIX socket at `path`. Failure to connect (server not
/// up yet, socket file missing) is a TransientError — the client's backoff
/// loop owns the retry; other failures are IoError.
[[nodiscard]] Socket connect_unix(const std::string& path);

/// Arm SO_RCVTIMEO/SO_SNDTIMEO so every read/write on `socket` fails with
/// a TransientError after `seconds` instead of blocking forever. 0 disables.
void set_io_deadline(const Socket& socket, double seconds);

/// Ignore SIGPIPE process-wide (idempotent). A peer that vanishes mid-write
/// must surface as a TransientError from write_full, not kill the process.
void ignore_sigpipe() noexcept;

/// Ask the kernel for `bytes` of send + receive buffer on `socket`. A BATCH
/// frame is a few hundred KB; with the default ~208 KB AF_UNIX buffer the
/// sender blocks mid-frame until the receiver drains, serializing transfer
/// into the server's produce loop. A buffer at least one frame deep lets
/// send() complete immediately and the copy overlap the next produce. The
/// kernel clamps to net.core.{w,r}mem_max — best effort, never an error.
void set_socket_buffers(const Socket& socket, int bytes) noexcept;

/// Send one encoded frame. `bytes` is the output of encode_frame() (or a
/// deliberately mutated copy, for fault drills).
void send_frame_bytes(const Socket& socket, ByteSpan bytes);
inline void send_frame(const Socket& socket, const Frame& frame) {
  send_frame_bytes(socket, encode_frame(frame));
}

/// Receive one frame. `eof_ok` selects what a clean close before the first
/// header byte means: true returns an empty optional-style sentinel via the
/// bool, false throws TruncatedError. A close *inside* a frame always
/// throws TruncatedError.
[[nodiscard]] bool recv_frame(const Socket& socket, Frame& frame, bool eof_ok);

/// Receive one frame's complete raw envelope into `buf` (header validated
/// to size the body read; everything else still unchecked). Pair with
/// decode_frame_view() to parse a large payload without copying it out of
/// the receive buffer. Same eof_ok contract as recv_frame().
[[nodiscard]] bool recv_frame_envelope(const Socket& socket, Bytes& buf,
                                       bool eof_ok);

}  // namespace sciprep::wire
