#include "sciprep/wire/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/flow/merge.hpp"
#include "sciprep/flow/snapshot.hpp"
#include "sciprep/obs/trace.hpp"

namespace sciprep::wire {

namespace {

/// Thrown by a handler to sever the connection without replying — the
/// injected wire.conn_drop fault and unrecoverable protocol violations.
struct DropConnection {
  std::string reason;
};

obs::MetricsRegistry& resolve(obs::MetricsRegistry* metrics,
                              serve::DataService& service) {
  return metrics != nullptr ? *metrics : service.metrics();
}

}  // namespace

WireServer::WireServer(serve::DataService& service,
                       std::vector<serve::TenantSpec> tenants,
                       WireServerConfig config)
    : service_(service),
      config_(std::move(config)),
      metrics_(&resolve(config_.metrics, service)),
      connections_total_(metrics_->counter("wire.connections_total")),
      frames_received_(metrics_->counter("wire.frames_received_total")),
      frames_sent_(metrics_->counter("wire.frames_sent_total")),
      errors_sent_(metrics_->counter("wire.errors_sent_total")),
      attaches_total_(metrics_->counter("wire.attaches_total")),
      batches_sent_(metrics_->counter("wire.batches_sent_total")),
      resends_total_(metrics_->counter("wire.resends_total")),
      sweeps_counter_(metrics_->counter("wire.sweeps_total")) {
  if (config_.socket_path.empty()) {
    throw ConfigError("wire: server socket_path must be non-empty");
  }
  if (config_.request_timeout_seconds <= 0) {
    throw ConfigError("wire: request_timeout_seconds must be > 0");
  }
  for (serve::TenantSpec& spec : tenants) {
    if (spec.name.empty()) {
      throw ConfigError("wire: tenant name must be non-empty");
    }
    const std::string name = spec.name;
    if (!specs_.emplace(name, std::move(spec)).second) {
      throw ConfigError(fmt("wire: duplicate tenant '{}'", name));
    }
  }
}

WireServer::~WireServer() { stop(); }

void WireServer::start() {
  if (started_.exchange(true)) {
    throw ConfigError("wire: server already started");
  }
  ignore_sigpipe();
  listener_ = listen_unix(config_.socket_path, config_.listen_backlog);
  // A short accept deadline keeps the accept loop responsive to stop().
  set_io_deadline(listener_, 0.2);
  accept_thread_ = std::thread([this] { accept_loop(); });
  sweep_thread_ = std::thread([this] { sweep_loop(); });
}

void WireServer::stop() {
  if (!started_.load() || stop_.exchange(true)) return;
  roster_cv_.notify_all();
  {
    // Wake every handler blocked in recv: shutdown turns their pending read
    // into EOF without racing the fd lifetime (the handler owns the close).
    std::lock_guard lock(threads_mutex_);
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (sweep_thread_.joinable()) sweep_thread_.join();
  for (;;) {
    std::thread t;
    {
      std::lock_guard lock(threads_mutex_);
      if (conn_threads_.empty()) break;
      t = std::move(conn_threads_.back());
      conn_threads_.pop_back();
    }
    if (t.joinable()) t.join();
  }
  listener_.close();
  ::unlink(config_.socket_path.c_str());
}

bool WireServer::wait_all_detached(double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  std::unique_lock lock(roster_mutex_);
  return roster_cv_.wait_until(lock, deadline, [this] {
    if (stop_.load()) return true;
    if (sessions_.size() < specs_.size()) return false;
    for (const auto& [name, session] : sessions_) {
      if (!session.stats.detached) return false;
    }
    return true;
  });
}

TenantWireStats WireServer::tenant_stats(const std::string& name) const {
  std::lock_guard lock(roster_mutex_);
  const auto it = sessions_.find(name);
  return it != sessions_.end() ? it->second.stats : TenantWireStats{};
}

int WireServer::tenant_session(const std::string& name) const {
  std::lock_guard lock(roster_mutex_);
  const auto it = sessions_.find(name);
  return it != sessions_.end() ? it->second.session : -1;
}

void WireServer::accept_loop() {
  while (!stop_.load()) {
    Socket conn;
    try {
      conn = accept_unix(listener_);
    } catch (const std::exception& e) {
      if (stop_.load()) break;
      log_warn(fmt("wire: accept failed: {}", e.what()));
      continue;
    }
    if (!conn.valid()) continue;  // deadline tick; poll stop_
    connections_total_.add(1);
    const long conn_id = next_conn_id_++;
    std::lock_guard lock(threads_mutex_);
    conn_fds_.emplace(conn_id, conn.fd());
    conn_threads_.emplace_back(
        [this, conn_id, c = std::make_shared<Socket>(std::move(conn))] {
          handle_connection(std::move(*c), conn_id);
        });
  }
}

void WireServer::sweep_loop() {
  const double interval = config_.sweep_interval_seconds > 0
                              ? config_.sweep_interval_seconds
                              : 1.0;
  std::mutex wait_mutex;
  while (!stop_.load()) {
    {
      std::unique_lock lock(wait_mutex);
      roster_cv_.wait_for(lock, std::chrono::duration<double>(interval),
                          [this] { return stop_.load(); });
    }
    if (stop_.load()) break;
    std::vector<std::string> suspended;
    {
      // Unique lock: the service's contract forbids sweeping a session while
      // its own next_batch is in flight, and handlers hold the shared side.
      std::unique_lock sweep(sweep_mutex_);
      suspended = service_.sweep_leases();
    }
    if (suspended.empty()) continue;
    sweeps_counter_.add(suspended.size());
    sweeps_total_.fetch_add(suspended.size(), std::memory_order_relaxed);
    std::lock_guard lock(roster_mutex_);
    for (const std::string& name : suspended) {
      const auto it = sessions_.find(name);
      if (it != sessions_.end()) it->second.stats.sweeps += 1;
    }
  }
}

void WireServer::handle_connection(Socket conn, long conn_id) {
  set_io_deadline(conn, config_.request_timeout_seconds);
  // Deep enough for one typical BATCH frame: send() then returns before the
  // client drains, so the read-ahead produce overlaps the transfer.
  set_socket_buffers(conn, 4 << 20);
  std::string attached;  // tenant this connection owns, empty before ATTACH
  while (!stop_.load()) {
    Frame request;
    try {
      if (!recv_frame(conn, request, /*eof_ok=*/true)) break;  // clean close
    } catch (const TransientError&) {
      continue;  // idle past the read deadline; poll stop_ and keep waiting
    } catch (const std::exception& e) {
      // Garbage from this peer is this peer's problem alone: record it and
      // sever. The tenant session (if any) stays for the lease sweep or a
      // reconnect to pick up.
      emit_wire_fault(attached, fmt("unreadable frame from connection {}: {}",
                                    conn_id, e.what()));
      break;
    }
    frames_received_.add(1);
    try {
      if (!dispatch(conn, conn_id, attached, request)) break;
    } catch (const DropConnection& drop) {
      emit_wire_fault(attached, fmt("connection {} dropped: {}", conn_id,
                                    drop.reason));
      break;
    } catch (const std::exception& e) {
      // A handler failure (including a send to a vanished peer) must never
      // take the server down; sever this connection only.
      emit_wire_fault(attached, fmt("connection {} failed: {}", conn_id,
                                    e.what()));
      break;
    }
  }
  if (!attached.empty()) release_owner(conn_id);
  std::lock_guard lock(threads_mutex_);
  conn_fds_.erase(conn_id);
}

bool WireServer::dispatch(const Socket& conn, long conn_id,
                          std::string& attached, const Frame& request) {
  switch (request.type) {
    case FrameType::kHello: {
      const HelloPayload hello = HelloPayload::decode(request.payload);
      if (hello.schema_version != kSchemaVersion) {
        send_error(conn, ErrorClass::kConfig,
                   fmt("batch schema version {} not supported (server "
                       "speaks {})",
                       hello.schema_version, kSchemaVersion));
        return true;
      }
      if (hello.fingerprint != 0 &&
          hello.fingerprint != service_.config_fingerprint()) {
        send_error(conn, ErrorClass::kConfig,
                   fmt("config fingerprint mismatch: client expects 0x{:x}, "
                       "server is 0x{:x} — not the service this stream "
                       "started on",
                       hello.fingerprint, service_.config_fingerprint()));
        return true;
      }
      WelcomePayload welcome;
      welcome.schema_version = kSchemaVersion;
      welcome.fingerprint = service_.config_fingerprint();
      send_frame(conn, Frame{FrameType::kWelcome, 0, welcome.encode()});
      frames_sent_.add(1);
      return true;
    }
    case FrameType::kAttach:
      handle_attach(conn, conn_id, attached, request);
      return true;
    case FrameType::kNext:
      if (attached.empty()) {
        send_error(conn, ErrorClass::kConfig, "NEXT before ATTACH");
        return true;
      }
      handle_next(conn, conn_id, attached, request);
      return true;
    case FrameType::kBeat: {
      if (!attached.empty()) {
        const std::shared_lock sweep(sweep_mutex_);
        std::lock_guard lock(roster_mutex_);
        const auto it = sessions_.find(attached);
        if (it != sessions_.end() &&
            service_.session_state(it->second.session) ==
                serve::SessionState::kActive) {
          service_.beat(it->second.session);
        }
      }
      send_frame(conn, Frame{FrameType::kBeat, 0, {}});
      frames_sent_.add(1);
      return true;
    }
    case FrameType::kDetach:
      if (attached.empty()) {
        send_error(conn, ErrorClass::kConfig, "DETACH before ATTACH");
        return true;
      }
      handle_detach(conn, attached);
      attached.clear();
      release_owner(conn_id);
      return true;
    case FrameType::kClockSync:
      handle_clock_sync(conn, request);
      return true;
    case FrameType::kStats:
      if (attached.empty()) {
        send_error(conn, ErrorClass::kConfig, "STATS before ATTACH");
        return true;
      }
      handle_stats(conn, attached);
      return true;
    case FrameType::kTrace:
      handle_trace(conn, request);
      return true;
    default:
      // A client must never send server-side frame types; this speaker is
      // broken or hostile. One typed error, then sever.
      send_error(conn, ErrorClass::kFatal,
                 fmt("unexpected {} frame from a client",
                     frame_type_name(request.type)));
      return false;
  }
}

void WireServer::handle_attach(const Socket& conn, long conn_id,
                               std::string& attached, const Frame& request) {
  const AttachPayload attach = AttachPayload::decode(request.payload);
  const std::shared_lock sweep(sweep_mutex_);
  std::lock_guard lock(roster_mutex_);
  const auto spec_it = specs_.find(attach.tenant);
  if (spec_it == specs_.end()) {
    send_error(conn, ErrorClass::kConfig,
               fmt("unknown tenant '{}'", attach.tenant));
    return;
  }
  auto it = sessions_.find(attach.tenant);
  if (it != sessions_.end() && it->second.stats.detached) {
    // A cleanly-detached name may be reused: start a fresh session.
    sessions_.erase(it);
    it = sessions_.end();
  }
  bool resumed = false;
  if (it == sessions_.end()) {
    const serve::DataService::OpenResult res =
        service_.open_session(spec_it->second);
    if (res.admission == serve::Admission::kRejected) {
      send_error(conn, ErrorClass::kTransient,
                 fmt("admission rejected for tenant '{}'; retry later",
                     attach.tenant));
      return;
    }
    Session session;
    session.session = res.session;
    session.owner = conn_id;
    session.stats.attaches = 1;
    it = sessions_.emplace(attach.tenant, std::move(session)).first;
  } else {
    Session& session = it->second;
    if (!session.terminal_error.empty()) {
      send_error(conn, ErrorClass::kConfig,
                 fmt("tenant '{}' was evicted: {}", attach.tenant,
                     session.terminal_error));
      return;
    }
    if (session.owner != -1 && session.owner != conn_id) {
      send_error(conn, ErrorClass::kConfig,
                 fmt("tenant '{}' is attached on another connection",
                     attach.tenant));
      return;
    }
    const serve::SessionState state = service_.session_state(session.session);
    if (state == serve::SessionState::kSuspended) {
      const serve::DataService::OpenResult res =
          service_.reattach(attach.tenant);
      if (res.admission == serve::Admission::kRejected) {
        send_error(conn, ErrorClass::kTransient,
                   fmt("reattach rejected for tenant '{}'; retry later",
                       attach.tenant));
        return;
      }
    } else if (state != serve::SessionState::kActive) {
      send_error(conn, ErrorClass::kConfig,
                 fmt("tenant '{}' session is {}", attach.tenant,
                     serve::session_state_name(state)));
      return;
    } else {
      service_.beat(session.session);
    }
    session.owner = conn_id;
    session.stats.attaches += 1;
    resumed = true;
  }
  Session& session = it->second;
  attached = attach.tenant;
  attaches_total_.add(1);
  const serve::Admission admission =
      service_.session_admission(session.session);
  AttachedPayload reply;
  reply.session = session.session;
  reply.admission = static_cast<std::uint8_t>(admission);
  reply.resumed = resumed ? 1 : 0;
  // Where a state-less replacement consumer must start acking. The retained
  // frame (if any) may never have reached the dead consumer, so it is
  // redelivered: at-least-once per batch across a process death, with the
  // digest's idempotent record() proving the duplicate bit-identical. A
  // read-ahead frame was never sent at all, so it comes after the retained
  // one in the replay.
  reply.resume_seq = session.retained_valid
                         ? session.retained_seq
                         : (session.ready_valid ? session.ready_seq
                                                : session.next_seq);
  Frame frame{FrameType::kAttached, 0, reply.encode()};
  if (admission == serve::Admission::kDegraded) frame.flags |= kFlagDegraded;
  send_frame(conn, frame);
  frames_sent_.add(1);
}

void WireServer::handle_next(const Socket& conn, long conn_id,
                             const std::string& attached,
                             const Frame& request) {
  obs::Tracer& tracer = obs::Tracer::global();
  ByteSpan body = request.payload;
  TraceContext ctx;
  const bool flow_on = (request.flags & kFlagTraceContext) != 0;
  if (flow_on) ctx = decode_trace_context(body);
  const std::int64_t t_request =
      flow_on ? static_cast<std::int64_t>(tracer.now_ns()) : 0;
  const NextPayload next = NextPayload::decode(body);
  const std::shared_lock sweep(sweep_mutex_);
  Session* session = nullptr;
  {
    std::lock_guard lock(roster_mutex_);
    const auto it = sessions_.find(attached);
    SCIPREP_ASSERT(it != sessions_.end());
    session = &it->second;
    if (!session->terminal_error.empty()) {
      send_error(conn, ErrorClass::kConfig,
                 fmt("tenant '{}' was evicted: {}", attached,
                     session->terminal_error));
      return;
    }
  }
  // This connection owns the tenant (single-consumer), so session state
  // beyond the roster map itself is not raced: only the sweeper touches it,
  // and the shared lock holds the sweeper out.
  if (service_.session_state(session->session) ==
      serve::SessionState::kSuspended) {
    // Swept while this consumer was merely slow, not dead: self-heal by
    // reattaching before producing.
    const serve::DataService::OpenResult res = service_.reattach(attached);
    if (res.admission == serve::Admission::kRejected) {
      send_error(conn, ErrorClass::kTransient,
                 fmt("reattach rejected for tenant '{}'; retry later",
                     attached));
      return;
    }
  }
  const bool degraded = service_.session_admission(session->session) ==
                        serve::Admission::kDegraded;
  // flow attribution (only when the request carried a trace context): the
  // spans and histograms below measure *client-visible* server time — a
  // promoted read-ahead frame charges ~0 queue-wait and 0 encode, because
  // that work was overlapped with the client's previous decode and never
  // held this request up.
  std::int64_t encode_ns = 0;
  if (session->retained_valid && next.ack == session->retained_seq) {
    // The previous reply died on the wire (or with the previous consumer
    // process): redeliver the retained frame byte-for-byte.
    session->stats.resends += 1;
    resends_total_.add(1);
  } else if (session->ready_valid && next.ack == session->ready_seq) {
    // Promote the read-ahead frame: from here it is committed to the wire,
    // so it becomes the resend window even if the send below is severed.
    session->retained = std::move(session->ready);
    session->retained_seq = session->ready_seq;
    session->retained_valid = true;
    session->ready_valid = false;
    session->ready.clear();
  } else if (!session->ready_valid && next.ack == session->next_seq) {
    if (session->stats.ended) {
      send_frame(conn, Frame{FrameType::kEnd, 0, {}});
      frames_sent_.add(1);
      return;
    }
    try {
      std::int64_t produce_ns = 0;
      if (!encode_next_batch(*session, degraded, session->retained,
                             session->retained_seq, produce_ns, encode_ns)) {
        session->stats.ended = true;
        send_frame(conn, Frame{FrameType::kEnd, 0, {}});
        frames_sent_.add(1);
        return;
      }
      session->retained_valid = true;
    } catch (const std::exception& e) {
      // The service evicted the session; every request from now on reports
      // the same terminal error.
      {
        std::lock_guard lock(roster_mutex_);
        session->terminal_error = e.what();
      }
      send_error(conn, classify(e), e.what());
      return;
    }
  } else {
    send_error(conn, ErrorClass::kFatal,
               fmt("ack {} out of window for tenant '{}' (expected {}{})",
                   next.ack, attached,
                   session->retained_valid
                       ? fmt("{} or ", session->retained_seq)
                       : std::string{},
                   session->ready_valid ? session->ready_seq
                                        : session->next_seq));
    return;
  }
  const std::int64_t t_ready =
      flow_on ? static_cast<std::int64_t>(tracer.now_ns()) : 0;
  const std::int64_t t_send0 = t_ready;
  if (config_.throttle_send_seconds > 0) {
    // Drill knob: a deliberately slow wire, charged to the send stage like
    // any real socket stall would be.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.throttle_send_seconds));
  }
  const Bytes& out = session->retained;
  if (config_.injector != nullptr) {
    // wire.conn_drop fires *after* the batch is produced and retained — the
    // hard case: server state advanced, the reply never arrives, and the
    // client's reconnect must recover it via the ack window.
    try {
      config_.injector->on_operation(fault::Site::kWireConnDrop,
                                     session->send_ops);
    } catch (const TransientError&) {
      session->send_ops += 1;
      throw DropConnection{fmt("injected conn drop to tenant '{}' (conn {})",
                               attached, conn_id)};
    }
    // wire.frame_crc flips a bit in the outgoing envelope. Each send draws a
    // fresh op id, so the redelivery of a corrupted frame is not doomed to
    // the same corruption.
    Bytes scratch;
    const ByteSpan mutated = config_.injector->mutate(
        fault::Site::kWireFrameCrc, session->send_ops++, out, scratch);
    if (mutated.data() != out.data()) {
      emit_wire_fault(attached, fmt("injected frame corruption on seq {}",
                                    session->retained_seq));
    }
    send_frame_bytes(conn, mutated);
  } else {
    send_frame_bytes(conn, out);
  }
  batches_sent_.add(1);
  frames_sent_.add(1);
  std::string link;
  if (flow_on) {
    const std::int64_t t_send1 = static_cast<std::int64_t>(tracer.now_ns());
    // Span args carry the linkage the validator and flowmerge walk: every
    // server-side span for this request points at the client's batch span.
    link = "{\"trace_id\":" + std::to_string(ctx.trace_id) +
           ",\"parent_span_id\":" + std::to_string(ctx.parent_span_id) + "}";
    const std::int64_t t_encode0 = t_ready - encode_ns;
    const auto u = [](std::int64_t ns) {
      return static_cast<std::uint64_t>(ns > 0 ? ns : 0);
    };
    tracer.record(flow::kServerQueueWaitSpan, "flow", u(t_request),
                  u(t_encode0), link);
    tracer.record(flow::kServerEncodeSpan, "flow", u(t_encode0), u(t_ready),
                  link);
    tracer.record(flow::kServerSendSpan, "flow", u(t_send0), u(t_send1), link);
    tracer.record(flow::kServerNextSpan, "flow", u(t_request), u(t_send1),
                  link);
    // Histograms record the exact same measured intervals as the spans, so
    // flow::validate_flow can cross-check the two books against each other.
    obs::MetricsRegistry& reg = service_.tenant_metrics(session->session);
    reg.histogram(flow::kServerQueueWaitSeconds)
        .record(static_cast<double>(t_encode0 - t_request) / 1e9);
    reg.histogram(flow::kServerEncodeSeconds)
        .record(static_cast<double>(encode_ns) / 1e9);
    reg.histogram(flow::kServerSendSeconds)
        .record(static_cast<double>(t_send1 - t_send0) / 1e9);
  }
  if (!session->stats.ended && !session->ready_valid &&
      session->terminal_error.empty()) {
    // Read ahead: the reply for this request is already on the wire, so the
    // produce + encode of the next batch runs while the client decodes and
    // consumes — a pipelined client's following NEXT is answered instantly.
    const std::int64_t t_ra0 =
        flow_on ? static_cast<std::int64_t>(tracer.now_ns()) : 0;
    try {
      std::int64_t ra_produce_ns = 0;
      std::int64_t ra_encode_ns = 0;
      if (encode_next_batch(*session, degraded, session->ready,
                            session->ready_seq, ra_produce_ns,
                            ra_encode_ns)) {
        session->ready_valid = true;
        if (flow_on) {
          // Client-invisible overlapped work: shown in the merged trace
          // (parented to the request that triggered it), but deliberately
          // not charged to any attribution histogram.
          tracer.record(flow::kServerReadaheadSpan, "flow",
                        static_cast<std::uint64_t>(t_ra0), tracer.now_ns(),
                        link);
        }
      } else {
        session->stats.ended = true;
      }
    } catch (const std::exception& e) {
      // Nothing to reply to here; the eviction is reported to the next
      // request instead.
      std::lock_guard lock(roster_mutex_);
      session->terminal_error = e.what();
    }
  }
}

bool WireServer::encode_next_batch(Session& session, bool degraded, Bytes& out,
                                   std::uint64_t& seq,
                                   std::int64_t& produce_ns,
                                   std::int64_t& encode_ns) {
  obs::Tracer& tracer = obs::Tracer::global();
  const std::int64_t t0 = static_cast<std::int64_t>(tracer.now_ns());
  pipeline::Batch batch;
  if (!service_.next_batch(session.session, batch)) return false;
  const std::int64_t t1 = static_cast<std::int64_t>(tracer.now_ns());
  BatchPayload payload;
  payload.seq = session.next_seq;
  payload.batch = std::move(batch);
  // Serialize the tensors straight into the wire envelope — the retained
  // bytes ARE the frame, with no intermediate payload buffer — recycling
  // the retired frame's storage so steady-state serving does not allocate.
  ByteWriter w = begin_frame(std::move(out));
  payload.encode_into(w);
  out = finish_frame(std::move(w), FrameType::kBatch,
                     degraded ? kFlagDegraded : std::uint8_t{0});
  produce_ns = t1 - t0;
  encode_ns = static_cast<std::int64_t>(tracer.now_ns()) - t1;
  seq = session.next_seq;
  session.next_seq += 1;
  session.stats.batches += 1;
  session.stats.samples += payload.batch.samples.size();
  return true;
}

void WireServer::handle_detach(const Socket& conn,
                               const std::string& attached) {
  const std::shared_lock sweep(sweep_mutex_);
  std::lock_guard lock(roster_mutex_);
  const auto it = sessions_.find(attached);
  SCIPREP_ASSERT(it != sessions_.end());
  Session& session = it->second;
  if (service_.session_state(session.session) ==
      serve::SessionState::kActive) {
    service_.close_session(session.session);
  }
  DetachedPayload reply;
  reply.batches = session.stats.batches;
  reply.samples = session.stats.samples;
  reply.attaches = session.stats.attaches;
  reply.sweeps = session.stats.sweeps;
  reply.digest_crc = service_.digest(session.session).stream_digest();
  session.stats.detached = true;
  session.owner = -1;
  send_frame(conn, Frame{FrameType::kDetached, 0, reply.encode()});
  frames_sent_.add(1);
  roster_cv_.notify_all();
}

void WireServer::handle_clock_sync(const Socket& conn, const Frame& request) {
  // Stamp as late as possible: the estimator's error bound is half the
  // round trip, so every instruction between recv and this read widens it.
  ClockSyncPayload sync = ClockSyncPayload::decode(request.payload);
  sync.t_server_ns = obs::Tracer::global().now_ns();
  send_frame(conn, Frame{FrameType::kClockSync, 0, sync.encode()});
  frames_sent_.add(1);
}

void WireServer::handle_stats(const Socket& conn,
                              const std::string& attached) {
  const std::shared_lock sweep(sweep_mutex_);
  Session* session = nullptr;
  {
    std::lock_guard lock(roster_mutex_);
    const auto it = sessions_.find(attached);
    SCIPREP_ASSERT(it != sessions_.end());
    session = &it->second;
    if (!session->terminal_error.empty()) {
      send_error(conn, ErrorClass::kConfig,
                 fmt("tenant '{}' was evicted: {}", attached,
                     session->terminal_error));
      return;
    }
  }
  StatsPayload reply;
  reply.scope = fmt("tenant/{}", attached);
  reply.t_server_ns = obs::Tracer::global().now_ns();
  // Delta federation: ship only what changed since the last pull on this
  // session (the first pull ships everything). The client accumulates the
  // deltas back into exact totals; the cost per pull stays proportional to
  // activity, not to registry size history.
  const obs::MetricsSnapshot current =
      service_.tenant_snapshot(session->session);
  reply.delta = flow::snapshot_delta(current, session->stats_sent);
  session->stats_sent = current;
  send_frame(conn, Frame{FrameType::kStats, 0, reply.encode()});
  frames_sent_.add(1);
}

void WireServer::handle_trace(const Socket& conn, const Frame& request) {
  const TraceRequestPayload req = TraceRequestPayload::decode(request.payload);
  obs::Tracer& tracer = obs::Tracer::global();
  TracePayload reply;
  reply.pid = static_cast<std::int64_t>(::getpid());
  reply.process_name = tracer.process_name();
  reply.spans_dropped = tracer.dropped_total();
  reply.spans = req.max_spans == 0
                    ? tracer.snapshot()
                    : tracer.snapshot_tail(req.max_spans);
  send_frame(conn, Frame{FrameType::kTrace, 0, reply.encode()});
  frames_sent_.add(1);
}

void WireServer::send_error(const Socket& conn, ErrorClass error_class,
                            std::string message) {
  ErrorPayload payload;
  payload.error_class = static_cast<std::uint8_t>(error_class);
  payload.message = std::move(message);
  send_frame(conn, Frame{FrameType::kError, 0, payload.encode()});
  errors_sent_.add(1);
  frames_sent_.add(1);
}

void WireServer::emit_wire_fault(const std::string& tenant,
                                 std::string detail) {
  log_warn(fmt("wire: {}", detail));
  if (!config_.on_event) return;
  fault::RecoveryEvent event;
  event.kind = fault::EventKind::kWireFault;
  event.stage = "wire";
  event.detail = std::move(detail);
  event.scope = tenant;
  config_.on_event(event);
}

void WireServer::release_owner(long conn_id) {
  std::lock_guard lock(roster_mutex_);
  for (auto& [name, session] : sessions_) {
    if (session.owner == conn_id) session.owner = -1;
  }
}

}  // namespace sciprep::wire
