// Wire frame codec for cross-process serving (sciprep::wire).
//
// Everything crossing the AF_UNIX socket between a WireServer and its
// clients is one `Frame` in a fixed envelope:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic "SWIR" (0x52495753 little-endian)
//        4     2  protocol version (kProtocolVersion)
//        6     1  frame type (FrameType)
//        7     1  flags (kFlagDegraded, ...)
//        8     4  payload length N (<= kMaxPayload)
//       12     N  payload (per-type schema below)
//    12 + N     4  crc32c over bytes [4, 12 + N)
//
// The CRC covers every field except the magic, so a single flipped bit
// anywhere in a frame is detected: in the magic it fails the magic check,
// anywhere else it fails the CRC. Parsing is hostile-input-safe by
// construction — decode_frame() classifies every malformed input into the
// sciprep error taxonomy and never reads out of bounds:
//
//   * input shorter than its own framing      -> TruncatedError
//   * bad magic, oversized declared length,
//     CRC mismatch, trailing garbage          -> FormatError
//   * valid envelope from a different-version
//     or unknown-type speaker                 -> ProtocolError
//
// Payload schemas are little-endian field lists over ByteWriter/ByteReader;
// each payload struct's decode() re-validates its own bounds, so a frame
// whose envelope checks out but whose body lies about its array lengths
// still fails typed, not undefined.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/common/buffer.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace sciprep::wire {

/// The peer speaks a different protocol than this build (wrong version,
/// unknown frame type, out-of-window acknowledgement, handshake violation).
/// Classifies as kFatal: neither retrying nor skipping can reconcile two
/// incompatible speakers.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

inline constexpr std::uint32_t kMagic = 0x52495753u;  // "SWIR"
inline constexpr std::uint16_t kProtocolVersion = 1;
/// Version of the batch payload schema, carried in the HELLO/WELCOME
/// handshake separately from the envelope version: the envelope can stay
/// stable while the tensor encoding evolves.
inline constexpr std::uint32_t kSchemaVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
inline constexpr std::size_t kTrailerSize = 4;
/// Hard cap on a declared payload length. A hostile or corrupt header
/// cannot make the receiver allocate more than this.
inline constexpr std::uint32_t kMaxPayload = 256u << 20;

/// Frame flags. kFlagDegraded rides ATTACHED and BATCH frames when the
/// session is running at Admission::kDegraded — overload surfaces to the
/// client as a visible flag, never as a hang. kFlagTraceContext marks a NEXT
/// frame whose payload is prefixed with a versioned TraceContext extension
/// (sciprep::flow distributed tracing); the CRC covers the extension like
/// any other payload byte.
inline constexpr std::uint8_t kFlagDegraded = 0x01;
inline constexpr std::uint8_t kFlagTraceContext = 0x02;

enum class FrameType : std::uint8_t {
  kHello = 1,    // client -> server: schema version + expected fingerprint
  kWelcome,      // server -> client: schema version + config fingerprint
  kAttach,       // client -> server: attach to a registered tenant by name
  kAttached,     // server -> client: session id, admission, resume state
  kNext,         // client -> server: request a batch, acking delivery so far
  kBatch,        // server -> client: one sequenced batch
  kEnd,          // server -> client: stream exhausted (all epochs delivered)
  kBeat,         // either direction: lease keep-alive (server echoes it)
  kDetach,       // client -> server: clean close
  kDetached,     // server -> client: final per-tenant accounting
  kError,        // server -> client: typed failure (ErrorClass + message)
  kClockSync,    // both ways: steady-clock exchange for flow clock alignment
  kStats,        // client -> server: pull; server -> client: snapshot delta
  kTrace,        // client -> server: pull; server -> client: span ring tail
};

/// Highest valid FrameType value; decode rejects anything outside
/// [kHello, kMaxFrameType] as a ProtocolError.
inline constexpr std::uint8_t kMaxFrameType =
    static_cast<std::uint8_t>(FrameType::kTrace);

const char* frame_type_name(FrameType type) noexcept;

struct Frame {
  FrameType type = FrameType::kBeat;
  std::uint8_t flags = 0;
  Bytes payload;
};

/// Serialize a frame into its wire envelope. Throws ConfigError if the
/// payload exceeds kMaxPayload.
[[nodiscard]] Bytes encode_frame(const Frame& frame);

/// Single-buffer encode for the batch hot path: begin_frame() hands out a
/// writer with the 12-byte header stubbed in, the payload is serialized
/// straight after it, and finish_frame() patches type/flags/length and
/// appends the CRC. Identical bytes to encode_frame(), minus the
/// payload-to-envelope copy a separate payload buffer would cost. Passing a
/// retired frame's Bytes as `reuse` recycles its storage (the contents are
/// discarded), so steady-state re-encoding never grows a buffer from zero.
[[nodiscard]] ByteWriter begin_frame(Bytes reuse = {});
[[nodiscard]] Bytes finish_frame(ByteWriter&& w, FrameType type,
                                 std::uint8_t flags);

/// Parse exactly one frame from `data` (the entire span must be the frame).
/// Throws TruncatedError / FormatError / ProtocolError as documented above.
[[nodiscard]] Frame decode_frame(ByteSpan data);

/// A validated envelope whose payload is still a view into the caller's
/// buffer — decode_frame() without the payload copy, for the batch hot
/// path. The view lives only as long as the bytes passed in.
struct FrameView {
  FrameType type = FrameType::kBeat;
  std::uint8_t flags = 0;
  ByteSpan payload;
};

/// Same checks and error taxonomy as decode_frame(); no payload copy.
[[nodiscard]] FrameView decode_frame_view(ByteSpan data);

/// Validate the 12-byte header of an incoming frame and return its declared
/// payload length, before the payload has been read — a stream reader calls
/// this to size its read without trusting the peer. Checks the magic and the
/// length cap only; everything else waits for decode_frame() once the full
/// envelope is in memory. Throws TruncatedError / FormatError.
[[nodiscard]] std::uint32_t decode_header(ByteSpan header);

// -- Payload schemas -------------------------------------------------------

struct HelloPayload {
  std::uint32_t schema_version = kSchemaVersion;
  /// The service fingerprint the client expects, 0 on first contact. A
  /// reconnecting client sends the fingerprint it learned from WELCOME, so
  /// resuming against a differently-configured server fails the handshake
  /// instead of corrupting the stream.
  std::uint64_t fingerprint = 0;
  std::string client;  // diagnostic label for server-side incidents

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static HelloPayload decode(ByteSpan data);
};

struct WelcomePayload {
  std::uint32_t schema_version = kSchemaVersion;
  std::uint64_t fingerprint = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static WelcomePayload decode(ByteSpan data);
};

struct AttachPayload {
  std::string tenant;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static AttachPayload decode(ByteSpan data);
};

struct AttachedPayload {
  std::int32_t session = -1;
  std::uint8_t admission = 0;  // serve::Admission as int
  /// True when this attach resumed existing server-side session state
  /// (takeover of a live session or reattach of a swept one).
  std::uint8_t resumed = 0;
  /// The server's produced-batch sequence number: what a client that lost
  /// its local state (a restarted process) must set its ack counter to.
  std::uint64_t resume_seq = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static AttachedPayload decode(ByteSpan data);
};

struct NextPayload {
  /// Count of batches the client has received so far == the sequence number
  /// it expects next. The server produces fresh when ack matches its own
  /// counter and re-sends its retained frame when the client is one behind
  /// (the in-flight reply was lost); anything else is a protocol error.
  std::uint64_t ack = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static NextPayload decode(ByteSpan data);
};

struct BatchPayload {
  std::uint64_t seq = 0;
  pipeline::Batch batch;

  [[nodiscard]] Bytes encode() const;
  /// Serialize in place — into a begin_frame() writer on the send path, so
  /// the tensors are copied once, directly into the wire envelope.
  void encode_into(ByteWriter& w) const;
  [[nodiscard]] static BatchPayload decode(ByteSpan data);
};

struct DetachedPayload {
  std::uint64_t batches = 0;   // batches produced for this tenant
  std::uint64_t samples = 0;   // samples across those batches
  std::uint64_t attaches = 0;  // ATTACHes accepted (1 + reconnects)
  std::uint64_t sweeps = 0;    // lease sweeps that suspended this tenant
  /// CRC folded over the tenant's server-side stream digest entries, 0 when
  /// verify_stream is off. A client that kept its own digest cross-checks
  /// exact-once delivery against this at detach time.
  std::uint32_t digest_crc = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static DetachedPayload decode(ByteSpan data);
};

struct ErrorPayload {
  std::uint8_t error_class = 0;  // sciprep::ErrorClass as int
  std::string message;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ErrorPayload decode(ByteSpan data);
};

// -- Flow extensions (sciprep::flow over the wire) -------------------------

/// Trace context prefixed to a NEXT payload when kFlagTraceContext is set:
/// the client's trace id plus the span id of the batch span this request
/// belongs to, so the server can open linked spans. The prefix carries its
/// own version byte — the envelope version stays put while the extension
/// evolves.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

inline constexpr std::uint8_t kTraceContextVersion = 1;
inline constexpr std::size_t kTraceContextBytes = 1 + 8 + 8;

void encode_trace_context(ByteWriter& w, const TraceContext& ctx);

/// Strip the extension off the front of `payload` (which is advanced past
/// it) and return the context. Throws FormatError when the prefix is
/// truncated, ProtocolError when its version is unknown.
[[nodiscard]] TraceContext decode_trace_context(ByteSpan& payload);

/// CLOCK_SYNC, both directions: the client stamps t_client_ns from its
/// tracer clock; the server echoes it and fills t_server_ns with its own.
/// The client's flow::ClockSyncEstimator turns a handful of these into a
/// cross-process clock offset.
struct ClockSyncPayload {
  std::uint64_t t_client_ns = 0;
  std::uint64_t t_server_ns = 0;  // 0 in the request

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ClockSyncPayload decode(ByteSpan data);
};

/// STATS request (client -> server) is an empty payload; the reply carries
/// the tenant's MetricsSnapshot *delta* since the previous STATS on this
/// session (full snapshot on the first pull) — the federation unit a fleet
/// view accumulates back into exact per-tenant totals.
struct StatsPayload {
  std::string scope;  // "tenant/<name>", matching the server's incident scope
  std::uint64_t t_server_ns = 0;
  obs::MetricsSnapshot delta;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StatsPayload decode(ByteSpan data);
};

/// TRACE request (client -> server): pull at most max_spans of the server's
/// span ring (0 = the whole ring).
struct TraceRequestPayload {
  std::uint32_t max_spans = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static TraceRequestPayload decode(ByteSpan data);
};

/// TRACE reply: the server's identity plus its span ring tail, timestamps on
/// the server's steady clock — flow::remap_remote_ns() plus the CLOCK_SYNC
/// offset puts them on the client timeline for a merged trace.
struct TracePayload {
  std::int64_t pid = 0;
  std::string process_name;
  std::uint64_t spans_dropped = 0;  // server ring wraps (trace incomplete)
  std::vector<obs::TraceSpan> spans;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static TracePayload decode(ByteSpan data);
};

/// Rebuild the typed exception an ErrorPayload describes and throw it: the
/// client surfaces server-side failures to its caller under the same error
/// taxonomy an in-process DataService would have used.
[[noreturn]] void throw_error_payload(const ErrorPayload& payload);

}  // namespace sciprep::wire
