#include "sciprep/wire/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/common/log.hpp"

namespace sciprep::wire {

WireClient::WireClient(WireClientConfig config) : config_(std::move(config)) {
  if (config_.socket_path.empty()) {
    throw ConfigError("wire: client socket_path must be non-empty");
  }
  if (config_.tenant.empty()) {
    throw ConfigError("wire: client tenant must be non-empty");
  }
  if (config_.max_reconnect_attempts < 1) {
    throw ConfigError("wire: max_reconnect_attempts must be >= 1");
  }
  ignore_sigpipe();
}

WireClient::~WireClient() = default;

void WireClient::backoff(int attempt) {
  const double seconds =
      std::min(config_.backoff_initial_seconds *
                   static_cast<double>(std::uint64_t{1} << std::min(attempt, 30)),
               config_.backoff_max_seconds);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void WireClient::ensure_attached() {
  if (attached_ && conn_.valid()) return;
  next_in_flight_ = false;  // a fresh connection has no outstanding request
  conn_ = connect_unix(config_.socket_path);
  set_io_deadline(conn_, config_.request_timeout_seconds);
  set_socket_buffers(conn_, 4 << 20);

  HelloPayload hello;
  hello.fingerprint = fingerprint_;  // 0 on first contact: accept any server
  hello.client = fmt("sciprep-wire/{}", kProtocolVersion);
  send_frame(conn_, Frame{FrameType::kHello, 0, hello.encode()});
  Frame reply;
  (void)recv_frame(conn_, reply, /*eof_ok=*/false);
  if (reply.type == FrameType::kError) {
    throw_error_payload(ErrorPayload::decode(reply.payload));
  }
  if (reply.type != FrameType::kWelcome) {
    throw ProtocolError(fmt("wire: expected WELCOME, got {}",
                            frame_type_name(reply.type)));
  }
  const WelcomePayload welcome = WelcomePayload::decode(reply.payload);
  if (welcome.schema_version != kSchemaVersion) {
    throw ProtocolError(
        fmt("wire: server batch schema version {} differs from ours ({})",
            welcome.schema_version, kSchemaVersion));
  }
  if (fingerprint_ != 0 && welcome.fingerprint != fingerprint_) {
    // A different service answered on the same path mid-stream; resuming
    // against it would silently change the data. Refuse loudly.
    throw ConfigError(
        fmt("wire: server config fingerprint changed mid-stream "
            "(0x{:x} -> 0x{:x})",
            fingerprint_, welcome.fingerprint));
  }
  fingerprint_ = welcome.fingerprint;

  AttachPayload attach;
  attach.tenant = config_.tenant;
  send_frame(conn_, Frame{FrameType::kAttach, 0, attach.encode()});
  (void)recv_frame(conn_, reply, /*eof_ok=*/false);
  if (reply.type == FrameType::kError) {
    throw_error_payload(ErrorPayload::decode(reply.payload));
  }
  if (reply.type != FrameType::kAttached) {
    throw ProtocolError(fmt("wire: expected ATTACHED, got {}",
                            frame_type_name(reply.type)));
  }
  const AttachedPayload attached = AttachedPayload::decode(reply.payload);
  session_ = attached.session;
  degraded_ = (reply.flags & kFlagDegraded) != 0;
  if (!first_attach_done_) {
    first_attach_done_ = true;
    if (attached.resumed != 0) {
      // This process replaces a dead consumer: adopt the server's cursor.
      // The retained batch (if any) is redelivered; the delivered stream
      // from here on is the exact suffix the dead consumer never got.
      resumed_ = true;
      stats_.delivered = attached.resume_seq;
    }
  }
  // On reconnects our own delivered count is authoritative — the server may
  // not know whether its retained frame reached us; the next ack tells it.
  attached_ = true;
  stats_.attaches += 1;
}

FrameView WireClient::roundtrip(const Frame& request) {
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_attached();
      if (next_in_flight_ && request.type == FrameType::kNext) {
        // The pipelined NEXT carried this very ack (delivered is only
        // bumped after a reply is consumed); its reply answers the caller.
        (void)recv_frame_envelope(conn_, reply_buf_, /*eof_ok=*/false);
        next_in_flight_ = false;
      } else {
        if (next_in_flight_) {
          // The caller wants BEAT/DETACH while a pipelined NEXT is
          // outstanding: drain and drop its reply (still validating the
          // envelope — torn/corrupt bytes must reconnect, not desync). The
          // server retained the frame, so a later NEXT's one-behind ack
          // redelivers the batch (and a dropped END is re-sent) — nothing
          // is lost.
          (void)recv_frame_envelope(conn_, reply_buf_, /*eof_ok=*/false);
          (void)decode_frame_view(reply_buf_);
          next_in_flight_ = false;
        }
        send_frame(conn_, request);
        (void)recv_frame_envelope(conn_, reply_buf_, /*eof_ok=*/false);
      }
      // Decoded in place: the payload view points into reply_buf_ and stays
      // valid until the next receive.
      const FrameView reply = decode_frame_view(reply_buf_);
      if (reply.type == FrameType::kError) {
        const ErrorPayload error = ErrorPayload::decode(reply.payload);
        if (static_cast<ErrorClass>(error.error_class) ==
            ErrorClass::kTransient) {
          // Server-side pressure (admission shed, reattach contention):
          // the connection is healthy, just back off and re-ask.
          stats_.retries += 1;
          if (attempt + 1 >= config_.max_reconnect_attempts) {
            throw_error_payload(error);
          }
          backoff(attempt);
          continue;
        }
        throw_error_payload(error);  // typed; not a transport failure
      }
      return reply;
    } catch (const TransientError& e) {
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(
          fmt("wire: transport stall ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      backoff(attempt);
    } catch (const TruncatedError& e) {
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(fmt("wire: torn frame ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      stats_.corrupt_frames += 1;
      backoff(attempt);
    } catch (const FormatError& e) {
      // A frame that failed its CRC or structure checks is wire damage, not
      // data damage — the server's retained copy is intact, so reconnect
      // and let the ack protocol redeliver it. (Server-reported kCorrupt
      // errors rethrow above and are NOT retried.)
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(
          fmt("wire: corrupt frame ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      stats_.corrupt_frames += 1;
      backoff(attempt);
    } catch (const IoError& e) {
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(
          fmt("wire: transport error ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      backoff(attempt);
    }
  }
}

void WireClient::attach() { ensure_attached(); }

bool WireClient::next(pipeline::Batch& batch) {
  if (ended_) return false;
  NextPayload next;
  next.ack = stats_.delivered;
  const FrameView reply =
      roundtrip(Frame{FrameType::kNext, 0, next.encode()});
  if (reply.type == FrameType::kEnd) {
    ended_ = true;
    return false;
  }
  if (reply.type != FrameType::kBatch) {
    throw ProtocolError(
        fmt("wire: expected BATCH or END, got {}", frame_type_name(reply.type)));
  }
  BatchPayload payload = BatchPayload::decode(reply.payload);
  if (payload.seq != stats_.delivered) {
    throw ProtocolError(fmt("wire: batch seq {} does not match ack {}",
                            payload.seq, stats_.delivered));
  }
  degraded_ = (reply.flags & kFlagDegraded) != 0;
  if (config_.record_digest) {
    for (std::size_t i = 0; i < payload.batch.samples.size(); ++i) {
      digest_.record(payload.batch.epoch, payload.batch.order_positions[i],
                     shard::sample_crc(payload.batch.samples[i]));
    }
  }
  stats_.delivered += 1;
  if (config_.pipeline_requests && attached_ && conn_.valid()) {
    // Ask for the following batch before the caller consumes this one: the
    // server overlaps produce + encode + send with the caller's work. A
    // send failure here is not an error yet — the connection is closed and
    // the next call's reconnect path re-sends the same ack.
    NextPayload ahead;
    ahead.ack = stats_.delivered;
    try {
      send_frame(conn_, Frame{FrameType::kNext, 0, ahead.encode()});
      next_in_flight_ = true;
    } catch (const IoError&) {
      conn_.close();
      attached_ = false;
    }
  }
  batch = std::move(payload.batch);
  return true;
}

void WireClient::beat() {
  const FrameView reply = roundtrip(Frame{FrameType::kBeat, 0, {}});
  if (reply.type != FrameType::kBeat) {
    throw ProtocolError(
        fmt("wire: expected BEAT, got {}", frame_type_name(reply.type)));
  }
}

DetachedPayload WireClient::detach() {
  const FrameView reply = roundtrip(Frame{FrameType::kDetach, 0, {}});
  if (reply.type != FrameType::kDetached) {
    throw ProtocolError(
        fmt("wire: expected DETACHED, got {}", frame_type_name(reply.type)));
  }
  const DetachedPayload stats = DetachedPayload::decode(reply.payload);
  attached_ = false;
  conn_.close();
  return stats;
}

}  // namespace sciprep::wire
