#include "sciprep/wire/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/flow/merge.hpp"
#include "sciprep/flow/snapshot.hpp"

namespace sciprep::wire {

namespace {

/// CLOCK_SYNC exchanges per attach. The estimator keeps the min-RTT sample,
/// so a few quick roundtrips on a fresh connection are enough for a bound
/// far below any span of interest.
constexpr int kClockSyncRounds = 8;

}  // namespace

WireClient::WireClient(WireClientConfig config) : config_(std::move(config)) {
  if (config_.socket_path.empty()) {
    throw ConfigError("wire: client socket_path must be non-empty");
  }
  if (config_.tenant.empty()) {
    throw ConfigError("wire: client tenant must be non-empty");
  }
  if (config_.max_reconnect_attempts < 1) {
    throw ConfigError("wire: max_reconnect_attempts must be >= 1");
  }
  ignore_sigpipe();
  if (config_.trace_propagate) {
    metrics_ = config_.metrics != nullptr ? config_.metrics
                                          : &obs::MetricsRegistry::global();
    tracer_ = config_.tracer != nullptr ? config_.tracer
                                        : &obs::Tracer::global();
    h_encode_ = &metrics_->histogram(flow::kClientEncodeSeconds);
    h_wait_ = &metrics_->histogram(flow::kClientWaitSeconds);
    h_decode_ = &metrics_->histogram(flow::kClientDecodeSeconds);
    // 48-bit trace id: unique enough per (tenant, pid, wall time) and small
    // enough to survive a double-precision JSON parse exactly.
    const auto wall = static_cast<std::uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    const std::uint64_t mixed =
        std::hash<std::string>{}(config_.tenant) ^
        (static_cast<std::uint64_t>(::getpid()) << 32) ^ wall;
    trace_id_ = (mixed & ((std::uint64_t{1} << 48) - 1)) | 1;
  }
}

WireClient::~WireClient() = default;

void WireClient::backoff(int attempt) {
  const double seconds =
      std::min(config_.backoff_initial_seconds *
                   static_cast<double>(std::uint64_t{1} << std::min(attempt, 30)),
               config_.backoff_max_seconds);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void WireClient::ensure_attached() {
  if (attached_ && conn_.valid()) return;
  next_in_flight_ = false;  // a fresh connection has no outstanding request
  conn_ = connect_unix(config_.socket_path);
  set_io_deadline(conn_, config_.request_timeout_seconds);
  set_socket_buffers(conn_, 4 << 20);

  HelloPayload hello;
  hello.fingerprint = fingerprint_;  // 0 on first contact: accept any server
  hello.client = fmt("sciprep-wire/{}", kProtocolVersion);
  send_frame(conn_, Frame{FrameType::kHello, 0, hello.encode()});
  Frame reply;
  (void)recv_frame(conn_, reply, /*eof_ok=*/false);
  if (reply.type == FrameType::kError) {
    throw_error_payload(ErrorPayload::decode(reply.payload));
  }
  if (reply.type != FrameType::kWelcome) {
    throw ProtocolError(fmt("wire: expected WELCOME, got {}",
                            frame_type_name(reply.type)));
  }
  const WelcomePayload welcome = WelcomePayload::decode(reply.payload);
  if (welcome.schema_version != kSchemaVersion) {
    throw ProtocolError(
        fmt("wire: server batch schema version {} differs from ours ({})",
            welcome.schema_version, kSchemaVersion));
  }
  if (fingerprint_ != 0 && welcome.fingerprint != fingerprint_) {
    // A different service answered on the same path mid-stream; resuming
    // against it would silently change the data. Refuse loudly.
    throw ConfigError(
        fmt("wire: server config fingerprint changed mid-stream "
            "(0x{:x} -> 0x{:x})",
            fingerprint_, welcome.fingerprint));
  }
  fingerprint_ = welcome.fingerprint;

  AttachPayload attach;
  attach.tenant = config_.tenant;
  send_frame(conn_, Frame{FrameType::kAttach, 0, attach.encode()});
  (void)recv_frame(conn_, reply, /*eof_ok=*/false);
  if (reply.type == FrameType::kError) {
    throw_error_payload(ErrorPayload::decode(reply.payload));
  }
  if (reply.type != FrameType::kAttached) {
    throw ProtocolError(fmt("wire: expected ATTACHED, got {}",
                            frame_type_name(reply.type)));
  }
  const AttachedPayload attached = AttachedPayload::decode(reply.payload);
  session_ = attached.session;
  degraded_ = (reply.flags & kFlagDegraded) != 0;
  if (!first_attach_done_) {
    first_attach_done_ = true;
    if (attached.resumed != 0) {
      // This process replaces a dead consumer: adopt the server's cursor.
      // The retained batch (if any) is redelivered; the delivered stream
      // from here on is the exact suffix the dead consumer never got.
      resumed_ = true;
      stats_.delivered = attached.resume_seq;
    }
  }
  // On reconnects our own delivered count is authoritative — the server may
  // not know whether its retained frame reached us; the next ack tells it.
  attached_ = true;
  stats_.attaches += 1;

  if (config_.trace_propagate) {
    // Clock-offset handshake: a few stop-and-wait exchanges on the fresh
    // connection. Re-running it on every reconnect keeps the estimate tied
    // to the lowest RTT ever observed.
    for (int i = 0; i < kClockSyncRounds; ++i) {
      ClockSyncPayload ping;
      ping.t_client_ns = tracer_->now_ns();
      send_frame(conn_, Frame{FrameType::kClockSync, 0, ping.encode()});
      Frame pong_frame;
      (void)recv_frame(conn_, pong_frame, /*eof_ok=*/false);
      const std::uint64_t t_recv = tracer_->now_ns();
      if (pong_frame.type == FrameType::kError) {
        throw_error_payload(ErrorPayload::decode(pong_frame.payload));
      }
      if (pong_frame.type != FrameType::kClockSync) {
        throw ProtocolError(fmt("wire: expected CLOCK_SYNC, got {}",
                                frame_type_name(pong_frame.type)));
      }
      const ClockSyncPayload pong = ClockSyncPayload::decode(pong_frame.payload);
      clock_estimator_.add_sample(
          flow::ClockSample{ping.t_client_ns, pong.t_server_ns, t_recv});
    }
    clock_offset_ = clock_estimator_.estimate();
  }
}

FrameView WireClient::roundtrip(const Frame& request) {
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_attached();
      if (next_in_flight_ && request.type == FrameType::kNext) {
        // The pipelined NEXT carried this very ack (delivered is only
        // bumped after a reply is consumed); its reply answers the caller.
        (void)recv_frame_envelope(conn_, reply_buf_, /*eof_ok=*/false);
        next_in_flight_ = false;
      } else {
        if (next_in_flight_) {
          // The caller wants BEAT/DETACH while a pipelined NEXT is
          // outstanding: drain and drop its reply (still validating the
          // envelope — torn/corrupt bytes must reconnect, not desync). The
          // server retained the frame, so a later NEXT's one-behind ack
          // redelivers the batch (and a dropped END is re-sent) — nothing
          // is lost.
          (void)recv_frame_envelope(conn_, reply_buf_, /*eof_ok=*/false);
          (void)decode_frame_view(reply_buf_);
          next_in_flight_ = false;
        }
        send_frame(conn_, request);
        (void)recv_frame_envelope(conn_, reply_buf_, /*eof_ok=*/false);
      }
      // Decoded in place: the payload view points into reply_buf_ and stays
      // valid until the next receive.
      const FrameView reply = decode_frame_view(reply_buf_);
      if (reply.type == FrameType::kError) {
        const ErrorPayload error = ErrorPayload::decode(reply.payload);
        if (static_cast<ErrorClass>(error.error_class) ==
            ErrorClass::kTransient) {
          // Server-side pressure (admission shed, reattach contention):
          // the connection is healthy, just back off and re-ask.
          stats_.retries += 1;
          if (attempt + 1 >= config_.max_reconnect_attempts) {
            throw_error_payload(error);
          }
          backoff(attempt);
          continue;
        }
        throw_error_payload(error);  // typed; not a transport failure
      }
      return reply;
    } catch (const TransientError& e) {
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(
          fmt("wire: transport stall ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      backoff(attempt);
    } catch (const TruncatedError& e) {
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(fmt("wire: torn frame ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      stats_.corrupt_frames += 1;
      backoff(attempt);
    } catch (const FormatError& e) {
      // A frame that failed its CRC or structure checks is wire damage, not
      // data damage — the server's retained copy is intact, so reconnect
      // and let the ack protocol redeliver it. (Server-reported kCorrupt
      // errors rethrow above and are NOT retried.)
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(
          fmt("wire: corrupt frame ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      stats_.corrupt_frames += 1;
      backoff(attempt);
    } catch (const IoError& e) {
      if (attempt + 1 >= config_.max_reconnect_attempts) throw;
      log_warn(
          fmt("wire: transport error ({}); reconnecting", e.what()));
      conn_.close();
      attached_ = false;
      stats_.reconnects += 1;
      backoff(attempt);
    }
  }
}

void WireClient::attach() { ensure_attached(); }

Frame WireClient::make_next(std::uint64_t ack) const {
  Frame frame;
  frame.type = FrameType::kNext;
  if (config_.trace_propagate) {
    frame.flags = kFlagTraceContext;
    ByteWriter w;
    // Span id ack+1: the id of the client batch span this request belongs
    // to (0 is reserved for "no context").
    encode_trace_context(w, TraceContext{trace_id_, ack + 1});
    w.put<std::uint64_t>(ack);
    frame.payload = std::move(w).take();
  } else {
    NextPayload next;
    next.ack = ack;
    frame.payload = next.encode();
  }
  return frame;
}

bool WireClient::next(pipeline::Batch& batch) {
  if (ended_) return false;
  const bool flow_on = config_.trace_propagate;
  const std::uint64_t span_id = stats_.delivered + 1;
  // Per-batch decomposition, all four stamps from the tracer clock so the
  // spans and the histograms describe the exact same intervals:
  //   issue -> encoded     request serialization
  //   encoded -> replied   kernel/socket + server queue/produce/encode/send
  //   replied -> decoded   response deserialization
  const std::uint64_t t_issue = flow_on ? tracer_->now_ns() : 0;
  const Frame request = make_next(stats_.delivered);
  const std::uint64_t t_encoded = flow_on ? tracer_->now_ns() : 0;
  const FrameView reply = roundtrip(request);
  const std::uint64_t t_replied = flow_on ? tracer_->now_ns() : 0;
  if (reply.type == FrameType::kEnd) {
    ended_ = true;
    return false;
  }
  if (reply.type != FrameType::kBatch) {
    throw ProtocolError(
        fmt("wire: expected BATCH or END, got {}", frame_type_name(reply.type)));
  }
  BatchPayload payload = BatchPayload::decode(reply.payload);
  const std::uint64_t t_decoded = flow_on ? tracer_->now_ns() : 0;
  if (payload.seq != stats_.delivered) {
    throw ProtocolError(fmt("wire: batch seq {} does not match ack {}",
                            payload.seq, stats_.delivered));
  }
  degraded_ = (reply.flags & kFlagDegraded) != 0;
  if (config_.record_digest) {
    for (std::size_t i = 0; i < payload.batch.samples.size(); ++i) {
      digest_.record(payload.batch.epoch, payload.batch.order_positions[i],
                     shard::sample_crc(payload.batch.samples[i]));
    }
  }
  if (flow_on) {
    const std::string link = fmt("{{\"trace_id\":{},\"parent_span_id\":{}}}",
                                 trace_id_, span_id);
    tracer_->record(flow::kClientEncodeSpan, "flow", t_issue, t_encoded, link);
    tracer_->record(flow::kClientWaitSpan, "flow", t_encoded, t_replied, link);
    tracer_->record(flow::kClientDecodeSpan, "flow", t_replied, t_decoded,
                    link);
    tracer_->record(
        flow::kClientBatchSpan, "flow", t_issue, t_decoded,
        fmt("{{\"trace_id\":{},\"span_id\":{},\"seq\":{}}}", trace_id_,
            span_id, payload.seq));
    h_encode_->record(static_cast<double>(t_encoded - t_issue) / 1e9);
    h_wait_->record(static_cast<double>(t_replied - t_encoded) / 1e9);
    h_decode_->record(static_cast<double>(t_decoded - t_replied) / 1e9);
  }
  stats_.delivered += 1;
  if (config_.pipeline_requests && attached_ && conn_.valid()) {
    // Ask for the following batch before the caller consumes this one: the
    // server overlaps produce + encode + send with the caller's work. A
    // send failure here is not an error yet — the connection is closed and
    // the next call's reconnect path re-sends the same ack.
    try {
      send_frame(conn_, make_next(stats_.delivered));
      next_in_flight_ = true;
    } catch (const IoError&) {
      conn_.close();
      attached_ = false;
    }
  }
  batch = std::move(payload.batch);
  return true;
}

void WireClient::beat() {
  const FrameView reply = roundtrip(Frame{FrameType::kBeat, 0, {}});
  if (reply.type != FrameType::kBeat) {
    throw ProtocolError(
        fmt("wire: expected BEAT, got {}", frame_type_name(reply.type)));
  }
}

StatsPayload WireClient::pull_server_stats() {
  const FrameView reply = roundtrip(Frame{FrameType::kStats, 0, {}});
  if (reply.type != FrameType::kStats) {
    throw ProtocolError(
        fmt("wire: expected STATS, got {}", frame_type_name(reply.type)));
  }
  StatsPayload payload = StatsPayload::decode(reply.payload);
  flow::snapshot_accumulate(server_totals_, payload.delta);
  server_scope_ = payload.scope;
  stats_pulls_ += 1;
  return payload;
}

TracePayload WireClient::pull_server_trace(std::uint32_t max_spans) {
  TraceRequestPayload request;
  request.max_spans = max_spans;
  const FrameView reply =
      roundtrip(Frame{FrameType::kTrace, 0, request.encode()});
  if (reply.type != FrameType::kTrace) {
    throw ProtocolError(
        fmt("wire: expected TRACE, got {}", frame_type_name(reply.type)));
  }
  return TracePayload::decode(reply.payload);
}

DetachedPayload WireClient::detach() {
  const FrameView reply = roundtrip(Frame{FrameType::kDetach, 0, {}});
  if (reply.type != FrameType::kDetached) {
    throw ProtocolError(
        fmt("wire: expected DETACHED, got {}", frame_type_name(reply.type)));
  }
  const DetachedPayload stats = DetachedPayload::decode(reply.payload);
  attached_ = false;
  conn_.close();
  return stats;
}

}  // namespace sciprep::wire
