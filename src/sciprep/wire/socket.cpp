#include "sciprep/wire/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>

#include "sciprep/common/error.hpp"
#include "sciprep/common/sysio.hpp"

namespace sciprep::wire {

namespace {

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw ConfigError(fmt(
        "wire: socket path '{}' must be 1..{} bytes for AF_UNIX", path,
        sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

int make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw IoError(fmt("wire: socket() failed: {}", std::strerror(errno)));
  }
  return fd;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_address(path);
  // A stale socket file from a crashed predecessor makes bind() fail with
  // EADDRINUSE even though nobody is listening; unlink first. A *live*
  // predecessor also loses its file this way — single-writer ownership of
  // the path is the caller's contract, as for any pidfile.
  ::unlink(path.c_str());
  Socket s(make_socket());
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw IoError(
        fmt("wire: bind('{}') failed: {}", path, std::strerror(errno)));
  }
  if (::listen(s.fd(), backlog) != 0) {
    throw IoError(
        fmt("wire: listen('{}') failed: {}", path, std::strerror(errno)));
  }
  return s;
}

Socket accept_unix(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    throw IoError(fmt("wire: accept() failed: {}", std::strerror(errno)));
  }
}

Socket connect_unix(const std::string& path) {
  const sockaddr_un addr = make_address(path);
  Socket s(make_socket());
  for (;;) {
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return s;
    }
    if (errno == EINTR) continue;
    // The server not being up (yet, or anymore) is the reconnect loop's
    // bread and butter; anything else is a real host defect.
    if (errno == ENOENT || errno == ECONNREFUSED || errno == EAGAIN) {
      throw TransientError(fmt("wire: connect('{}') failed: {}", path,
                               std::strerror(errno)));
    }
    throw IoError(
        fmt("wire: connect('{}') failed: {}", path, std::strerror(errno)));
  }
}

void set_io_deadline(const Socket& socket, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
  }
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
          0 ||
      ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) !=
          0) {
    throw IoError(
        fmt("wire: setsockopt(SO_*TIMEO) failed: {}", std::strerror(errno)));
  }
}

void set_socket_buffers(const Socket& socket, int bytes) noexcept {
  // Best effort by design: the kernel clamps to net.core.{w,r}mem_max and a
  // clamped (even default-sized) buffer is merely slower, never incorrect.
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

void ignore_sigpipe() noexcept {
  // Once per process is enough, but calling again is harmless.
  std::signal(SIGPIPE, SIG_IGN);
}

void send_frame_bytes(const Socket& socket, ByteSpan bytes) {
  sysio::write_full(socket.fd(), bytes.data(), bytes.size());
}

bool recv_frame_envelope(const Socket& socket, Bytes& buf, bool eof_ok) {
  buf.resize(kHeaderSize);
  const std::size_t got = sysio::read_full(socket.fd(), buf.data(), buf.size());
  if (got == 0 && eof_ok) return false;
  if (got < kHeaderSize) {
    throw TruncatedError(
        fmt("wire: connection closed inside a frame header ({} of {} bytes)",
            got, kHeaderSize),
        got);
  }
  // The declared length is bounds-checked before a single payload byte is
  // read or a buffer sized from it — a hostile header cannot drive an
  // unbounded allocation.
  const std::uint32_t length = decode_header(buf);
  const std::size_t rest = length + kTrailerSize;
  buf.resize(kHeaderSize + rest);
  const std::size_t more =
      sysio::read_full(socket.fd(), buf.data() + kHeaderSize, rest);
  if (more < rest) {
    throw TruncatedError(
        fmt("wire: connection closed inside a frame body ({} of {} bytes)",
            kHeaderSize + more, buf.size()),
        kHeaderSize + more);
  }
  return true;
}

bool recv_frame(const Socket& socket, Frame& frame, bool eof_ok) {
  Bytes buf;
  if (!recv_frame_envelope(socket, buf, eof_ok)) return false;
  frame = decode_frame(buf);
  return true;
}

}  // namespace sciprep::wire
