// Multi-process trace splicing (the `flowmerge` step) and flow validation.
//
// Each process in a served run exports its span ring on its own steady
// timeline; merge_chrome_json() shifts every foreign timeline onto a common
// one (the shift comes from the clock-offset handshake, see clock.hpp) and
// emits a single Chrome/Perfetto document with one named, pid-tagged track
// per process. Span linkage is carried in span args: a client batch span
// publishes {"trace_id","span_id"} and every server-side span for that
// request carries {"trace_id","parent_span_id"} — validate_flow() walks
// those links to prove the end-to-end decomposition actually materialized
// and cross-checks span time against the attribution histograms recorded at
// the same instrumentation sites.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"

namespace sciprep::flow {

// Span names recorded by the wire layer when trace propagation is on; the
// validator and smoke tooling key on these.
inline constexpr const char* kClientBatchSpan = "flow.batch";
inline constexpr const char* kClientEncodeSpan = "flow.client.encode";
inline constexpr const char* kClientWaitSpan = "flow.client.wait";
inline constexpr const char* kClientDecodeSpan = "flow.client.decode";
inline constexpr const char* kServerNextSpan = "flow.server.next";
inline constexpr const char* kServerQueueWaitSpan = "flow.server.queue_wait";
inline constexpr const char* kServerEncodeSpan = "flow.server.encode";
inline constexpr const char* kServerSendSpan = "flow.server.send";
/// Overlapped read-ahead produce+encode of the *following* batch, parented
/// to the request that triggered it. Trace enrichment only — it is client-
/// invisible time, so it carries no attribution histogram and the validator
/// ignores it.
inline constexpr const char* kServerReadaheadSpan = "flow.server.readahead";

// Attribution histograms recorded from the same measured intervals as the
// spans above (client registry / server-side tenant registry respectively).
inline constexpr const char* kClientEncodeSeconds = "flow.client.encode_seconds";
inline constexpr const char* kClientWaitSeconds = "flow.client.wait_seconds";
inline constexpr const char* kClientDecodeSeconds = "flow.client.decode_seconds";
inline constexpr const char* kServerQueueWaitSeconds =
    "flow.server.queue_wait_seconds";
inline constexpr const char* kServerEncodeSeconds = "flow.server.encode_seconds";
inline constexpr const char* kServerSendSeconds = "flow.server.send_seconds";

/// One process's contribution to a merged trace.
struct ProcessTrace {
  std::string process_name;
  std::int64_t pid = 0;
  /// Added to every span timestamp to land it on the merged timeline
  /// (0 for the reference process, -offset_ns for a remote peer whose
  /// ClockOffset was estimated against the reference clock). Negative
  /// results clamp to zero.
  std::int64_t shift_ns = 0;
  std::vector<obs::TraceSpan> spans;
  /// Optional tid -> role-name labels (emitted as thread_name metadata).
  std::map<std::uint32_t, std::string> thread_names;
};

/// One Chrome trace_event document: per-process process_name metadata with
/// real pids, thread_name metadata, and every span as a "ph":"X" event on
/// the common timeline.
[[nodiscard]] std::string merge_chrome_json(
    const std::vector<ProcessTrace>& processes);

struct FlowValidation {
  std::uint64_t client_batches = 0;  // client flow.batch spans found
  std::uint64_t linked = 0;          // ... with a matching server next span
  std::uint64_t decomposed = 0;      // ... with the full child decomposition
  double decomposed_fraction = 0;    // decomposed / client_batches
  double client_span_seconds = 0;    // Σ client encode+wait+decode span time
  double client_hist_seconds = 0;    // Σ matching client histogram sums
  double server_span_seconds = 0;    // Σ server queue_wait+encode+send spans
  double server_hist_seconds = 0;    // Σ matching server histogram sums
  /// Span sums agree with histogram sums on both sides (skipped — reported
  /// true — when a ring wrapped, since dropped spans make the sums diverge
  /// by construction).
  bool histograms_consistent = false;

  [[nodiscard]] std::string to_json() const;
};

/// Walk span linkage and cross-check histograms. `*_spans_dropped` are the
/// tracers' dropped_total() values; non-zero disables the strict sum check.
[[nodiscard]] FlowValidation validate_flow(
    const std::vector<obs::TraceSpan>& client_spans,
    const std::vector<obs::TraceSpan>& server_spans,
    const obs::MetricsSnapshot& client_metrics,
    const obs::MetricsSnapshot& server_metrics,
    std::uint64_t client_spans_dropped = 0,
    std::uint64_t server_spans_dropped = 0);

}  // namespace sciprep::flow
