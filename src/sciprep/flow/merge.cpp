#include "sciprep/flow/merge.hpp"

#include <cmath>
#include <set>
#include <utility>

#include "sciprep/common/format.hpp"
#include "sciprep/obs/json.hpp"
#include "sciprep/perfscope/jsondom.hpp"

namespace sciprep::flow {

namespace {

std::uint64_t shifted(std::uint64_t t_ns, std::int64_t shift_ns) {
  const std::int64_t t = static_cast<std::int64_t>(t_ns) + shift_ns;
  return t < 0 ? 0 : static_cast<std::uint64_t>(t);
}

/// (trace_id, span_id-or-parent) key parsed from a span's args; id 0 means
/// the span carries no usable linkage.
struct LinkKey {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool usable() const { return trace_id != 0; }
  bool operator<(const LinkKey& o) const {
    return trace_id != o.trace_id ? trace_id < o.trace_id
                                  : span_id < o.span_id;
  }
};

LinkKey parse_link(const obs::TraceSpan& span, const char* id_field) {
  LinkKey key;
  if (span.args_json.empty()) return key;
  perfscope::JsonValue doc;
  if (!perfscope::json_parse(span.args_json, doc)) return key;
  key.trace_id = static_cast<std::uint64_t>(doc.number_or("trace_id", 0));
  key.span_id = static_cast<std::uint64_t>(doc.number_or(id_field, 0));
  return key;
}

double span_seconds(const obs::TraceSpan& span) {
  return static_cast<double>(span.t_end_ns - span.t_start_ns) / 1e9;
}

double hist_sum(const obs::MetricsSnapshot& snap, const char* name) {
  const auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? 0.0 : it->second.sum;
}

bool sums_agree(double span_s, double hist_s) {
  const double scale = std::max({std::fabs(span_s), std::fabs(hist_s), 1e-9});
  // Spans store integer nanoseconds while histograms accumulate doubles from
  // the same measured intervals; allow rounding plus a little slack.
  return std::fabs(span_s - hist_s) / scale < 1e-3;
}

}  // namespace

std::string merge_chrome_json(const std::vector<ProcessTrace>& processes) {
  std::string out;
  std::size_t spans = 0;
  for (const ProcessTrace& p : processes) spans += p.spans.size();
  out.reserve(spans * 112 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ProcessTrace& p : processes) {
    if (!first) out += ',';
    first = false;
    out += fmt(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},"
        "\"args\":{{\"name\":\"{}\"}}}}",
        p.pid, obs::json_escape(p.process_name));
    for (const auto& [tid, name] : p.thread_names) {
      out += fmt(
          ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},"
          "\"args\":{{\"name\":\"{}\"}}}}",
          p.pid, tid, obs::json_escape(name));
    }
    for (const obs::TraceSpan& span : p.spans) {
      const std::uint64_t t0 = shifted(span.t_start_ns, p.shift_ns);
      const std::uint64_t t1 = shifted(span.t_end_ns, p.shift_ns);
      out += fmt(
          ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},"
          "\"tid\":{},\"ts\":{},\"dur\":{}",
          obs::json_escape(span.name), obs::json_escape(span.category), p.pid,
          span.thread, obs::json_number(static_cast<double>(t0) / 1e3),
          obs::json_number(static_cast<double>(t1 - t0) / 1e3));
      if (!span.args_json.empty()) {
        out += ",\"args\":";
        out += span.args_json;
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

std::string FlowValidation::to_json() const {
  return fmt(
      "{{\"schema\":\"sciprep.flow.validation.v1\",\"client_batches\":{},"
      "\"linked\":{},\"decomposed\":{},\"decomposed_fraction\":{},"
      "\"client_span_seconds\":{},\"client_hist_seconds\":{},"
      "\"server_span_seconds\":{},\"server_hist_seconds\":{},"
      "\"histograms_consistent\":{}}}",
      client_batches, linked, decomposed,
      obs::json_number(decomposed_fraction),
      obs::json_number(client_span_seconds),
      obs::json_number(client_hist_seconds),
      obs::json_number(server_span_seconds),
      obs::json_number(server_hist_seconds),
      histograms_consistent ? "true" : "false");
}

FlowValidation validate_flow(const std::vector<obs::TraceSpan>& client_spans,
                             const std::vector<obs::TraceSpan>& server_spans,
                             const obs::MetricsSnapshot& client_metrics,
                             const obs::MetricsSnapshot& server_metrics,
                             std::uint64_t client_spans_dropped,
                             std::uint64_t server_spans_dropped) {
  FlowValidation v;

  // Trace ids this client owns. The server's span ring is shared by every
  // tenant it serves, while the metrics snapshot it ships is per-tenant —
  // foreign tenants' spans must not pollute the attribution sums.
  std::set<std::uint64_t> client_traces;
  for (const obs::TraceSpan& span : client_spans) {
    if (span.name != kClientBatchSpan) continue;
    const LinkKey key = parse_link(span, "span_id");
    if (key.usable()) client_traces.insert(key.trace_id);
  }

  // Index server-side spans by (trace_id, parent_span_id) -> names present.
  std::map<LinkKey, std::set<std::string>> server_children;
  for (const obs::TraceSpan& span : server_spans) {
    const LinkKey key = parse_link(span, "parent_span_id");
    if (!key.usable() || client_traces.count(key.trace_id) == 0) continue;
    server_children[key].insert(span.name);
    if (span.name == kServerQueueWaitSpan || span.name == kServerEncodeSpan ||
        span.name == kServerSendSpan) {
      v.server_span_seconds += span_seconds(span);
    }
  }
  // Client child spans by the batch span they decompose.
  std::map<LinkKey, std::set<std::string>> client_children;
  for (const obs::TraceSpan& span : client_spans) {
    if (span.name == kClientEncodeSpan || span.name == kClientWaitSpan ||
        span.name == kClientDecodeSpan) {
      v.client_span_seconds += span_seconds(span);
      const LinkKey key = parse_link(span, "parent_span_id");
      if (key.usable()) client_children[key].insert(span.name);
    }
  }

  for (const obs::TraceSpan& span : client_spans) {
    if (span.name != kClientBatchSpan) continue;
    const LinkKey key = parse_link(span, "span_id");
    if (!key.usable()) continue;
    ++v.client_batches;
    const auto sit = server_children.find(key);
    const bool has_server_next =
        sit != server_children.end() && sit->second.count(kServerNextSpan) > 0;
    if (!has_server_next) continue;
    ++v.linked;
    const auto cit = client_children.find(key);
    const bool client_complete = cit != client_children.end() &&
                                 cit->second.count(kClientWaitSpan) > 0 &&
                                 cit->second.count(kClientDecodeSpan) > 0;
    const bool server_complete = sit->second.count(kServerQueueWaitSpan) > 0;
    if (client_complete && server_complete) ++v.decomposed;
  }
  v.decomposed_fraction =
      v.client_batches == 0
          ? 0.0
          : static_cast<double>(v.decomposed) /
                static_cast<double>(v.client_batches);

  v.client_hist_seconds = hist_sum(client_metrics, kClientEncodeSeconds) +
                          hist_sum(client_metrics, kClientWaitSeconds) +
                          hist_sum(client_metrics, kClientDecodeSeconds);
  v.server_hist_seconds = hist_sum(server_metrics, kServerQueueWaitSeconds) +
                          hist_sum(server_metrics, kServerEncodeSeconds) +
                          hist_sum(server_metrics, kServerSendSeconds);
  if (client_spans_dropped > 0 || server_spans_dropped > 0) {
    // A wrapped ring lost spans; the sums cannot agree and that is not an
    // instrumentation defect.
    v.histograms_consistent = true;
  } else {
    v.histograms_consistent =
        sums_agree(v.client_span_seconds, v.client_hist_seconds) &&
        sums_agree(v.server_span_seconds, v.server_hist_seconds);
  }
  return v;
}

}  // namespace sciprep::flow
