#include "sciprep/flow/clock.hpp"

namespace sciprep::flow {

void ClockSyncEstimator::add_sample(const ClockSample& sample) {
  ++seen_;
  if (sample.t_recv_ns < sample.t_send_ns) {
    return;  // non-causal exchange; nothing trustworthy to extract
  }
  const std::uint64_t rtt = sample.t_recv_ns - sample.t_send_ns;
  if (best_.valid && rtt >= best_.rtt_ns) {
    best_.samples = seen_;
    return;
  }
  // Midpoint of the local send/recv window, computed without overflow.
  const std::uint64_t mid =
      sample.t_send_ns + (sample.t_recv_ns - sample.t_send_ns) / 2;
  best_.offset_ns = static_cast<std::int64_t>(sample.t_remote_ns) -
                    static_cast<std::int64_t>(mid);
  best_.rtt_ns = rtt;
  best_.error_bound_ns = rtt / 2;
  best_.samples = seen_;
  best_.valid = true;
}

std::uint64_t remap_remote_ns(std::uint64_t remote_ns,
                              const ClockOffset& offset) noexcept {
  const std::int64_t local =
      static_cast<std::int64_t>(remote_ns) - offset.offset_ns;
  return local < 0 ? 0 : static_cast<std::uint64_t>(local);
}

}  // namespace sciprep::flow
