// Cross-process clock alignment for sciprep::flow.
//
// Every process in a served run keeps its own steady-clock timeline (the
// tracer's now_ns() is relative to tracer construction), so client and
// server span timestamps are mutually meaningless until the offset between
// the two timelines is known. The estimator here implements the classic
// NTP-style exchange: the client stamps t_send, the server echoes its own
// steady clock t_remote, the client stamps t_recv, and under a
// symmetric-delay assumption the remote clock read happened at the midpoint
//
//   offset = t_remote - (t_send + t_recv) / 2
//
// so `local = remote - offset`. The assumption can be wrong by at most the
// one-way delay, which bounds the error by RTT/2 — and since network and
// scheduling noise only ever *add* delay, the sample with the smallest RTT
// carries the tightest bound. The estimator therefore keeps the minimum-RTT
// sample rather than averaging: one quiet exchange beats ten noisy ones.
#pragma once

#include <cstdint>
#include <vector>

namespace sciprep::flow {

/// One request/echo/response exchange, all fields in nanoseconds. t_send and
/// t_recv are on the local steady timeline; t_remote is the remote peer's
/// steady-clock read taken somewhere between the two.
struct ClockSample {
  std::uint64_t t_send_ns = 0;
  std::uint64_t t_remote_ns = 0;
  std::uint64_t t_recv_ns = 0;
};

/// The winning estimate. `offset_ns` maps remote timestamps onto the local
/// timeline as `local = remote - offset`; `error_bound_ns` is the worst-case
/// error under arbitrary delay asymmetry (half the round trip of the sample
/// that produced the estimate).
struct ClockOffset {
  std::int64_t offset_ns = 0;
  std::uint64_t rtt_ns = 0;
  std::uint64_t error_bound_ns = 0;
  std::uint32_t samples = 0;
  bool valid = false;
};

class ClockSyncEstimator {
 public:
  /// Feed one exchange. Samples with t_recv < t_send (a clock bug or a
  /// hostile peer echoing garbage) are counted but never selected.
  void add_sample(const ClockSample& sample);

  /// Minimum-RTT midpoint estimate; `valid` is false until at least one
  /// usable sample arrived.
  [[nodiscard]] ClockOffset estimate() const noexcept { return best_; }

  [[nodiscard]] std::uint32_t samples_seen() const noexcept { return seen_; }

 private:
  ClockOffset best_;
  std::uint32_t seen_ = 0;
};

/// Map a remote steady-clock timestamp onto the local timeline using
/// `offset`. Saturates at zero instead of wrapping when the remote span
/// predates the local epoch (a server started long before the client). A
/// fixed shift preserves ordering, so remapped timestamps of a monotone
/// remote sequence stay monotone.
[[nodiscard]] std::uint64_t remap_remote_ns(std::uint64_t remote_ns,
                                            const ClockOffset& offset) noexcept;

}  // namespace sciprep::flow
