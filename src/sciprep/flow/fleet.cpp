#include "sciprep/flow/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "sciprep/common/format.hpp"
#include "sciprep/flow/snapshot.hpp"
#include "sciprep/obs/json.hpp"
#include "sciprep/perfscope/jsondom.hpp"

namespace sciprep::flow {

namespace {

void append_snapshot_fields(std::string& line,
                            const obs::MetricsSnapshot& totals,
                            const obs::MetricsSnapshot& delta) {
  line += "\"counters\":{";
  bool first = true;
  for (const auto& [name, total] : totals.counters) {
    const auto it = delta.counters.find(name);
    const std::uint64_t d = it == delta.counters.end() ? 0 : it->second;
    if (!first) line += ',';
    first = false;
    line += fmt("\"{}\":{{\"total\":{},\"delta\":{}}}", obs::json_escape(name),
                total, d);
  }
  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : totals.gauges) {
    if (!first) line += ',';
    first = false;
    line += fmt("\"{}\":{{\"value\":{},\"high_watermark\":{}}}",
                obs::json_escape(name), g.value, g.high_watermark);
  }
  line += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : totals.histograms) {
    const auto it = delta.histograms.find(name);
    const std::uint64_t dc = it == delta.histograms.end() ? 0 : it->second.count;
    const double ds = it == delta.histograms.end() ? 0.0 : it->second.sum;
    if (!first) line += ',';
    first = false;
    line += fmt(
        "\"{}\":{{\"count\":{},\"sum\":{},\"count_delta\":{},"
        "\"sum_delta\":{}}}",
        obs::json_escape(name), h.count, obs::json_number(h.sum), dc,
        obs::json_number(ds));
  }
  line += '}';
}

struct ParsedLine {
  double t = 0;
  std::string scope;
  obs::MetricsSnapshot totals;
  obs::MetricsSnapshot delta;
};

/// Accepts a fleet.v1 line or an insight exporter tick; both carry the same
/// counters/gauges/histograms member shapes.
bool parse_line(std::string_view text, const std::string& scope_hint,
                ParsedLine& out) {
  perfscope::JsonValue doc;
  if (!perfscope::json_parse(text, doc) || !doc.is_object()) return false;
  const bool is_fleet = doc.string_or("schema", "") == kFleetSchema;
  if (!is_fleet && !doc.has("counters") && !doc.has("histograms")) {
    return false;  // some other JSONL stream (bench records, incidents, ...)
  }
  out.t = doc.number_or("t", 0);
  out.scope = doc.string_or("scope", scope_hint);
  if (out.scope.empty()) out.scope = "default";
  for (const auto& [name, v] : doc.at("counters").as_object()) {
    out.totals.counters[name] =
        static_cast<std::uint64_t>(v.number_or("total", 0));
    out.delta.counters[name] =
        static_cast<std::uint64_t>(v.number_or("delta", 0));
  }
  for (const auto& [name, v] : doc.at("gauges").as_object()) {
    obs::MetricsSnapshot::GaugeValue g;
    g.value = static_cast<std::int64_t>(v.number_or("value", 0));
    g.high_watermark =
        static_cast<std::int64_t>(v.number_or("high_watermark", 0));
    out.totals.gauges[name] = g;
    out.delta.gauges[name] = g;
  }
  for (const auto& [name, v] : doc.at("histograms").as_object()) {
    obs::MetricsSnapshot::HistogramSummary total;
    total.count = static_cast<std::uint64_t>(v.number_or("count", 0));
    total.sum = v.number_or("sum", 0);
    out.totals.histograms[name] = total;
    obs::MetricsSnapshot::HistogramSummary d;
    d.count = static_cast<std::uint64_t>(v.number_or("count_delta", 0));
    d.sum = v.number_or("sum_delta", 0);
    out.delta.histograms[name] = d;
  }
  return true;
}

bool totals_match(const obs::MetricsSnapshot& accumulated,
                  const obs::MetricsSnapshot& declared) {
  if (accumulated.counters != declared.counters) return false;
  if (accumulated.histograms.size() != declared.histograms.size()) return false;
  for (const auto& [name, h] : declared.histograms) {
    const auto it = accumulated.histograms.find(name);
    if (it == accumulated.histograms.end()) return false;
    if (it->second.count != h.count) return false;
    const double scale = std::max({std::fabs(h.sum), 1.0});
    if (std::fabs(it->second.sum - h.sum) / scale > 1e-9) return false;
  }
  return true;
}

std::string prom_name(const std::string& name) {
  std::string out = "sciprep_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string fleet_line(const std::string& scope, std::uint64_t seq,
                       double t_seconds, const obs::MetricsSnapshot& totals,
                       const obs::MetricsSnapshot& delta) {
  std::string line;
  line.reserve(1024);
  line += fmt("{{\"schema\":\"{}\",\"scope\":\"{}\",\"seq\":{},\"t\":{},",
              kFleetSchema, obs::json_escape(scope), seq,
              obs::json_number(t_seconds));
  append_snapshot_fields(line, totals, delta);
  line += '}';
  return line;
}

std::string FleetMergeResult::summary_json() const {
  std::string out;
  out += fmt(
      "{{\"schema\":\"sciprep.flow.fleetview.v1\",\"lines_parsed\":{},"
      "\"lines_skipped\":{},\"reconciled\":{},\"scopes\":{{",
      lines_parsed, lines_skipped, reconciled ? "true" : "false");
  bool first_scope = true;
  for (const auto& [name, scope] : scopes) {
    if (!first_scope) out += ',';
    first_scope = false;
    out += fmt("\"{}\":{{\"lines\":{},\"reconciled\":{},\"counters\":{{",
               obs::json_escape(name), scope.lines,
               scope.reconciled ? "true" : "false");
    bool first = true;
    for (const auto& [cname, value] : scope.totals.counters) {
      if (!first) out += ',';
      first = false;
      out += fmt("\"{}\":{}", obs::json_escape(cname), value);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

FleetMergeResult merge_fleet(const std::vector<FleetInput>& inputs) {
  FleetMergeResult result;
  std::vector<ParsedLine> lines;
  for (const FleetInput& input : inputs) {
    std::size_t pos = 0;
    while (pos < input.text.size()) {
      std::size_t end = input.text.find('\n', pos);
      if (end == std::string::npos) end = input.text.size();
      const std::string_view line(input.text.data() + pos, end - pos);
      pos = end + 1;
      if (line.empty()) continue;
      ParsedLine parsed;
      if (!parse_line(line, input.scope_hint, parsed)) {
        ++result.lines_skipped;
        continue;
      }
      ++result.lines_parsed;
      lines.push_back(std::move(parsed));
    }
  }

  // Global series: time-ordered, stable within equal timestamps so each
  // scope's own lines keep their original order.
  std::stable_sort(lines.begin(), lines.end(),
                   [](const ParsedLine& a, const ParsedLine& b) {
                     return a.t < b.t;
                   });

  std::uint64_t seq = 0;
  for (const ParsedLine& line : lines) {
    FleetScope& scope = result.scopes[line.scope];
    ++scope.lines;
    snapshot_accumulate(scope.totals, line.delta);
    scope.declared = line.totals;
    result.merged_jsonl +=
        fleet_line(line.scope, seq++, line.t, line.totals, line.delta);
    result.merged_jsonl += '\n';
  }

  result.reconciled = !result.scopes.empty();
  for (auto& [name, scope] : result.scopes) {
    scope.reconciled = totals_match(scope.totals, scope.declared);
    result.reconciled = result.reconciled && scope.reconciled;
  }

  // Aggregated Prometheus body: one labelled series per scope plus an
  // unlabelled fleet-wide sum.
  std::set<std::string> counter_names;
  std::set<std::string> gauge_names;
  std::set<std::string> hist_names;
  for (const auto& [sname, scope] : result.scopes) {
    for (const auto& [n, v] : scope.totals.counters) counter_names.insert(n);
    for (const auto& [n, v] : scope.totals.gauges) gauge_names.insert(n);
    for (const auto& [n, v] : scope.totals.histograms) hist_names.insert(n);
  }
  std::string& prom = result.prometheus;
  for (const std::string& name : counter_names) {
    const std::string p = prom_name(name);
    prom += fmt("# TYPE {} counter\n", p);
    std::uint64_t total = 0;
    for (const auto& [sname, scope] : result.scopes) {
      const auto it = scope.totals.counters.find(name);
      if (it == scope.totals.counters.end()) continue;
      total += it->second;
      prom += fmt("{}{{scope=\"{}\"}} {}\n", p, obs::json_escape(sname),
                  it->second);
    }
    prom += fmt("{} {}\n", p, total);
  }
  for (const std::string& name : gauge_names) {
    const std::string p = prom_name(name);
    prom += fmt("# TYPE {} gauge\n", p);
    std::int64_t total = 0;
    for (const auto& [sname, scope] : result.scopes) {
      const auto it = scope.totals.gauges.find(name);
      if (it == scope.totals.gauges.end()) continue;
      total += it->second.value;
      prom += fmt("{}{{scope=\"{}\"}} {}\n", p, obs::json_escape(sname),
                  it->second.value);
    }
    prom += fmt("{} {}\n", p, total);
  }
  for (const std::string& name : hist_names) {
    const std::string p = prom_name(name);
    prom += fmt("# TYPE {} summary\n", p);
    std::uint64_t count = 0;
    double sum = 0;
    for (const auto& [sname, scope] : result.scopes) {
      const auto it = scope.totals.histograms.find(name);
      if (it == scope.totals.histograms.end()) continue;
      count += it->second.count;
      sum += it->second.sum;
      prom += fmt("{}_count{{scope=\"{}\"}} {}\n{}_sum{{scope=\"{}\"}} {}\n",
                  p, obs::json_escape(sname), it->second.count, p,
                  obs::json_escape(sname), obs::json_number(it->second.sum));
    }
    prom += fmt("{}_count {}\n{}_sum {}\n", p, count, p, obs::json_number(sum));
  }
  return result;
}

}  // namespace sciprep::flow
