#include "sciprep/flow/snapshot.hpp"

#include <algorithm>

namespace sciprep::flow {

namespace {

void check_count(std::uint32_t n, const char* what) {
  if (n > kMaxSnapshotEntries) {
    throw_format("snapshot {} section declares {} entries (cap {})", what, n,
                 kMaxSnapshotEntries);
  }
}

}  // namespace

void encode_snapshot_into(ByteWriter& w, const obs::MetricsSnapshot& snap) {
  w.put<std::uint8_t>(kSnapshotCodecVersion);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& [name, value] : snap.counters) {
    w.put_string(name);
    w.put<std::uint64_t>(value);
  }
  w.put<std::uint32_t>(static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& [name, g] : snap.gauges) {
    w.put_string(name);
    w.put<std::int64_t>(g.value);
    w.put<std::int64_t>(g.high_watermark);
  }
  w.put<std::uint32_t>(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    w.put_string(name);
    w.put<std::uint64_t>(h.count);
    w.put<double>(h.sum);
  }
}

Bytes encode_snapshot(const obs::MetricsSnapshot& snap) {
  ByteWriter w;
  encode_snapshot_into(w, snap);
  return std::move(w).take();
}

obs::MetricsSnapshot decode_snapshot(ByteReader& r) {
  const auto version = r.get<std::uint8_t>();
  if (version != kSnapshotCodecVersion) {
    throw_format("snapshot codec version {} (expected {})", version,
                 kSnapshotCodecVersion);
  }
  obs::MetricsSnapshot snap;
  const auto n_counters = r.get<std::uint32_t>();
  check_count(n_counters, "counter");
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    std::string name = r.get_string();
    snap.counters[std::move(name)] = r.get<std::uint64_t>();
  }
  const auto n_gauges = r.get<std::uint32_t>();
  check_count(n_gauges, "gauge");
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    std::string name = r.get_string();
    obs::MetricsSnapshot::GaugeValue g;
    g.value = r.get<std::int64_t>();
    g.high_watermark = r.get<std::int64_t>();
    snap.gauges[std::move(name)] = g;
  }
  const auto n_hists = r.get<std::uint32_t>();
  check_count(n_hists, "histogram");
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    std::string name = r.get_string();
    obs::MetricsSnapshot::HistogramSummary h;
    h.count = r.get<std::uint64_t>();
    h.sum = r.get<double>();
    snap.histograms[std::move(name)] = h;
  }
  return snap;
}

obs::MetricsSnapshot decode_snapshot(ByteSpan data) {
  ByteReader r(data);
  obs::MetricsSnapshot snap = decode_snapshot(r);
  if (!r.done()) {
    throw_format("snapshot payload has {} trailing bytes", r.remaining());
  }
  return snap;
}

obs::MetricsSnapshot snapshot_delta(const obs::MetricsSnapshot& current,
                                    const obs::MetricsSnapshot& previous) {
  obs::MetricsSnapshot delta;
  for (const auto& [name, value] : current.counters) {
    const auto it = previous.counters.find(name);
    const std::uint64_t prev = it == previous.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= prev ? value - prev : value;
  }
  // Gauges are levels: the delta stream just carries the latest reading.
  delta.gauges = current.gauges;
  for (const auto& [name, h] : current.histograms) {
    const auto it = previous.histograms.find(name);
    obs::MetricsSnapshot::HistogramSummary d;
    if (it == previous.histograms.end() || h.count < it->second.count) {
      d = h;  // new metric, or the source registry was reset
    } else {
      d.count = h.count - it->second.count;
      d.sum = h.sum - it->second.sum;
    }
    delta.histograms[name] = d;
  }
  return delta;
}

void snapshot_accumulate(obs::MetricsSnapshot& into,
                         const obs::MetricsSnapshot& delta) {
  for (const auto& [name, value] : delta.counters) {
    into.counters[name] += value;
  }
  for (const auto& [name, g] : delta.gauges) {
    auto& dst = into.gauges[name];
    dst.value = g.value;
    dst.high_watermark = std::max(dst.high_watermark, g.high_watermark);
  }
  for (const auto& [name, h] : delta.histograms) {
    auto& dst = into.histograms[name];
    dst.count += h.count;
    dst.sum += h.sum;
  }
}

}  // namespace sciprep::flow
