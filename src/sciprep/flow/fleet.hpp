// Fleet-level telemetry federation (`sciprep.flow.fleet.v1`).
//
// A served fleet produces one metrics time-series per scope — a wire client
// appending the per-tenant snapshot deltas it pulls from the server
// (fleet.v1 lines, written by fleet_line()), or a rank's insight exporter
// JSONL. merge_fleet() ingests N such series, normalizes both formats into
// fleet.v1, orders the global series by timestamp, accumulates running
// totals per scope, and emits an aggregated Prometheus text body with a
// {scope="..."} label per source plus an unlabelled fleet-wide sum.
//
// Every fleet.v1 line carries both cumulative totals and the delta since the
// previous line, which makes the stream self-checking: reconciled means the
// sum of a scope's deltas equals its last declared totals — i.e. the merged
// view equals the per-tenant registry it came from, with no line lost.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sciprep/obs/metrics.hpp"

namespace sciprep::flow {

inline constexpr const char* kFleetSchema = "sciprep.flow.fleet.v1";

/// Render one fleet.v1 JSONL line (no trailing newline).
/// `t_seconds` is seconds since the emitting process's run start.
[[nodiscard]] std::string fleet_line(const std::string& scope,
                                     std::uint64_t seq, double t_seconds,
                                     const obs::MetricsSnapshot& totals,
                                     const obs::MetricsSnapshot& delta);

/// One input series: the full text of a JSONL file (fleet.v1 lines, insight
/// exporter ticks, or a mix). `scope_hint` names lines that carry no scope
/// of their own (exporter ticks from a pre-flow trainer).
struct FleetInput {
  std::string scope_hint;
  std::string text;
};

struct FleetScope {
  obs::MetricsSnapshot totals;    // accumulated from the scope's deltas
  obs::MetricsSnapshot declared;  // last line's declared cumulative totals
  std::uint64_t lines = 0;
  bool reconciled = false;        // totals == declared
};

struct FleetMergeResult {
  std::map<std::string, FleetScope> scopes;
  std::string merged_jsonl;  // global fleet.v1 series, time-ordered
  std::string prometheus;    // per-scope labelled + fleet-aggregate text
  std::uint64_t lines_parsed = 0;
  std::uint64_t lines_skipped = 0;  // blank or unparseable lines
  bool reconciled = false;          // every scope reconciled

  [[nodiscard]] std::string summary_json() const;
};

[[nodiscard]] FleetMergeResult merge_fleet(
    const std::vector<FleetInput>& inputs);

}  // namespace sciprep::flow
