// Binary codec + delta algebra for obs::MetricsSnapshot.
//
// Fleet federation ships per-tenant metric state over the wire as snapshot
// *deltas*: the server diffs the tenant registry against what it last sent,
// the client accumulates deltas back into running totals, and the two views
// reconcile exactly because the algebra is exact —
//
//   accumulate(accumulate(zero, d1), d2) == snapshot      (counters, hists)
//
// Gauges are levels, not flows: a delta carries the current value and the
// high-watermark, and accumulate() takes last-value / max-watermark.
//
// The byte format is the usual little-endian field list over
// ByteWriter/ByteReader with length-prefixed sections, so a hostile or
// truncated payload fails as a typed FormatError, never as an overread.
#pragma once

#include <cstdint>

#include "sciprep/common/buffer.hpp"
#include "sciprep/obs/metrics.hpp"

namespace sciprep::flow {

/// Version byte leading every encoded snapshot; bump on layout change.
inline constexpr std::uint8_t kSnapshotCodecVersion = 1;

/// Cap on the declared entry count of any one section, so a corrupt header
/// cannot make decode_snapshot() reserve unbounded memory.
inline constexpr std::uint32_t kMaxSnapshotEntries = 1u << 20;

void encode_snapshot_into(ByteWriter& w, const obs::MetricsSnapshot& snap);
[[nodiscard]] Bytes encode_snapshot(const obs::MetricsSnapshot& snap);

/// Decode one snapshot from the reader's current position (leaves the reader
/// after the snapshot, so it can be embedded in a larger payload). Throws
/// FormatError on truncation, bad version, or a lying entry count.
[[nodiscard]] obs::MetricsSnapshot decode_snapshot(ByteReader& r);
[[nodiscard]] obs::MetricsSnapshot decode_snapshot(ByteSpan data);

/// current - previous, per metric. Counters and histogram count/sum subtract
/// (clamped at zero if a registry was reset mid-flight); gauges carry the
/// current level/watermark through unchanged. Metrics absent from `previous`
/// appear with their full current value.
[[nodiscard]] obs::MetricsSnapshot snapshot_delta(
    const obs::MetricsSnapshot& current, const obs::MetricsSnapshot& previous);

/// Fold one delta into running totals (the inverse of snapshot_delta).
void snapshot_accumulate(obs::MetricsSnapshot& into,
                         const obs::MetricsSnapshot& delta);

}  // namespace sciprep::flow
