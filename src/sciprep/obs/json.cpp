#include "sciprep/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sciprep::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

namespace {

/// Recursive-descent RFC 8259 validator over [p, end).
class Validator {
 public:
  Validator(const char* p, const char* end) : p_(p), end_(end) {}

  bool run() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool literal(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }

  bool string() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return false;
        const char esc = *p_;
        if (esc == 'u') {
          ++p_;
          for (int i = 0; i < 4; ++i, ++p_) {
            if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
              return false;
          }
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++p_;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
      return false;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    return true;
  }

  bool number() {
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_) return false;
    if (*p_ == '0') {
      ++p_;
    } else if (!digits()) {
      return false;
    }
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (!digits()) return false;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth || p_ == end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return false;
          ++p_;
          skip_ws();
          if (!value(depth + 1)) return false;
          skip_ws();
          if (p_ == end_) return false;
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == '}') {
            ++p_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!value(depth + 1)) return false;
          skip_ws();
          if (p_ == end_) return false;
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == ']') {
            ++p_;
            return true;
          }
          return false;
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool json_valid(std::string_view text) {
  return Validator(text.data(), text.data() + text.size()).run();
}

}  // namespace sciprep::obs
