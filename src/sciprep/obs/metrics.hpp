// Metrics registry — the aggregate half of sciprep::obs.
//
// Named counters (monotonic uint64), gauges (level + high-watermark), and
// log-bucketed latency histograms (LogHistogram from common/stats.hpp, with
// p50/p90/p99 summaries). Metric objects are created on first use and their
// references stay valid for the registry's lifetime, so hot paths resolve a
// metric once and then pay one relaxed atomic per event.
//
// Dump formats: to_json() (machine-readable, valid JSON — NaN becomes null)
// and human_dump() (aligned table for terminals). The process-wide
// MetricsRegistry::global() also mirrors the log layer's warn/error counts
// as log.warnings_total / log.errors_total.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sciprep/common/stats.hpp"
#include "sciprep/common/threadpool.hpp"

namespace sciprep::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level with a high-watermark (e.g. queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raise_watermark(v);
  }
  void add(std::int64_t delta) noexcept {
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raise_watermark(now);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t high_watermark() const noexcept {
    return high_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    high_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_watermark(std::int64_t v) noexcept {
    std::int64_t seen = high_.load(std::memory_order_relaxed);
    while (v > seen &&
           !high_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_{0};
};

/// Thread-safe log-bucketed histogram (see LogHistogram for bucketing).
class Histogram {
 public:
  explicit Histogram(LogHistogram::Options options = {}) : hist_(options) {}

  void record(double value) {
    std::lock_guard lock(mutex_);
    hist_.record(value);
  }
  [[nodiscard]] LogHistogram snapshot() const {
    std::lock_guard lock(mutex_);
    return hist_;
  }
  [[nodiscard]] std::uint64_t count() const {
    std::lock_guard lock(mutex_);
    return hist_.count();
  }
  [[nodiscard]] double sum() const {
    std::lock_guard lock(mutex_);
    return hist_.sum();
  }
  [[nodiscard]] double quantile(double q) const {
    std::lock_guard lock(mutex_);
    return hist_.quantile(q);
  }
  void reset() {
    std::lock_guard lock(mutex_);
    hist_ = LogHistogram(hist_.options());
  }

 private:
  mutable std::mutex mutex_;
  LogHistogram hist_;
};

/// Point-in-time copy of every metric's value — the unit the insight
/// exporter diffs between ticks and the flight recorder embeds in incident
/// files. Histograms carry count/sum only: enough for rate and mean-latency
/// deltas without copying bucket arrays on every sampling tick.
struct MetricsSnapshot {
  struct GaugeValue {
    std::int64_t value = 0;
    std::int64_t high_watermark = 0;
  };
  struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry. Also wires the log layer's warn/error counts in
  /// as log.warnings_total / log.errors_total on first use.
  static MetricsRegistry& global();

  /// Find-or-create; returned references live as long as the registry.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       LogHistogram::Options options = {});

  /// Value of a counter, 0 when it does not exist (never creates).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Consistent point-in-time copy of every metric (one lock hold).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string human_dump() const;
  /// Write to_json() to `path`; throws IoError on failure.
  void write_json(const std::string& path) const;

  /// Zero every counter/gauge and clear every histogram (names survive).
  void reset();

 private:
  mutable std::mutex mutex_;
  // std::map: node stability lets metric references outlive rehashing.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// ThreadPool observer that records outstanding-task depth (queued +
/// running, with its high-watermark), queue wait, and task run time into a
/// registry under `prefix` (e.g. "pipeline.pool"). Attach with
/// pool.set_observer(&pool_metrics); detach before destroying either side.
class PoolMetrics final : public ThreadPoolObserver {
 public:
  PoolMetrics(MetricsRegistry& registry, const std::string& prefix);

  void on_enqueue(std::size_t queue_depth) override;
  void on_task_complete(double queue_seconds, double run_seconds) override;

 private:
  Gauge& depth_;
  Counter& tasks_;
  Histogram& queue_seconds_;
  Histogram& run_seconds_;
};

}  // namespace sciprep::obs
