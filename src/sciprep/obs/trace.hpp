// Span tracer — the timeline half of sciprep::obs.
//
// A Tracer keeps a fixed-capacity ring buffer of completed spans
// {name, category, thread, t_start, t_end, args}; when the ring wraps, the
// oldest spans are overwritten (total_recorded() - size() tells how many were
// dropped). Recording is lock-cheap: writers claim a slot with one atomic
// fetch-add under a shared lock, so concurrent decode workers never serialize
// against each other; only snapshot/export takes the exclusive lock.
//
// Spans are exported as Chrome/Perfetto `trace_event` JSON ("ph":"X"
// complete events, microsecond timestamps) — load the file in
// chrome://tracing or https://ui.perfetto.dev to see the pipeline timeline.
//
// The tracer is disabled by default; ScopedSpan is a no-op (one relaxed
// atomic load) until set_enabled(true). The SCIPREP_OBS_* macros in obs.hpp
// additionally compile away entirely under SCIPREP_OBS_DISABLED.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sciprep::obs {

class Counter;  // metrics.hpp; trace avoids the include to stay cycle-free

struct TraceSpan {
  std::string name;
  std::string category;
  std::uint32_t thread = 0;
  std::uint64_t t_start_ns = 0;  // relative to the tracer's construction
  std::uint64_t t_end_ns = 0;
  std::string args_json;  // "" or a preformatted JSON object ("{...}")
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Process-wide tracer all instrumentation macros record into.
  static Tracer& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since this tracer was constructed.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Label for this process's track in exported traces. Defaults to
  /// "sciprep"; multi-process runs (wire server/client) set distinct names
  /// so a merged trace renders one named track per process.
  void set_process_name(std::string name);
  [[nodiscard]] std::string process_name() const;

  /// Append one completed span (records regardless of enabled(); the
  /// enabled flag gates ScopedSpan, not explicit recording).
  void record(std::string_view name, std::string_view category,
              std::uint64_t t_start_ns, std::uint64_t t_end_ns,
              std::string args_json = {});

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Spans currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Spans ever recorded (recorded - retained were overwritten).
  [[nodiscard]] std::uint64_t total_recorded() const;
  /// Spans overwritten by ring wrap since construction (or clear()). Also
  /// mirrored into the process registry as obs.trace.spans_dropped_total, so
  /// a metrics dump reveals when an exported trace is incomplete.
  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  /// Retained spans, oldest first.
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;
  /// The newest `max_spans` retained spans, oldest of them first. The
  /// flight-recorder drain: an incident dump wants the last-K timeline, not
  /// a copy of the whole ring.
  [[nodiscard]] std::vector<TraceSpan> snapshot_tail(
      std::size_t max_spans) const;
  /// Full Chrome `trace_event` JSON document.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`; throws IoError on failure.
  void write_chrome_json(const std::string& path) const;

 private:
  [[nodiscard]] std::vector<TraceSpan> snapshot_locked(
      std::size_t max_spans) const;

  std::vector<TraceSpan> ring_;
  std::string process_name_ = "sciprep";  // guarded by mutex_
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::shared_mutex mutex_;
  Counter* dropped_counter_;  // obs.trace.spans_dropped_total (global)
};

/// RAII span: measures construction-to-destruction and records it into the
/// tracer. When the tracer is disabled at construction, every operation is a
/// no-op (and no strings are copied).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name, std::string_view category)
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      name_ = name;
      category_ = category;
      t_start_ns_ = tracer_->now_ns();
    }
  }
  ScopedSpan(std::string_view name, std::string_view category)
      : ScopedSpan(Tracer::global(), name, category) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, category_, t_start_ns_, tracer_->now_ns(),
                      std::move(args_json_));
    }
  }

  /// Attach a preformatted JSON object ("{...}") shown as the span's args.
  void set_args_json(std::string args_json) {
    if (tracer_ != nullptr) {
      args_json_ = std::move(args_json);
    }
  }

  /// False when tracing was disabled at construction — lets callers skip
  /// building an args string nobody will see.
  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  std::string args_json_;
  std::uint64_t t_start_ns_ = 0;
};

}  // namespace sciprep::obs
