// Tiny JSON utilities for the observability layer: string escaping for the
// writers, number formatting that never emits invalid tokens (NaN/inf become
// null), and a strict validating parser used by the trace smoke tests and
// `trainer --validate`. This is deliberately not a DOM library — the obs
// layer only ever writes JSON and checks that what it wrote parses.
#pragma once

#include <string>
#include <string_view>

namespace sciprep::obs {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Format a double as a JSON value: "null" for NaN/inf, shortest-ish %.12g
/// otherwise.
std::string json_number(double v);

/// Strict whole-document validity check (RFC 8259 grammar, depth-limited).
[[nodiscard]] bool json_valid(std::string_view text);

}  // namespace sciprep::obs
