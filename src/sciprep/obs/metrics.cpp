#include "sciprep/obs/metrics.hpp"

#include <cstdio>

#include "sciprep/common/error.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/common/sysio.hpp"
#include "sciprep/obs/json.hpp"

namespace sciprep::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  static const bool wired = [] {
    // Pre-create so every dump shows them, then mirror log events as they
    // happen. The hook only fires after this block completes, so the
    // re-entrant global() calls below are safe.
    registry.counter("log.warnings_total");
    registry.counter("log.errors_total");
    set_log_hook([](LogLevel level, std::string_view) {
      if (level == LogLevel::kWarn) {
        MetricsRegistry::global().counter("log.warnings_total").add(1);
      } else if (level == LogLevel::kError) {
        MetricsRegistry::global().counter("log.errors_total").add(1);
      }
    });
    return true;
  }();
  (void)wired;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      LogHistogram::Options options) {
  std::lock_guard lock(mutex_);
  return histograms_.try_emplace(name, options).first->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c.value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(
        name, MetricsSnapshot::GaugeValue{g.value(), g.high_watermark()});
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(
        name, MetricsSnapshot::HistogramSummary{h.count(), h.sum()});
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += fmt("\"{}\":{}", json_escape(name), c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += fmt("\"{}\":{{\"value\":{},\"high_watermark\":{}}}",
               json_escape(name), g.value(), g.high_watermark());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    const LogHistogram snap = h.snapshot();
    out += fmt(
        "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},"
        "\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        json_escape(name), snap.count(), json_number(snap.sum()),
        json_number(snap.mean()), json_number(snap.min()),
        json_number(snap.max()), json_number(snap.quantile(0.50)),
        json_number(snap.quantile(0.90)), json_number(snap.quantile(0.99)));
    bool first_bucket = true;
    for (std::size_t i = 0; i < snap.bucket_count(); ++i) {
      if (snap.buckets()[i] == 0) continue;  // sparse dump
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += fmt("{{\"lo\":{},\"hi\":{},\"count\":{}}}",
                 json_number(snap.bucket_lower(i)),
                 json_number(snap.bucket_upper(i)), snap.buckets()[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::human_dump() const {
  std::lock_guard lock(mutex_);
  std::string out;
  if (!counters_.empty()) {
    out += "counters:\n";
    for (const auto& [name, c] : counters_) {
      out += fmt("  {:<48} {}\n", name, c.value());
    }
  }
  if (!gauges_.empty()) {
    out += "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      out += fmt("  {:<48} {}  (high {})\n", name, g.value(),
                 g.high_watermark());
    }
  }
  if (!histograms_.empty()) {
    out += fmt("histograms: {:<36} {:>9} {:>11} {:>11} {:>11} {:>11}\n", "",
               "count", "mean", "p50", "p90", "p99");
    for (const auto& [name, h] : histograms_) {
      const LogHistogram snap = h.snapshot();
      out += fmt("  {:<46} {:>9} {:>11.4g} {:>11.4g} {:>11.4g} {:>11.4g}\n",
                 name, snap.count(), snap.mean(), snap.quantile(0.50),
                 snap.quantile(0.90), snap.quantile(0.99));
    }
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  sysio::write_file(path, as_bytes(to_json()));
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

PoolMetrics::PoolMetrics(MetricsRegistry& registry, const std::string& prefix)
    : depth_(registry.gauge(prefix + ".queue_depth")),
      tasks_(registry.counter(prefix + ".tasks_total")),
      queue_seconds_(registry.histogram(prefix + ".task_queue_seconds")),
      run_seconds_(registry.histogram(prefix + ".task_run_seconds")) {}

void PoolMetrics::on_enqueue(std::size_t queue_depth) {
  // Track outstanding work (queued + running) as a +1/-1 pair: unlike
  // mirroring `queue_depth` (sampled only at enqueue time), this drains back
  // to zero and its high-watermark is the peak backlog.
  (void)queue_depth;
  depth_.add(1);
}

void PoolMetrics::on_task_complete(double queue_seconds, double run_seconds) {
  tasks_.add(1);
  depth_.add(-1);
  queue_seconds_.record(queue_seconds);
  run_seconds_.record(run_seconds);
}

}  // namespace sciprep::obs
