// sciprep::obs — unified tracing, metrics, and profiling layer.
//
// Umbrella header: pulls in the span tracer (trace.hpp), the metrics
// registry (metrics.hpp), and JSON helpers (json.hpp), and defines the
// instrumentation macros the hot paths use:
//
//   SCIPREP_OBS_SPAN("codec.cosmo.decode_cpu", "codec");
//       RAII span into Tracer::global() covering the enclosing scope.
//   SCIPREP_OBS_SPAN_NAMED(span, "sim.kernel", "sim");
//       Same, but with a named variable so args can be attached:
//       span.set_args_json(...).
//   SCIPREP_OBS_COUNT("codec.cosmo.decode_bytes_in_total", n);
//       Bump a counter in MetricsRegistry::global().
//
// Building with -DSCIPREP_OBS_DISABLED (CMake option SCIPREP_OBS_DISABLED)
// compiles the macros away entirely, so instrumented hot paths carry zero
// overhead — bench_obs_overhead measures the residual cost of the default
// build (a runtime-disabled tracer costs one relaxed atomic load per span).
// Registry objects used directly (e.g. the pipeline's per-stage stats, which
// back PipelineStats) are not affected by the switch.
#pragma once

#include "sciprep/obs/json.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"

#define SCIPREP_OBS_CONCAT_IMPL(a, b) a##b
#define SCIPREP_OBS_CONCAT(a, b) SCIPREP_OBS_CONCAT_IMPL(a, b)

#if defined(SCIPREP_OBS_DISABLED)

namespace sciprep::obs {
/// Drop-in stand-in for ScopedSpan when instrumentation is compiled out.
struct NullSpan {
  void set_args_json(std::string) {}
  [[nodiscard]] bool active() const noexcept { return false; }
};
}  // namespace sciprep::obs

#define SCIPREP_OBS_SPAN_NAMED(var, name, category) \
  [[maybe_unused]] ::sciprep::obs::NullSpan var
#define SCIPREP_OBS_COUNT(name, n) \
  do {                             \
  } while (false)

#else

#define SCIPREP_OBS_SPAN_NAMED(var, name, category) \
  ::sciprep::obs::ScopedSpan var((name), (category))
#define SCIPREP_OBS_COUNT(name, n)                 \
  ::sciprep::obs::MetricsRegistry::global()        \
      .counter(name)                               \
      .add(static_cast<std::uint64_t>(n))

#endif  // SCIPREP_OBS_DISABLED

#define SCIPREP_OBS_SPAN(name, category)                                  \
  SCIPREP_OBS_SPAN_NAMED(SCIPREP_OBS_CONCAT(sciprep_obs_span_, __LINE__), \
                         name, category)
