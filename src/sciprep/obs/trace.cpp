#include "sciprep/obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "sciprep/common/error.hpp"
#include "sciprep/common/sysio.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/obs/json.hpp"
#include "sciprep/obs/metrics.hpp"

namespace sciprep::obs {

Tracer::Tracer(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1),
      epoch_(std::chrono::steady_clock::now()),
      // Every tracer mirrors its drops into the one process-wide counter:
      // drops mean "the exported trace is missing spans", which is a
      // process-level observability defect wherever the ring lives.
      dropped_counter_(
          &MetricsRegistry::global().counter("obs.trace.spans_dropped_total")) {
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::set_process_name(std::string name) {
  std::unique_lock lock(mutex_);
  process_name_ = std::move(name);
}

std::string Tracer::process_name() const {
  std::unique_lock lock(mutex_);
  return process_name_;
}

void Tracer::record(std::string_view name, std::string_view category,
                    std::uint64_t t_start_ns, std::uint64_t t_end_ns,
                    std::string args_json) {
  // Writers hold the lock shared: the atomic claim hands each of them a
  // distinct slot, so they never touch the same span. Exporters hold it
  // exclusive and therefore see fully-written spans.
  std::shared_lock lock(mutex_);
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= ring_.size()) {
    // This write overwrites the ring's oldest retained span.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter_->add(1);
  }
  TraceSpan& span = ring_[slot % ring_.size()];
  span.name.assign(name);
  span.category.assign(category);
  span.thread = thread_index();
  span.t_start_ns = t_start_ns;
  span.t_end_ns = t_end_ns;
  span.args_json = std::move(args_json);
}

std::size_t Tracer::size() const {
  const std::uint64_t total = next_.load();
  return total < ring_.size() ? static_cast<std::size_t>(total) : ring_.size();
}

std::uint64_t Tracer::total_recorded() const { return next_.load(); }

void Tracer::clear() {
  std::unique_lock lock(mutex_);
  next_.store(0);
  dropped_.store(0);
  for (TraceSpan& span : ring_) {
    span = TraceSpan{};
  }
}

std::vector<TraceSpan> Tracer::snapshot_locked(std::size_t max_spans) const {
  const std::uint64_t total = next_.load();
  std::vector<TraceSpan> out;
  if (total == 0 || max_spans == 0) return out;
  std::uint64_t n = std::min<std::uint64_t>(total, ring_.size());
  n = std::min<std::uint64_t>(n, max_spans);
  out.reserve(static_cast<std::size_t>(n));
  // Oldest returned span first.
  const std::uint64_t first = total - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceSpan> Tracer::snapshot() const {
  std::unique_lock lock(mutex_);
  return snapshot_locked(ring_.size());
}

std::vector<TraceSpan> Tracer::snapshot_tail(std::size_t max_spans) const {
  std::unique_lock lock(mutex_);
  return snapshot_locked(max_spans);
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceSpan> spans = snapshot();
  // Real pid + a process_name metadata event: a trace merged from several
  // processes (sciprep::flow) must render distinct named tracks, so even the
  // single-process export identifies itself honestly.
  const long pid = static_cast<long>(::getpid());
  std::string out;
  out.reserve(spans.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += fmt(
      "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},"
      "\"args\":{{\"name\":\"{}\"}}}}",
      pid, json_escape(process_name()));
  bool first = false;
  // Perfetto "M" metadata events: label each tid that registered a role name
  // (pool workers, watchdog, consumer) so the timeline rows are readable.
  {
    std::vector<std::uint32_t> tids;
    for (const TraceSpan& span : spans) {
      if (std::find(tids.begin(), tids.end(), span.thread) == tids.end()) {
        tids.push_back(span.thread);
      }
    }
    std::sort(tids.begin(), tids.end());
    for (const std::uint32_t tid : tids) {
      const std::string name = thread_name(tid);
      if (name.empty()) continue;
      if (!first) out += ',';
      first = false;
      out += fmt(
          "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},"
          "\"args\":{{\"name\":\"{}\"}}}}",
          pid, tid, json_escape(name));
    }
  }
  for (const TraceSpan& span : spans) {
    if (!first) out += ',';
    first = false;
    const double ts_us = static_cast<double>(span.t_start_ns) / 1e3;
    const double dur_us =
        static_cast<double>(span.t_end_ns - span.t_start_ns) / 1e3;
    out += fmt(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},"
        "\"tid\":{},\"ts\":{},\"dur\":{}",
        json_escape(span.name), json_escape(span.category), pid, span.thread,
        json_number(ts_us), json_number(dur_us));
    if (!span.args_json.empty()) {
      out += ",\"args\":";
      out += span.args_json;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  sysio::write_file(path, as_bytes(to_chrome_json()));
}

}  // namespace sciprep::obs
