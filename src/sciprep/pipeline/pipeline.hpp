// The data-loading pipeline (the DALI role in §VI).
//
// Wires a stored dataset to the training loop: shuffles the epoch order,
// decodes samples with the path matching the storage format — baseline parse
// + CPU preprocessing for raw formats, gunzip + parse for GZIP TFRecords,
// codec plugin decode on CPU or (simulated) GPU for the encoded format —
// applies augmentation ops, and assembles batches. CPU decode fans samples
// out across worker threads ("on the CPU we assign different samples to
// different threads"); one batch of lookahead is prefetched in the
// background so decode overlaps the consumer's training step.
//
// Per-stage wall time is accumulated in PipelineStats; the bench harness
// combines those host-measured costs with the sim transfer model to produce
// the per-platform step times of Figures 8-12.
#pragma once

#include <cstdint>
#include <future>
#include <optional>
#include <vector>

#include "sciprep/codec/codec.hpp"
#include "sciprep/pipeline/dataset.hpp"
#include "sciprep/pipeline/ops.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::pipeline {

struct PipelineConfig {
  int batch_size = 4;
  std::size_t worker_threads = 2;   // CPU decode fan-out
  bool shuffle = true;
  std::uint64_t seed = 0;
  bool drop_last = false;           // drop a trailing partial batch
  bool prefetch = true;             // overlap next-batch decode
  codec::Placement decode_placement = codec::Placement::kCpu;
  OpList ops;                       // applied post-decode, pre-batch
};

struct Batch {
  std::vector<codec::TensorF16> samples;
  std::uint64_t bytes_at_rest = 0;  // stored size of the batch's samples
  std::uint64_t epoch = 0;
  std::uint64_t index_in_epoch = 0;

  [[nodiscard]] int size() const { return static_cast<int>(samples.size()); }
};

struct PipelineStats {
  std::uint64_t samples = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes_at_rest = 0;
  double decode_cpu_seconds = 0;   // baseline preprocess / gunzip / cpu decode
  double decode_gpu_seconds = 0;   // SimGpu wall time
  sim::KernelStats gpu;            // accumulated kernel counters
};

class DataPipeline {
 public:
  /// `codec` must outlive the pipeline and match the dataset's workload; it
  /// is also used for the baseline path (reference_preprocess). `gpu` is
  /// required when decode_placement is kGpu.
  DataPipeline(const InMemoryDataset& dataset, const codec::SampleCodec& codec,
               PipelineConfig config, sim::SimGpu* gpu = nullptr);
  ~DataPipeline();

  DataPipeline(const DataPipeline&) = delete;
  DataPipeline& operator=(const DataPipeline&) = delete;

  /// Reset to the start of `epoch` (reshuffles under the epoch-derived seed).
  void start_epoch(std::uint64_t epoch);

  /// Produce the next batch; false at epoch end.
  bool next_batch(Batch& batch);

  /// Decode one sample through the configured path (exposed for benches that
  /// time single-sample decode).
  [[nodiscard]] codec::TensorF16 decode_sample(std::size_t index) const;

  [[nodiscard]] const PipelineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t batches_per_epoch() const;

 private:
  Batch assemble_batch(std::uint64_t first, std::uint64_t count);

  const InMemoryDataset& dataset_;
  const codec::SampleCodec& codec_;
  PipelineConfig config_;
  sim::SimGpu* gpu_;
  ThreadPool workers_;

  std::vector<std::size_t> order_;
  std::uint64_t epoch_ = 0;
  std::uint64_t cursor_ = 0;       // next sample position in order_
  std::uint64_t batch_index_ = 0;
  std::optional<std::future<Batch>> pending_;
  PipelineStats stats_;
};

}  // namespace sciprep::pipeline
