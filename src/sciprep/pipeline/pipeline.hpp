// The data-loading pipeline (the DALI role in §VI).
//
// Wires a stored dataset to the training loop: shuffles the epoch order,
// decodes samples with the path matching the storage format — baseline parse
// + CPU preprocessing for raw formats, gunzip + parse for GZIP TFRecords,
// codec plugin decode on CPU or (simulated) GPU for the encoded format —
// applies augmentation ops, and assembles batches. CPU decode fans samples
// out across worker threads ("on the CPU we assign different samples to
// different threads"); one batch of lookahead is prefetched in the
// background so decode overlaps the consumer's training step.
//
// Per-stage wall time is accumulated in PipelineStats; the bench harness
// combines those host-measured costs with the sim transfer model to produce
// the per-platform step times of Figures 8-12.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sciprep/codec/codec.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/pipeline/dataset.hpp"
#include "sciprep/pipeline/ops.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::pipeline {

struct PipelineConfig {
  int batch_size = 4;
  std::size_t worker_threads = 2;   // CPU decode fan-out
  bool shuffle = true;
  std::uint64_t seed = 0;
  bool drop_last = false;           // drop a trailing partial batch
  bool prefetch = true;             // overlap next-batch decode
  codec::Placement decode_placement = codec::Placement::kCpu;
  OpList ops;                       // applied post-decode, pre-batch
  /// Registry the pipeline's stage metrics land in. When null the pipeline
  /// owns a private registry (so two pipelines in one process don't mix
  /// counts); inject obs::MetricsRegistry::global() to fold pipeline metrics
  /// into a process-wide dump. Must outlive the pipeline.
  obs::MetricsRegistry* metrics = nullptr;
  /// What to do when a sample fails to load or decode. The default (kFail
  /// everywhere) re-throws out of next_batch(), exactly the pre-policy
  /// behavior; see fault::FaultPolicy for retry/skip/fallback semantics.
  fault::FaultPolicy fault_policy;
  /// Fault source consulted around sample reads and decodes. When null,
  /// fault::Injector::global() applies (itself null outside tests/benches —
  /// production pays one pointer test per sample). Must outlive the pipeline.
  fault::Injector* injector = nullptr;
};

struct Batch {
  std::vector<codec::TensorF16> samples;
  std::uint64_t bytes_at_rest = 0;  // stored size of the batch's samples
  std::uint64_t epoch = 0;
  std::uint64_t index_in_epoch = 0;

  [[nodiscard]] int size() const { return static_cast<int>(samples.size()); }
};

/// Aggregate pipeline counters, assembled on demand from the metrics
/// registry (stats() is a snapshot, not a live reference — every field is the
/// corresponding pipeline.* metric's current value).
struct PipelineStats {
  std::uint64_t samples = 0;           // delivered (excludes skipped)
  std::uint64_t batches = 0;
  std::uint64_t bytes_at_rest = 0;     // stored bytes of delivered samples
  std::uint64_t samples_skipped = 0;   // quarantined by kSkipSample
  std::uint64_t retries = 0;           // transient-failure re-attempts
  std::uint64_t fallbacks = 0;         // GPU→CPU baseline re-decodes
  bool degraded = false;               // any recovery event has fired
  double decode_cpu_seconds = 0;   // baseline preprocess / gunzip / cpu decode
  double decode_gpu_seconds = 0;   // SimGpu wall time
  sim::KernelStats gpu;            // accumulated kernel counters
};

class DataPipeline {
 public:
  /// `codec` must outlive the pipeline and match the dataset's workload; it
  /// is also used for the baseline path (reference_preprocess). `gpu` is
  /// required when decode_placement is kGpu.
  DataPipeline(const InMemoryDataset& dataset, const codec::SampleCodec& codec,
               PipelineConfig config, sim::SimGpu* gpu = nullptr);
  ~DataPipeline();

  DataPipeline(const DataPipeline&) = delete;
  DataPipeline& operator=(const DataPipeline&) = delete;

  /// Reset to the start of `epoch` (reshuffles under the epoch-derived seed).
  void start_epoch(std::uint64_t epoch);

  /// Produce the next batch; false at epoch end.
  bool next_batch(Batch& batch);

  /// Decode one sample through the configured path (exposed for benches that
  /// time single-sample decode). Fault-injection gates apply; the recovery
  /// policy does not — failures throw.
  [[nodiscard]] codec::TensorF16 decode_sample(std::size_t index) const;

  /// Snapshot of the aggregate counters, assembled from the registry.
  [[nodiscard]] PipelineStats stats() const;
  [[nodiscard]] std::size_t batches_per_epoch() const;

  /// Sample ids quarantined by the kSkipSample policy, sorted ascending and
  /// de-duplicated across epochs. Deterministic for a fixed (pipeline seed,
  /// injector seed) pair regardless of worker count or prefetch.
  [[nodiscard]] std::vector<std::size_t> quarantine() const;

  /// The registry backing stats(): per-stage latency histograms
  /// (pipeline.stage.*), sample/byte counters (pipeline.*_total), simulated
  /// GPU kernel counters (pipeline.gpu.*) and worker-pool telemetry
  /// (pipeline.pool.*).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *metrics_;
  }

 private:
  // Metric handles resolved once at construction; hot paths pay one atomic
  // (counters) or one short critical section (histograms) per event.
  struct Handles {
    explicit Handles(obs::MetricsRegistry& registry);

    obs::Counter& samples;
    obs::Counter& batches;
    obs::Counter& bytes_at_rest;
    obs::Counter& samples_skipped;
    obs::Counter& retries;
    obs::Counter& fallbacks;
    obs::Gauge& degraded;
    obs::Counter& gpu_warps;
    obs::Counter& gpu_bytes_read;
    obs::Counter& gpu_bytes_written;
    obs::Counter& gpu_lockstep_ops;
    obs::Counter& gpu_divergent_branches;
    obs::Histogram& shuffle_seconds;
    obs::Histogram& decode_seconds;
    obs::Histogram& ops_seconds;
    obs::Histogram& batch_assemble_seconds;
    obs::Histogram& prefetch_wait_seconds;
    obs::Histogram& decode_gpu_seconds;
    obs::Histogram& retry_backoff_seconds;
  };

  Batch assemble_batch(std::uint64_t first, std::uint64_t count);
  /// Fetch + decode `index` through the configured path, with fault-injection
  /// gates applied. `attempt` distinguishes retry draws; `force_cpu` routes an
  /// encoded sample through the CPU decoder (the kFallback path).
  [[nodiscard]] codec::TensorF16 decode_guarded(std::size_t index, int attempt,
                                                bool force_cpu) const;
  /// decode_guarded wrapped in the fault-policy dispatch; nullopt means the
  /// sample was skipped (already counted and quarantined).
  [[nodiscard]] std::optional<codec::TensorF16> decode_with_recovery(
      std::size_t index);
  /// Claims one recovery event against the error budget; false = spent.
  [[nodiscard]] bool consume_budget();

  const InMemoryDataset& dataset_;
  const codec::SampleCodec& codec_;
  PipelineConfig config_;
  sim::SimGpu* gpu_;
  fault::Injector* injector_;       // per-pipeline override or global; may be null
  fault::Site corrupt_site_;        // at-rest corruption site for the format
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when none injected
  obs::MetricsRegistry* metrics_;
  Handles m_;
  obs::PoolMetrics pool_metrics_;
  // Declared after pool_metrics_ so the workers (who call the observer) are
  // joined before the observer is destroyed.
  ThreadPool workers_;

  std::vector<std::size_t> order_;
  std::uint64_t epoch_ = 0;
  std::uint64_t cursor_ = 0;       // next sample position in order_
  std::uint64_t batch_index_ = 0;
  std::optional<std::future<Batch>> pending_;

  std::atomic<std::uint64_t> recovery_events_{0};  // vs fault_policy.error_budget
  mutable std::mutex quarantine_mutex_;
  std::vector<std::size_t> quarantine_;  // raw skip events; dedup on read
};

}  // namespace sciprep::pipeline
