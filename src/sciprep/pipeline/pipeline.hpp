// The data-loading pipeline (the DALI role in §VI).
//
// Wires a stored dataset to the training loop: shuffles the epoch order,
// decodes samples with the path matching the storage format — baseline parse
// + CPU preprocessing for raw formats, gunzip + parse for GZIP TFRecords,
// codec plugin decode on CPU or (simulated) GPU for the encoded format —
// applies augmentation ops, and assembles batches. CPU decode fans samples
// out across worker threads ("on the CPU we assign different samples to
// different threads"); one batch of lookahead is prefetched in the
// background so decode overlaps the consumer's training step.
//
// Per-stage wall time is accumulated in PipelineStats; the bench harness
// combines those host-measured costs with the sim transfer model to produce
// the per-platform step times of Figures 8-12.
//
// Robustness (sciprep::guard, DESIGN.md §9): a CancelToken on the config
// unwinds a running epoch cooperatively within one batch; per-stage
// deadlines (PipelineConfig::deadlines) surface hangs as DeadlineError
// through the same FaultPolicy that handles data faults; and snapshot() /
// resume() checkpoint epoch progress at delivered-batch boundaries so a
// killed run continues with the bit-identical remaining batch sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "sciprep/codec/codec.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/guard/cancel.hpp"
#include "sciprep/guard/snapshot.hpp"
#include "sciprep/guard/watchdog.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/pipeline/dataset.hpp"
#include "sciprep/pipeline/ops.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::pipeline {

/// Shared decoded-sample cache consulted around the decode path. A lookup
/// hit replaces the whole fetch+decode of a sample; a successful primary
/// decode is offered back via insert. Implementations must be thread-safe
/// (decode workers call concurrently) and bit-transparent: lookup must only
/// ever return exactly the bytes the pipeline would have decoded itself, so
/// a cached run's delivered stream is bit-identical to an uncached one.
/// sciprep::serve's SampleCache is the production implementation; only wire
/// a cache into pipelines whose decode is deterministic per sample id (no
/// at-rest fault injection).
class DecodeCache {
 public:
  virtual ~DecodeCache() = default;
  /// Fill `out` and return true on a hit.
  virtual bool lookup(std::size_t index, codec::TensorF16& out) = 0;
  /// Offer a decoded sample (pre-augmentation). May be dropped (quota).
  virtual void insert(std::size_t index, const codec::TensorF16& tensor) = 0;
};

struct PipelineConfig {
  int batch_size = 4;
  std::size_t worker_threads = 2;   // CPU decode fan-out
  bool shuffle = true;
  std::uint64_t seed = 0;
  bool drop_last = false;           // drop a trailing partial batch
  bool prefetch = true;             // overlap next-batch decode
  codec::Placement decode_placement = codec::Placement::kCpu;
  OpList ops;                       // applied post-decode, pre-batch
  /// Registry the pipeline's stage metrics land in. When null the pipeline
  /// owns a private registry (so two pipelines in one process don't mix
  /// counts); inject obs::MetricsRegistry::global() to fold pipeline metrics
  /// into a process-wide dump. Must outlive the pipeline.
  obs::MetricsRegistry* metrics = nullptr;
  /// What to do when a sample fails to load or decode. The default (kFail
  /// everywhere) re-throws out of next_batch(), exactly the pre-policy
  /// behavior; see fault::FaultPolicy for retry/skip/fallback semantics.
  fault::FaultPolicy fault_policy;
  /// Fault source consulted around sample reads and decodes. When null,
  /// fault::Injector::global() applies (itself null outside tests/benches —
  /// production pays one pointer test per sample). Must outlive the pipeline.
  fault::Injector* injector = nullptr;
  /// Cooperative cancellation root for this pipeline. Cancelling it (from
  /// any thread) unwinds the current batch: workers stop at their next
  /// cancellation point and next_batch() throws CancelledError. The default
  /// null token disables cancellation at zero cost.
  guard::CancelToken cancel;
  /// Per-stage watchdog deadlines; all-zero (the default) disables the
  /// watchdog. Expiry surfaces as DeadlineError — a TransientError, so
  /// fault_policy.on_transient decides whether a hang retries, skips, or
  /// fails, under the same error budget as data faults.
  guard::StageDeadlines deadlines;
  /// Incident callback fired on every recovery/guard event (retry, skip,
  /// fallback, budget exhaustion, deadline expiry, resume-reject) — the hook
  /// the insight flight recorder attaches to. Fires on pool workers and the
  /// watchdog thread; must be thread-safe and must not throw. Null (the
  /// default) costs one branch per event.
  fault::RecoveryListener on_recovery_event;
  /// External epoch-order provider. When set, start_epoch(e) takes its sample
  /// sequence verbatim from epoch_order(e) instead of iota+shuffle — this is
  /// how sciprep::shard hands each rank its slice of the global shuffle. Must
  /// be a pure function of the epoch (start_epoch and resume both call it)
  /// and return ids < dataset.size(). The `shuffle` flag is ignored when set.
  std::function<std::vector<std::size_t>(std::uint64_t)> epoch_order;
  /// Identity of the epoch_order provider, mixed into config_fingerprint()
  /// (a std::function cannot be hashed). Sharded pipelines stamp the plan's
  /// (world, rank, seed, placement) hash here so a rank-2 snapshot cannot
  /// resume into a rank-3 pipeline. Leave 0 when epoch_order is unset.
  std::uint64_t order_fingerprint = 0;
  /// External worker pool for CPU decode fan-out. When set, the pipeline
  /// multiplexes onto it (under pool_key/pool_weight) instead of spawning
  /// its own `worker_threads` workers — this is how sciprep::serve shares
  /// one pool across tenants. The pool must outlive the pipeline; the
  /// pipeline does not attach its observer to a shared pool (the owner's
  /// telemetry wins). Not part of the config fingerprint: scheduling never
  /// changes delivered bytes.
  ThreadPool* shared_pool = nullptr;
  /// Scheduling class and fair-share weight on the shared pool (ignored for
  /// an owned pool — a private pool has exactly one class).
  std::uint64_t pool_key = 0;
  std::uint32_t pool_weight = 1;
  /// Shared decoded-sample cache (see DecodeCache). Null disables caching.
  /// Must outlive the pipeline. Bit-transparent by contract, so also not
  /// part of the config fingerprint.
  DecodeCache* decode_cache = nullptr;
};

struct Batch {
  std::vector<codec::TensorF16> samples;
  /// Epoch-order position (index into this pipeline's order) of each entry
  /// in `samples`, skip-aware: a policy-skipped sample leaves no entry here,
  /// so order_positions.size() == samples.size(). sciprep::shard maps these
  /// rank-local positions onto global stream positions.
  std::vector<std::uint64_t> order_positions;
  std::uint64_t bytes_at_rest = 0;  // stored size of the batch's samples
  std::uint64_t epoch = 0;
  std::uint64_t index_in_epoch = 0;

  [[nodiscard]] int size() const { return static_cast<int>(samples.size()); }
};

/// Aggregate pipeline counters, assembled on demand from the metrics
/// registry (stats() is a snapshot, not a live reference — every field is the
/// corresponding pipeline.* metric's current value). Sample/batch/byte/skip/
/// fallback counters advance when a batch is *delivered* by next_batch(), not
/// while it is being assembled, so a stats() snapshot is always consistent
/// with the delivered batch sequence even with a prefetch in flight.
struct PipelineStats {
  std::uint64_t samples = 0;           // delivered (excludes skipped)
  std::uint64_t batches = 0;
  std::uint64_t bytes_at_rest = 0;     // stored bytes of delivered samples
  std::uint64_t samples_skipped = 0;   // quarantined by kSkipSample
  std::uint64_t retries = 0;           // transient-failure re-attempts (live)
  std::uint64_t fallbacks = 0;         // GPU→CPU baseline re-decodes
  bool degraded = false;               // any recovery event has fired
  double decode_cpu_seconds = 0;   // baseline preprocess / gunzip / cpu decode
  double decode_gpu_seconds = 0;   // SimGpu wall time
  sim::KernelStats gpu;            // accumulated kernel counters
};

class DataPipeline {
 public:
  /// `codec` must outlive the pipeline and match the dataset's workload; it
  /// is also used for the baseline path (reference_preprocess). `gpu` is
  /// required when decode_placement is kGpu.
  DataPipeline(const InMemoryDataset& dataset, const codec::SampleCodec& codec,
               PipelineConfig config, sim::SimGpu* gpu = nullptr);
  ~DataPipeline();

  DataPipeline(const DataPipeline&) = delete;
  DataPipeline& operator=(const DataPipeline&) = delete;

  /// Reset to the start of `epoch` (reshuffles under the epoch-derived seed).
  /// Per-epoch recovery state — the error budget, the epoch quarantine, and
  /// the prefetch cursor — resets with it, so every epoch re-attempts every
  /// sample with a full budget. An in-flight prefetch from the previous
  /// epoch is cancelled and drained, never delivered.
  void start_epoch(std::uint64_t epoch);

  /// Produce the next batch; false at epoch end. Throws CancelledError when
  /// config.cancel is cancelled.
  bool next_batch(Batch& batch);

  /// Decode one sample through the configured path (exposed for benches that
  /// time single-sample decode). Fault-injection gates apply; the recovery
  /// policy does not — failures throw.
  [[nodiscard]] codec::TensorF16 decode_sample(std::size_t index) const;

  /// Crash-consistent progress snapshot at a delivered-batch boundary. An
  /// in-flight prefetch is completed and parked (the next next_batch() call
  /// delivers it); its work is NOT part of the snapshot, so a pipeline
  /// resumed from it re-produces that batch bit-identically. Pair with
  /// guard::write_snapshot / guard::Checkpointer for atomic persistence.
  [[nodiscard]] guard::Snapshot snapshot();

  /// Restore progress from `snapshot` (taken by a pipeline with the same
  /// dataset, config, and injector seed — enforced via the snapshot's config
  /// fingerprint; mismatch throws ConfigError). After resume() the pipeline
  /// delivers the bit-identical remaining batch sequence an uninterrupted
  /// run would have, and its delivered counters (minus live retry counters)
  /// end the run equal to the uninterrupted run's. Call on a freshly
  /// constructed pipeline: the snapshot's counter deltas are *added* to the
  /// backing registry.
  void resume(const guard::Snapshot& snapshot);

  /// Append `tail` to the current epoch's order without disturbing progress:
  /// an in-flight prefetch is completed and parked (like snapshot()), then
  /// the new positions become visible to subsequent next_batch() calls —
  /// including after next_batch() already returned false for an exhausted
  /// order. This is elastic re-sharding's survivor half: the coordinator
  /// appends a dead rank's undelivered sample ids here, and the delivered
  /// prefix keeps its positions, so augmentation and injection decisions
  /// (keyed by sample id, not position) are unchanged. Ids must be
  /// < dataset size (ConfigError otherwise).
  void extend_epoch_order(const std::vector<std::size_t>& tail);

  /// Snapshot of the aggregate counters, assembled from the registry.
  [[nodiscard]] PipelineStats stats() const;
  [[nodiscard]] std::size_t batches_per_epoch() const;

  /// Current epoch / delivered-position cursor / order length — read by the
  /// shard coordinator to compute a dead rank's undelivered remainder.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] std::size_t order_size() const noexcept {
    return order_.size();
  }

  /// Sample ids quarantined by the kSkipSample policy, sorted ascending and
  /// de-duplicated, accumulated across the pipeline's lifetime (the same
  /// at-rest-corrupt record re-skips every epoch without growing this list).
  /// Deterministic for a fixed (pipeline seed, injector seed) pair
  /// regardless of worker count or prefetch.
  [[nodiscard]] std::vector<std::size_t> quarantine() const;

  /// Sample ids quarantined in the current epoch only (sorted, de-duplicated;
  /// cleared by start_epoch). Lets callers verify that an epoch restart
  /// really re-attempted previously skipped samples.
  [[nodiscard]] std::vector<std::size_t> epoch_quarantine() const;

  /// The registry backing stats(): per-stage latency histograms
  /// (pipeline.stage.*), sample/byte counters (pipeline.*_total), simulated
  /// GPU kernel counters (pipeline.gpu.*), worker-pool telemetry
  /// (pipeline.pool.*), and watchdog counters (guard.*).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *metrics_;
  }

  /// Hash of everything that determines the delivered batch sequence;
  /// stamped into snapshots, checked by resume(), and embedded in
  /// flight-recorder incident files so an incident names the exact run
  /// configuration it happened under.
  [[nodiscard]] std::uint64_t config_fingerprint() const;

 private:
  // Metric handles resolved once at construction; hot paths pay one atomic
  // (counters) or one short critical section (histograms) per event.
  struct Handles {
    explicit Handles(obs::MetricsRegistry& registry);

    obs::Counter& samples;
    obs::Counter& batches;
    obs::Counter& bytes_at_rest;
    obs::Counter& samples_skipped;
    obs::Counter& retries;
    obs::Counter& fallbacks;
    obs::Counter& quarantine_evictions;
    obs::Gauge& degraded;
    obs::Counter& gpu_warps;
    obs::Counter& gpu_bytes_read;
    obs::Counter& gpu_bytes_written;
    obs::Counter& gpu_lockstep_ops;
    obs::Counter& gpu_divergent_branches;
    obs::Histogram& shuffle_seconds;
    obs::Histogram& decode_seconds;
    obs::Histogram& io_read_seconds;
    obs::Histogram& gunzip_seconds;
    obs::Histogram& ops_seconds;
    obs::Histogram& batch_assemble_seconds;
    obs::Histogram& prefetch_wait_seconds;
    obs::Histogram& decode_gpu_seconds;
    obs::Histogram& retry_backoff_seconds;
  };

  /// Result of one decode attempt under the recovery policy. Workers report
  /// outcomes here instead of bumping shared counters, so all delivered-data
  /// accounting happens on the consumer thread at delivery time.
  struct SlotOutcome {
    std::optional<codec::TensorF16> tensor;  // empty = skipped
    std::uint64_t fallbacks = 0;
    std::uint64_t recovery_events = 0;  // budget units consumed
  };

  /// An assembled range of the epoch order plus its pending accounting,
  /// applied by deliver() when (and only when) the batch reaches the caller.
  struct Assembled {
    Batch batch;
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    std::vector<std::size_t> skipped;  // sample ids skipped in this range
    std::uint64_t fallbacks = 0;
    std::uint64_t recovery_events = 0;
  };

  /// An in-flight prefetch: the claimed range, its cancellation token
  /// (child of config.cancel), and the future computing it.
  struct Pending {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    guard::CancelToken token;
    std::future<Assembled> future;
  };

  Assembled assemble_batch(std::uint64_t first, std::uint64_t count);
  /// Apply an assembled range's accounting (counters, quarantine, consumed
  /// cursor) and hand its batch out. Runs on the consumer thread only.
  Batch deliver(Assembled&& assembled);
  /// Claim the next range (if any) and launch its assembly on a background
  /// thread under a fresh child token.
  void launch_prefetch();
  /// Cancel and drain an in-flight prefetch, discarding its result. The
  /// abandoned range's failure (if any) is swallowed.
  void abandon_pending();
  /// Samples of the next range starting at `at`; 0 at epoch end.
  [[nodiscard]] std::uint64_t take_count(std::uint64_t at) const;
  /// Fetch + decode `index` through the configured path, with fault-injection
  /// gates and stage deadlines applied. `attempt` distinguishes retry draws;
  /// `force_cpu` routes an encoded sample through the CPU decoder (the
  /// kFallback path).
  [[nodiscard]] codec::TensorF16 decode_guarded(std::size_t index, int attempt,
                                                bool force_cpu) const;
  /// decode_guarded wrapped in the fault-policy dispatch.
  [[nodiscard]] SlotOutcome decode_with_recovery(std::size_t index);
  /// Claims one recovery event against the error budget; false = spent.
  [[nodiscard]] bool consume_budget();
  /// Report one incident to config.on_recovery_event (no-op when unset).
  void emit_event(fault::EventKind kind, const char* stage, std::string detail,
                  std::uint64_t sample_index, int attempt) const;

  const InMemoryDataset& dataset_;
  const codec::SampleCodec& codec_;
  PipelineConfig config_;
  sim::SimGpu* gpu_;
  fault::Injector* injector_;       // per-pipeline override or global; may be null
  fault::Site corrupt_site_;        // at-rest corruption site for the format
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when none injected
  obs::MetricsRegistry* metrics_;
  Handles m_;
  // Lazily constructed when config.deadlines.any(); declared before the
  // workers so armed stages on worker threads disarm before it dies.
  std::unique_ptr<guard::Watchdog> watchdog_;
  obs::PoolMetrics pool_metrics_;
  // Declared after pool_metrics_ so the workers (who call the observer) are
  // joined before the observer is destroyed. Null when config.shared_pool
  // multiplexes this pipeline onto an external pool.
  std::unique_ptr<ThreadPool> owned_workers_;
  ThreadPool* workers_;

  std::vector<std::size_t> order_;
  std::uint64_t epoch_ = 0;
  std::uint64_t cursor_ = 0;       // next undelivered+unclaimed position in order_
  std::uint64_t consumed_ = 0;     // positions delivered (or failed) so far
  std::uint64_t batch_index_ = 0;
  std::optional<Pending> pending_;
  // A prefetch completed by snapshot() but not yet delivered; its accounting
  // is still pending, so it is invisible to snapshots.
  std::optional<Assembled> ready_;

  std::atomic<std::uint64_t> recovery_events_{0};  // vs fault_policy.error_budget
  std::atomic<std::uint64_t> skip_events_{0};  // vs fault_policy.quarantine_cap
  std::uint64_t delivered_recovery_ = 0;  // recovery events in delivered batches
  std::vector<std::size_t> quarantine_;        // lifetime skip events
  std::vector<std::size_t> epoch_quarantine_;  // this epoch's skip events
};

}  // namespace sciprep::pipeline
