// In-memory dataset store — the "storage system" of Figure 1.
//
// Holds every sample of a per-node dataset in one of the storage variants the
// paper evaluates: raw TFRecord (CosmoFlow baseline), GZIP TFRecord (the
// conventional-compression baseline), raw h5lite (DeepCAM baseline), or the
// codec-encoded format. Bytes-at-rest per sample drive the data-movement
// model; the pipeline decodes the bytes with the path appropriate to the
// format.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sciprep/codec/codec.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"

namespace sciprep::pipeline {

enum class StorageFormat {
  kRawTfRecord,   // CosmoFlow baseline: one uncompressed TFRecord per sample
  kGzipTfRecord,  // CosmoFlow gzip baseline: per-file GZIP TFRecord
  kRawH5,         // DeepCAM baseline: h5lite container per sample
  kEncoded,       // codec plugin format
};

const char* storage_format_name(StorageFormat format);

class InMemoryDataset {
 public:
  InMemoryDataset(StorageFormat format, std::string workload)
      : format_(format), workload_(std::move(workload)) {}

  void add_sample(Bytes bytes);
  /// Add a sample sharing storage with an earlier one (repeated shards do not
  /// multiply host memory; bytes-at-rest accounting still counts the copy).
  void add_shared_sample(std::size_t source_index);

  [[nodiscard]] StorageFormat format() const noexcept { return format_; }
  [[nodiscard]] const std::string& workload() const noexcept {
    return workload_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] ByteSpan sample(std::size_t index) const {
    return *samples_.at(index);
  }
  [[nodiscard]] std::uint64_t sample_bytes(std::size_t index) const {
    return samples_.at(index)->size();
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }
  [[nodiscard]] std::uint64_t mean_sample_bytes() const {
    return samples_.empty() ? 0 : total_bytes_ / samples_.size();
  }

  // Factory helpers -----------------------------------------------------

  /// CosmoFlow dataset in the requested storage variant. `generate_count`
  /// distinct universes are synthesized and reused cyclically to reach
  /// `count` samples (full-size volumes are expensive to synthesize; reuse
  /// models a node's shard of a larger set without changing byte counts).
  static InMemoryDataset make_cosmo(const data::CosmoGenerator& gen,
                                    std::size_t count, StorageFormat format,
                                    const codec::SampleCodec* codec = nullptr,
                                    std::size_t generate_count = 0);

  /// DeepCAM dataset (raw h5lite or encoded).
  static InMemoryDataset make_cam(const data::CamGenerator& gen,
                                  std::size_t count, StorageFormat format,
                                  const codec::SampleCodec* codec = nullptr,
                                  std::size_t generate_count = 0);

 private:
  StorageFormat format_;
  std::string workload_;
  std::vector<std::shared_ptr<const Bytes>> samples_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace sciprep::pipeline
