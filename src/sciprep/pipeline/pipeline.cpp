#include "sciprep/pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>

#include "sciprep/common/error.hpp"
#include "sciprep/io/tfrecord.hpp"

namespace sciprep::pipeline {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DataPipeline::DataPipeline(const InMemoryDataset& dataset,
                           const codec::SampleCodec& codec,
                           PipelineConfig config, sim::SimGpu* gpu)
    : dataset_(dataset),
      codec_(codec),
      config_(std::move(config)),
      gpu_(gpu),
      workers_(std::max<std::size_t>(1, config_.worker_threads)) {
  if (config_.batch_size < 1) {
    throw ConfigError("pipeline: batch_size must be >= 1");
  }
  if (config_.decode_placement == codec::Placement::kGpu) {
    if (gpu_ == nullptr) {
      throw ConfigError("pipeline: GPU placement requires a SimGpu");
    }
    if (dataset_.format() != StorageFormat::kEncoded) {
      throw ConfigError(
          "pipeline: GPU placement requires the encoded storage format "
          "(raw formats decode on the CPU, as in the unmodified benchmarks)");
    }
  }
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch(0);
}

DataPipeline::~DataPipeline() {
  if (pending_) {
    pending_->wait();  // never abandon an in-flight prefetch
  }
}

void DataPipeline::start_epoch(std::uint64_t epoch) {
  if (pending_) {
    std::future<Batch> ready = std::move(*pending_);
    pending_.reset();
    try {
      ready.get();
    } catch (...) {
      // The abandoned prefetch's failure belongs to the previous epoch.
    }
  }
  epoch_ = epoch;
  cursor_ = 0;
  batch_index_ = 0;
  std::iota(order_.begin(), order_.end(), 0);
  if (config_.shuffle) {
    Rng rng(config_.seed * 0x9E3779B9u + epoch + 1);
    for (std::size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng.next_below(i)]);
    }
  }
}

std::size_t DataPipeline::batches_per_epoch() const {
  const std::size_t n = dataset_.size();
  const auto b = static_cast<std::size_t>(config_.batch_size);
  return config_.drop_last ? n / b : (n + b - 1) / b;
}

codec::TensorF16 DataPipeline::decode_sample(std::size_t index) const {
  const ByteSpan stored = dataset_.sample(index);
  switch (dataset_.format()) {
    case StorageFormat::kRawTfRecord: {
      const auto records = io::TfRecordReader::read_all(stored);
      if (records.size() != 1) {
        throw_format("pipeline: expected 1 record per sample file, got {}",
                     records.size());
      }
      return codec_.reference_preprocess(records.front());
    }
    case StorageFormat::kGzipTfRecord: {
      const Bytes plain = io::gunzip_tfrecord_stream(stored);
      const auto records = io::TfRecordReader::read_all(plain);
      if (records.size() != 1) {
        throw_format("pipeline: expected 1 record per sample file, got {}",
                     records.size());
      }
      return codec_.reference_preprocess(records.front());
    }
    case StorageFormat::kRawH5:
      return codec_.reference_preprocess(stored);
    case StorageFormat::kEncoded:
      if (config_.decode_placement == codec::Placement::kGpu) {
        return codec_.decode_gpu(stored, *gpu_);
      }
      return codec_.decode_cpu(stored);
  }
  throw ConfigError("pipeline: unhandled storage format");
}

Batch DataPipeline::assemble_batch(std::uint64_t first, std::uint64_t count) {
  Batch batch;
  batch.samples.resize(count);
  batch.epoch = epoch_;

  std::mutex stats_mutex;
  double cpu_seconds = 0;

  auto decode_one = [&](std::size_t i) {
    const std::size_t index = order_[first + i];
    const double t0 = now_seconds();
    codec::TensorF16 tensor = decode_sample(index);
    // Augmentations run on the decode worker, seeded per (epoch, position)
    // so reruns of an epoch are bit-identical.
    if (!config_.ops.empty()) {
      Rng rng = Rng(config_.seed).fork((epoch_ << 24) ^ (first + i));
      for (const auto& op : config_.ops) {
        op->apply(tensor, rng);
      }
    }
    const double dt = now_seconds() - t0;
    batch.samples[i] = std::move(tensor);
    std::lock_guard lock(stats_mutex);
    cpu_seconds += dt;
  };

  if (config_.decode_placement == codec::Placement::kGpu) {
    // The (one) simulated device processes decode kernels serially.
    const std::uint64_t gpu_wall0 = 0;
    (void)gpu_wall0;
    const sim::KernelStats before = gpu_->lifetime_stats();
    for (std::size_t i = 0; i < count; ++i) {
      decode_one(i);
    }
    const sim::KernelStats after = gpu_->lifetime_stats();
    std::lock_guard lock(stats_mutex);
    stats_.gpu.bytes_read += after.bytes_read - before.bytes_read;
    stats_.gpu.bytes_written += after.bytes_written - before.bytes_written;
    stats_.gpu.lockstep_ops += after.lockstep_ops - before.lockstep_ops;
    stats_.gpu.divergent_branches +=
        after.divergent_branches - before.divergent_branches;
    stats_.gpu.warps += after.warps - before.warps;
    stats_.gpu.wall_seconds += after.wall_seconds - before.wall_seconds;
    stats_.decode_gpu_seconds += after.wall_seconds - before.wall_seconds;
  } else {
    workers_.parallel_for(count, decode_one);
    stats_.decode_cpu_seconds += cpu_seconds;
  }

  for (std::size_t i = 0; i < count; ++i) {
    batch.bytes_at_rest += dataset_.sample_bytes(order_[first + i]);
  }
  stats_.samples += count;
  stats_.bytes_at_rest += batch.bytes_at_rest;
  ++stats_.batches;
  return batch;
}

bool DataPipeline::next_batch(Batch& batch) {
  const std::uint64_t n = dataset_.size();
  const auto b = static_cast<std::uint64_t>(config_.batch_size);

  auto take_count = [&](std::uint64_t at) -> std::uint64_t {
    if (at >= n) return 0;
    const std::uint64_t remaining = n - at;
    if (remaining < b && config_.drop_last) return 0;
    return std::min(b, remaining);
  };

  Batch result;
  if (pending_) {
    // Clear the slot before get(): if the worker threw, the exception
    // rethrows here and the pipeline must not hold a consumed future.
    std::future<Batch> ready = std::move(*pending_);
    pending_.reset();
    result = ready.get();
  } else {
    const std::uint64_t count = take_count(cursor_);
    if (count == 0) return false;
    result = assemble_batch(cursor_, count);
    cursor_ += count;
  }
  result.index_in_epoch = batch_index_++;

  // Kick off the next batch's decode while the caller trains on this one.
  if (config_.prefetch) {
    const std::uint64_t count = take_count(cursor_);
    if (count > 0) {
      const std::uint64_t at = cursor_;
      cursor_ += count;
      pending_ = std::async(std::launch::async, [this, at, count] {
        return assemble_batch(at, count);
      });
    }
  }

  batch = std::move(result);
  return true;
}

}  // namespace sciprep::pipeline
