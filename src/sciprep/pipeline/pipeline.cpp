#include "sciprep/pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "sciprep/common/error.hpp"
#include "sciprep/io/tfrecord.hpp"
#include "sciprep/obs/obs.hpp"

namespace sciprep::pipeline {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

fault::Site corrupt_site_for(StorageFormat format) {
  switch (format) {
    case StorageFormat::kRawTfRecord:
    case StorageFormat::kGzipTfRecord:
      return fault::Site::kTfrecordPayloadCrc;
    case StorageFormat::kRawH5:
      return fault::Site::kH5ChunkCrc;
    case StorageFormat::kEncoded:
      return fault::Site::kCodecDecode;
  }
  return fault::Site::kCodecDecode;
}

}  // namespace

DataPipeline::Handles::Handles(obs::MetricsRegistry& registry)
    : samples(registry.counter("pipeline.samples_total")),
      batches(registry.counter("pipeline.batches_total")),
      bytes_at_rest(registry.counter("pipeline.bytes_at_rest_total")),
      samples_skipped(registry.counter("pipeline.samples_skipped_total")),
      retries(registry.counter("pipeline.retries_total")),
      fallbacks(registry.counter("pipeline.fallbacks_total")),
      degraded(registry.gauge("pipeline.degraded")),
      gpu_warps(registry.counter("pipeline.gpu.warps_total")),
      gpu_bytes_read(registry.counter("pipeline.gpu.bytes_read_total")),
      gpu_bytes_written(registry.counter("pipeline.gpu.bytes_written_total")),
      gpu_lockstep_ops(registry.counter("pipeline.gpu.lockstep_ops_total")),
      gpu_divergent_branches(
          registry.counter("pipeline.gpu.divergent_branches_total")),
      shuffle_seconds(registry.histogram("pipeline.stage.shuffle_seconds")),
      decode_seconds(registry.histogram("pipeline.stage.decode_seconds")),
      ops_seconds(registry.histogram("pipeline.stage.ops_seconds")),
      batch_assemble_seconds(
          registry.histogram("pipeline.stage.batch_assemble_seconds")),
      prefetch_wait_seconds(
          registry.histogram("pipeline.stage.prefetch_wait_seconds")),
      decode_gpu_seconds(
          registry.histogram("pipeline.stage.decode_gpu_seconds")),
      retry_backoff_seconds(
          registry.histogram("pipeline.stage.retry_backoff_seconds")) {}

DataPipeline::DataPipeline(const InMemoryDataset& dataset,
                           const codec::SampleCodec& codec,
                           PipelineConfig config, sim::SimGpu* gpu)
    : dataset_(dataset),
      codec_(codec),
      config_(std::move(config)),
      gpu_(gpu),
      injector_(config_.injector != nullptr ? config_.injector
                                            : fault::Injector::global()),
      corrupt_site_(corrupt_site_for(dataset.format())),
      owned_metrics_(config_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : owned_metrics_.get()),
      m_(*metrics_),
      pool_metrics_(*metrics_, "pipeline.pool"),
      workers_(std::max<std::size_t>(1, config_.worker_threads)) {
  if (config_.batch_size < 1) {
    throw ConfigError("pipeline: batch_size must be >= 1");
  }
  workers_.set_observer(&pool_metrics_);
  if (config_.decode_placement == codec::Placement::kGpu) {
    if (gpu_ == nullptr) {
      throw ConfigError("pipeline: GPU placement requires a SimGpu");
    }
    if (dataset_.format() != StorageFormat::kEncoded) {
      throw ConfigError(
          "pipeline: GPU placement requires the encoded storage format "
          "(raw formats decode on the CPU, as in the unmodified benchmarks)");
    }
  }
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch(0);
}

DataPipeline::~DataPipeline() {
  if (pending_) {
    pending_->wait();  // never abandon an in-flight prefetch
  }
}

void DataPipeline::start_epoch(std::uint64_t epoch) {
  if (pending_) {
    std::future<Batch> ready = std::move(*pending_);
    pending_.reset();
    try {
      ready.get();
    } catch (...) {
      // The abandoned prefetch's failure belongs to the previous epoch.
    }
  }
  epoch_ = epoch;
  cursor_ = 0;
  batch_index_ = 0;
  std::iota(order_.begin(), order_.end(), 0);
  if (config_.shuffle) {
    SCIPREP_OBS_SPAN("pipeline.shuffle", "pipeline");
    const double t0 = now_seconds();
    Rng rng(config_.seed * 0x9E3779B9u + epoch + 1);
    for (std::size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng.next_below(i)]);
    }
    m_.shuffle_seconds.record(now_seconds() - t0);
  }
}

std::size_t DataPipeline::batches_per_epoch() const {
  const std::size_t n = dataset_.size();
  const auto b = static_cast<std::size_t>(config_.batch_size);
  return config_.drop_last ? n / b : (n + b - 1) / b;
}

codec::TensorF16 DataPipeline::decode_sample(std::size_t index) const {
  return decode_guarded(index, /*attempt=*/0, /*force_cpu=*/false);
}

codec::TensorF16 DataPipeline::decode_guarded(std::size_t index, int attempt,
                                              bool force_cpu) const {
  SCIPREP_OBS_SPAN("pipeline.decode", "pipeline");
  ByteSpan stored = dataset_.sample(index);
  Bytes scratch;
  std::uint64_t op = index;
  if (injector_ != nullptr) {
    // Transient faults are keyed on (epoch, attempt, sample) so every retry
    // is a fresh draw; at-rest corruption is keyed on the sample id alone,
    // modelling a record that is bad on disk — the same sample fails the
    // same way on every read, in every epoch, under any thread schedule.
    op = (epoch_ << 40) ^ (static_cast<std::uint64_t>(attempt) << 32) ^ index;
    injector_->on_operation(fault::Site::kIoRead, op);
    stored = injector_->mutate(corrupt_site_, index, stored, scratch);
  }
  switch (dataset_.format()) {
    case StorageFormat::kRawTfRecord: {
      const auto records = io::TfRecordReader::read_all(stored);
      if (records.size() != 1) {
        throw_format("pipeline: expected 1 record per sample file, got {}",
                     records.size());
      }
      return codec_.reference_preprocess(records.front());
    }
    case StorageFormat::kGzipTfRecord: {
      Bytes plain;
      {
        SCIPREP_OBS_SPAN("pipeline.gunzip", "pipeline");
        plain = io::gunzip_tfrecord_stream(stored);
      }
      const auto records = io::TfRecordReader::read_all(plain);
      if (records.size() != 1) {
        throw_format("pipeline: expected 1 record per sample file, got {}",
                     records.size());
      }
      return codec_.reference_preprocess(records.front());
    }
    case StorageFormat::kRawH5:
      return codec_.reference_preprocess(stored);
    case StorageFormat::kEncoded:
      if (!force_cpu && config_.decode_placement == codec::Placement::kGpu) {
        if (injector_ != nullptr) {
          injector_->on_operation(fault::Site::kGpuLaunch, op);
        }
        return codec_.decode_gpu(stored, *gpu_);
      }
      return codec_.decode_cpu(stored);
  }
  throw ConfigError("pipeline: unhandled storage format");
}

bool DataPipeline::consume_budget() {
  return recovery_events_.fetch_add(1, std::memory_order_relaxed) <
         config_.fault_policy.error_budget;
}

std::optional<codec::TensorF16> DataPipeline::decode_with_recovery(
    std::size_t index) {
  const fault::FaultPolicy& policy = config_.fault_policy;
  int attempt = 0;
  for (;;) {
    try {
      return decode_guarded(index, attempt, /*force_cpu=*/false);
    } catch (const std::exception& e) {
      const ErrorClass cls = classify(e);
      fault::Action action = cls == ErrorClass::kTransient ? policy.on_transient
                             : cls == ErrorClass::kCorrupt ? policy.on_corrupt
                                                           : fault::Action::kFail;
      if (action == fault::Action::kRetry) {
        if (attempt + 1 < policy.retry.max_attempts) {
          if (!consume_budget()) throw;  // budget spent: escalate to failure
          const double backoff =
              policy.retry.backoff_seconds *
              std::pow(policy.retry.backoff_multiplier, attempt);
          if (backoff > 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          }
          m_.retry_backoff_seconds.record(backoff);
          m_.retries.add(1);
          m_.degraded.set(1);
          ++attempt;
          continue;
        }
        action = policy.on_retry_exhausted;
      }
      if (action == fault::Action::kFallback) {
        // The only fallback decode path today is GPU placement → the CPU
        // decoder over the same stored bytes. Raw formats already decode on
        // the CPU baseline, so for them the fallback degrades to a skip.
        const bool can_fallback =
            dataset_.format() == StorageFormat::kEncoded &&
            config_.decode_placement == codec::Placement::kGpu;
        if (can_fallback) {
          if (!consume_budget()) throw;
          m_.fallbacks.add(1);
          m_.degraded.set(1);
          try {
            return decode_guarded(index, attempt, /*force_cpu=*/true);
          } catch (const std::exception&) {
            // The baseline path failed too (e.g. the record itself is
            // corrupt): quarantine below.
          }
        }
        action = fault::Action::kSkipSample;
      }
      if (action == fault::Action::kSkipSample) {
        if (!consume_budget()) throw;
        m_.samples_skipped.add(1);
        m_.degraded.set(1);
        {
          const std::lock_guard<std::mutex> lock(quarantine_mutex_);
          quarantine_.push_back(index);
        }
        return std::nullopt;
      }
      throw;  // kFail, config/fatal classes, or budget escalation
    }
  }
}

Batch DataPipeline::assemble_batch(std::uint64_t first, std::uint64_t count) {
  SCIPREP_OBS_SPAN_NAMED(assemble_span, "pipeline.batch_assemble", "pipeline");
  if (assemble_span.active()) {
    assemble_span.set_args_json(
        fmt("{{\"first\": {}, \"count\": {}, \"epoch\": {}}}", first, count,
            epoch_));
  }
  const double assemble_t0 = now_seconds();

  Batch batch;
  batch.epoch = epoch_;
  // Decode into per-slot optionals: a policy-skipped sample leaves a hole,
  // and the batch is compacted afterwards preserving epoch order.
  std::vector<std::optional<codec::TensorF16>> slots(count);

  auto decode_one = [&](std::size_t i) {
    const std::size_t index = order_[first + i];
    const double t0 = now_seconds();
    std::optional<codec::TensorF16> tensor = decode_with_recovery(index);
    const double t1 = now_seconds();
    m_.decode_seconds.record(t1 - t0);
    if (!tensor) {
      return;  // skipped: already counted and quarantined
    }
    // Augmentations run on the decode worker, seeded per (epoch, position)
    // so reruns of an epoch are bit-identical.
    if (!config_.ops.empty()) {
      SCIPREP_OBS_SPAN("pipeline.ops", "pipeline");
      Rng rng = Rng(config_.seed).fork((epoch_ << 24) ^ (first + i));
      for (const auto& op : config_.ops) {
        op->apply(*tensor, rng);
      }
      m_.ops_seconds.record(now_seconds() - t1);
    }
    slots[i] = std::move(tensor);
  };

  if (config_.decode_placement == codec::Placement::kGpu) {
    // The (one) simulated device processes decode kernels serially.
    const sim::KernelStats before = gpu_->lifetime_stats();
    for (std::size_t i = 0; i < count; ++i) {
      decode_one(i);
    }
    const sim::KernelStats after = gpu_->lifetime_stats();
    m_.gpu_bytes_read.add(after.bytes_read - before.bytes_read);
    m_.gpu_bytes_written.add(after.bytes_written - before.bytes_written);
    m_.gpu_lockstep_ops.add(after.lockstep_ops - before.lockstep_ops);
    m_.gpu_divergent_branches.add(after.divergent_branches -
                                  before.divergent_branches);
    m_.gpu_warps.add(after.warps - before.warps);
    m_.decode_gpu_seconds.record(after.wall_seconds - before.wall_seconds);
  } else {
    workers_.parallel_for(count, decode_one);
  }

  batch.samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!slots[i]) continue;
    batch.samples.push_back(std::move(*slots[i]));
    batch.bytes_at_rest += dataset_.sample_bytes(order_[first + i]);
  }
  m_.samples.add(batch.samples.size());
  m_.bytes_at_rest.add(batch.bytes_at_rest);
  if (!batch.samples.empty()) {
    // A fully-skipped range produces no batch; next_batch() rolls on to the
    // next range, so don't count a phantom one.
    m_.batches.add(1);
  }
  m_.batch_assemble_seconds.record(now_seconds() - assemble_t0);
  return batch;
}

std::vector<std::size_t> DataPipeline::quarantine() const {
  std::vector<std::size_t> ids;
  {
    const std::lock_guard<std::mutex> lock(quarantine_mutex_);
    ids = quarantine_;
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

PipelineStats DataPipeline::stats() const {
  PipelineStats s;
  s.samples = m_.samples.value();
  s.batches = m_.batches.value();
  s.bytes_at_rest = m_.bytes_at_rest.value();
  s.samples_skipped = m_.samples_skipped.value();
  s.retries = m_.retries.value();
  s.fallbacks = m_.fallbacks.value();
  s.degraded = m_.degraded.value() != 0;
  if (config_.decode_placement == codec::Placement::kGpu) {
    s.decode_gpu_seconds = m_.decode_gpu_seconds.sum();
    s.gpu.wall_seconds = s.decode_gpu_seconds;
    s.gpu.warps = m_.gpu_warps.value();
    s.gpu.bytes_read = m_.gpu_bytes_read.value();
    s.gpu.bytes_written = m_.gpu_bytes_written.value();
    s.gpu.lockstep_ops = m_.gpu_lockstep_ops.value();
    s.gpu.divergent_branches = m_.gpu_divergent_branches.value();
  } else {
    // Decode and augmentation both burn host CPU on the worker pool.
    s.decode_cpu_seconds =
        m_.decode_seconds.sum() + m_.ops_seconds.sum();
  }
  return s;
}

bool DataPipeline::next_batch(Batch& batch) {
  const std::uint64_t n = dataset_.size();
  const auto b = static_cast<std::uint64_t>(config_.batch_size);

  auto take_count = [&](std::uint64_t at) -> std::uint64_t {
    if (at >= n) return 0;
    const std::uint64_t remaining = n - at;
    if (remaining < b && config_.drop_last) return 0;
    return std::min(b, remaining);
  };

  // Loop: a range whose samples were all skipped by policy yields an empty
  // batch, which is dropped here and the next range pulled instead.
  for (;;) {
    Batch result;
    if (pending_) {
      // Move the future out of the slot before get(): if the prefetch worker
      // threw, the exception rethrows here and the pipeline must not be left
      // holding a consumed future — the failed range counts as consumed and
      // the next call continues with the ranges after it.
      std::future<Batch> ready = std::move(*pending_);
      pending_.reset();
      SCIPREP_OBS_SPAN("pipeline.prefetch_wait", "pipeline");
      const double t0 = now_seconds();
      result = ready.get();
      m_.prefetch_wait_seconds.record(now_seconds() - t0);
    } else {
      const std::uint64_t count = take_count(cursor_);
      if (count == 0) return false;
      const std::uint64_t at = cursor_;
      // Claim the range before assembling (mirroring the prefetch path): if
      // assemble_batch throws under a kFail policy, the bad range must not
      // be retried forever on the next call.
      cursor_ += count;
      result = assemble_batch(at, count);
    }

    // Kick off the next batch's decode while the caller trains on this one.
    if (config_.prefetch && !pending_) {
      const std::uint64_t count = take_count(cursor_);
      if (count > 0) {
        const std::uint64_t at = cursor_;
        cursor_ += count;
        pending_ = std::async(std::launch::async, [this, at, count] {
          return assemble_batch(at, count);
        });
      }
    }

    if (result.samples.empty()) continue;  // fully-skipped range
    result.index_in_epoch = batch_index_++;
    batch = std::move(result);
    return true;
  }
}

}  // namespace sciprep::pipeline
