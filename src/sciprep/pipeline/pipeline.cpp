#include "sciprep/pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/io/tfrecord.hpp"
#include "sciprep/obs/obs.hpp"

namespace sciprep::pipeline {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Records elapsed time into a histogram on destruction — including exception
// unwind, which matters for the bottleneck analyzer: a stalled io.read that a
// watchdog deadline cancels mid-sleep must still charge its wall time to the
// io.read stage, or the dominant stage would vanish from the report exactly
// when it misbehaves worst.
class StageTimer {
 public:
  explicit StageTimer(obs::Histogram& hist) : hist_(hist), t0_(now_seconds()) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { hist_.record(now_seconds() - t0_); }

 private:
  obs::Histogram& hist_;
  double t0_;
};

fault::Site corrupt_site_for(StorageFormat format) {
  switch (format) {
    case StorageFormat::kRawTfRecord:
    case StorageFormat::kGzipTfRecord:
      return fault::Site::kTfrecordPayloadCrc;
    case StorageFormat::kRawH5:
      return fault::Site::kH5ChunkCrc;
    case StorageFormat::kEncoded:
      return fault::Site::kCodecDecode;
  }
  return fault::Site::kCodecDecode;
}

}  // namespace

DataPipeline::Handles::Handles(obs::MetricsRegistry& registry)
    : samples(registry.counter("pipeline.samples_total")),
      batches(registry.counter("pipeline.batches_total")),
      bytes_at_rest(registry.counter("pipeline.bytes_at_rest_total")),
      samples_skipped(registry.counter("pipeline.samples_skipped_total")),
      retries(registry.counter("pipeline.retries_total")),
      fallbacks(registry.counter("pipeline.fallbacks_total")),
      quarantine_evictions(
          registry.counter("fault.quarantine_evictions_total")),
      degraded(registry.gauge("pipeline.degraded")),
      gpu_warps(registry.counter("pipeline.gpu.warps_total")),
      gpu_bytes_read(registry.counter("pipeline.gpu.bytes_read_total")),
      gpu_bytes_written(registry.counter("pipeline.gpu.bytes_written_total")),
      gpu_lockstep_ops(registry.counter("pipeline.gpu.lockstep_ops_total")),
      gpu_divergent_branches(
          registry.counter("pipeline.gpu.divergent_branches_total")),
      shuffle_seconds(registry.histogram("pipeline.stage.shuffle_seconds")),
      decode_seconds(registry.histogram("pipeline.stage.decode_seconds")),
      io_read_seconds(registry.histogram("pipeline.stage.io_read_seconds")),
      gunzip_seconds(registry.histogram("pipeline.stage.gunzip_seconds")),
      ops_seconds(registry.histogram("pipeline.stage.ops_seconds")),
      batch_assemble_seconds(
          registry.histogram("pipeline.stage.batch_assemble_seconds")),
      prefetch_wait_seconds(
          registry.histogram("pipeline.stage.prefetch_wait_seconds")),
      decode_gpu_seconds(
          registry.histogram("pipeline.stage.decode_gpu_seconds")),
      retry_backoff_seconds(
          registry.histogram("pipeline.stage.retry_backoff_seconds")) {}

DataPipeline::DataPipeline(const InMemoryDataset& dataset,
                           const codec::SampleCodec& codec,
                           PipelineConfig config, sim::SimGpu* gpu)
    : dataset_(dataset),
      codec_(codec),
      config_(std::move(config)),
      gpu_(gpu),
      injector_(config_.injector != nullptr ? config_.injector
                                            : fault::Injector::global()),
      corrupt_site_(corrupt_site_for(dataset.format())),
      owned_metrics_(config_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : owned_metrics_.get()),
      m_(*metrics_),
      watchdog_(config_.deadlines.any()
                    ? std::make_unique<guard::Watchdog>(metrics_)
                    : nullptr),
      pool_metrics_(*metrics_, "pipeline.pool"),
      owned_workers_(config_.shared_pool != nullptr
                         ? nullptr
                         : std::make_unique<ThreadPool>(
                               std::max<std::size_t>(1,
                                                     config_.worker_threads))),
      workers_(config_.shared_pool != nullptr ? config_.shared_pool
                                              : owned_workers_.get()) {
  if (config_.batch_size < 1) {
    throw ConfigError("pipeline: batch_size must be >= 1");
  }
  if (owned_workers_) {
    // A shared pool keeps its owner's observer: pool telemetry there belongs
    // to the service multiplexing the tenants, not to any one of them.
    owned_workers_->set_observer(&pool_metrics_);
  }
  if (watchdog_ != nullptr && config_.on_recovery_event) {
    // Deadline expiries are reported here, from the watchdog thread, and
    // nowhere else: the unwinding stage also surfaces them as a retried/
    // skipped TransientError, and reporting both would double-count one
    // incident.
    fault::RecoveryListener listener = config_.on_recovery_event;
    watchdog_->set_expiry_callback(
        [listener](const char* stage, double elapsed_seconds) {
          fault::RecoveryEvent event;
          event.kind = fault::EventKind::kDeadlineExpired;
          event.stage = stage;
          event.detail =
              fmt("stage deadline expired after {:.3f}s", elapsed_seconds);
          listener(event);
        });
  }
  if (config_.decode_placement == codec::Placement::kGpu) {
    if (gpu_ == nullptr) {
      throw ConfigError("pipeline: GPU placement requires a SimGpu");
    }
    if (dataset_.format() != StorageFormat::kEncoded) {
      throw ConfigError(
          "pipeline: GPU placement requires the encoded storage format "
          "(raw formats decode on the CPU, as in the unmodified benchmarks)");
    }
  }
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch(0);
}

DataPipeline::~DataPipeline() { abandon_pending(); }

void DataPipeline::abandon_pending() {
  if (!pending_) return;
  Pending pending = std::move(*pending_);
  pending_.reset();
  pending.token.cancel("pipeline: prefetched batch abandoned");
  try {
    pending.future.get();  // never abandon a running future
  } catch (...) {
    // The abandoned range's failure belongs to the discarded work.
  }
}

void DataPipeline::start_epoch(std::uint64_t epoch) {
  abandon_pending();
  ready_.reset();
  epoch_ = epoch;
  cursor_ = 0;
  consumed_ = 0;
  batch_index_ = 0;
  // Per-epoch recovery state resets with the epoch: the error budget
  // refills, the epoch quarantine clears, and (via cursor_) every sample —
  // including ones skipped last epoch — is re-attempted. The lifetime
  // quarantine_ is deliberately kept: it records which ids ever skipped.
  recovery_events_.store(0, std::memory_order_relaxed);
  skip_events_.store(0, std::memory_order_relaxed);
  delivered_recovery_ = 0;
  epoch_quarantine_.clear();
  if (config_.epoch_order) {
    SCIPREP_OBS_SPAN("pipeline.shuffle", "pipeline");
    const double t0 = now_seconds();
    order_ = config_.epoch_order(epoch);
    for (const std::size_t id : order_) {
      if (id >= dataset_.size()) {
        throw ConfigError(fmt(
            "pipeline: epoch_order produced sample id {} >= dataset size {}",
            id, dataset_.size()));
      }
    }
    m_.shuffle_seconds.record(now_seconds() - t0);
    return;
  }
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (config_.shuffle) {
    SCIPREP_OBS_SPAN("pipeline.shuffle", "pipeline");
    const double t0 = now_seconds();
    Rng rng(split_seed(config_.seed, epoch, kShuffleStream));
    for (std::size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng.next_below(i)]);
    }
    m_.shuffle_seconds.record(now_seconds() - t0);
  }
}

void DataPipeline::extend_epoch_order(const std::vector<std::size_t>& tail) {
  for (const std::size_t id : tail) {
    if (id >= dataset_.size()) {
      throw ConfigError(
          fmt("pipeline: extend_epoch_order sample id {} >= dataset size {}",
              id, dataset_.size()));
    }
  }
  // Quiesce exactly like snapshot(): the in-flight prefetch claimed a range
  // of the *old* order, so it completes against that order and parks; the
  // appended tail only affects ranges claimed after this call.
  if (pending_) {
    Pending pending = std::move(*pending_);
    pending_.reset();
    try {
      ready_ = pending.future.get();
    } catch (...) {
      consumed_ = pending.first + pending.count;
      throw;
    }
  }
  order_.insert(order_.end(), tail.begin(), tail.end());
}

std::size_t DataPipeline::batches_per_epoch() const {
  const std::size_t n = order_.size();
  const auto b = static_cast<std::size_t>(config_.batch_size);
  return config_.drop_last ? n / b : (n + b - 1) / b;
}

codec::TensorF16 DataPipeline::decode_sample(std::size_t index) const {
  return decode_guarded(index, /*attempt=*/0, /*force_cpu=*/false);
}

codec::TensorF16 DataPipeline::decode_guarded(std::size_t index, int attempt,
                                              bool force_cpu) const {
  SCIPREP_OBS_SPAN("pipeline.decode", "pipeline");
  guard::poll_cancellation();
  // One deadline covers the whole decode attempt; a retry re-arms a fresh
  // token, so an expiry poisons exactly one attempt.
  const guard::StageGuard decode_deadline(watchdog_.get(), "decode",
                                          config_.deadlines.decode_seconds);
  ByteSpan stored;
  Bytes scratch;
  std::uint64_t op = index;
  {
    SCIPREP_OBS_SPAN("pipeline.io_read", "pipeline");
    const StageTimer io_timer(m_.io_read_seconds);
    const guard::StageGuard io_deadline(watchdog_.get(), "io.read",
                                        config_.deadlines.io_read_seconds);
    stored = dataset_.sample(index);
    if (injector_ != nullptr) {
      // Transient faults are keyed on (epoch, attempt, sample) so every retry
      // is a fresh draw; at-rest corruption is keyed on the sample id alone,
      // modelling a record that is bad on disk — the same sample fails the
      // same way on every read, in every epoch, under any thread schedule.
      op = (epoch_ << 40) ^ (static_cast<std::uint64_t>(attempt) << 32) ^ index;
      injector_->on_operation(fault::Site::kIoRead, op);
      stored = injector_->mutate(corrupt_site_, index, stored, scratch);
    }
  }
  switch (dataset_.format()) {
    case StorageFormat::kRawTfRecord: {
      const auto records = io::TfRecordReader::read_all(stored);
      if (records.size() != 1) {
        throw_format("pipeline: expected 1 record per sample file, got {}",
                     records.size());
      }
      return codec_.reference_preprocess(records.front());
    }
    case StorageFormat::kGzipTfRecord: {
      Bytes plain;
      {
        SCIPREP_OBS_SPAN("pipeline.gunzip", "pipeline");
        const StageTimer gunzip_timer(m_.gunzip_seconds);
        const guard::StageGuard gunzip_deadline(
            watchdog_.get(), "gunzip", config_.deadlines.gunzip_seconds);
        plain = io::gunzip_tfrecord_stream(stored);
      }
      const auto records = io::TfRecordReader::read_all(plain);
      if (records.size() != 1) {
        throw_format("pipeline: expected 1 record per sample file, got {}",
                     records.size());
      }
      return codec_.reference_preprocess(records.front());
    }
    case StorageFormat::kRawH5:
      return codec_.reference_preprocess(stored);
    case StorageFormat::kEncoded:
      if (!force_cpu && config_.decode_placement == codec::Placement::kGpu) {
        if (injector_ != nullptr) {
          injector_->on_operation(fault::Site::kGpuLaunch, op);
        }
        return codec_.decode_gpu(stored, *gpu_);
      }
      return codec_.decode_cpu(stored);
  }
  throw ConfigError("pipeline: unhandled storage format");
}

bool DataPipeline::consume_budget() {
  return recovery_events_.fetch_add(1, std::memory_order_relaxed) <
         config_.fault_policy.error_budget;
}

void DataPipeline::emit_event(fault::EventKind kind, const char* stage,
                              std::string detail, std::uint64_t sample_index,
                              int attempt) const {
  if (!config_.on_recovery_event) return;
  fault::RecoveryEvent event;
  event.kind = kind;
  event.stage = stage;
  event.detail = std::move(detail);
  event.sample_index = sample_index;
  event.attempt = attempt;
  config_.on_recovery_event(event);
}

DataPipeline::SlotOutcome DataPipeline::decode_with_recovery(
    std::size_t index) {
  const fault::FaultPolicy& policy = config_.fault_policy;
  SlotOutcome out;
  if (config_.decode_cache != nullptr) {
    // A cache hit replaces the whole fetch+decode; by the DecodeCache
    // contract the bytes are exactly what decode_guarded would produce, so
    // hits are invisible to digests, snapshots, and fingerprints.
    codec::TensorF16 cached;
    if (config_.decode_cache->lookup(index, cached)) {
      out.tensor = std::move(cached);
      return out;
    }
  }
  int attempt = 0;
  for (;;) {
    try {
      out.tensor = decode_guarded(index, attempt, /*force_cpu=*/false);
      if (config_.decode_cache != nullptr) {
        config_.decode_cache->insert(index, *out.tensor);
      }
      return out;
    } catch (const std::exception& e) {
      const ErrorClass cls = classify(e);
      fault::Action action = cls == ErrorClass::kTransient ? policy.on_transient
                             : cls == ErrorClass::kCorrupt ? policy.on_corrupt
                                                           : fault::Action::kFail;
      if (action == fault::Action::kRetry) {
        if (attempt + 1 < policy.retry.max_attempts) {
          if (!consume_budget()) {
            // Budget spent: escalate to failure.
            emit_event(fault::EventKind::kBudgetExhausted, "decode", e.what(),
                       index, attempt);
            throw;
          }
          out.recovery_events += 1;
          emit_event(fault::EventKind::kRetry, "decode", e.what(), index,
                     attempt + 1);
          const double backoff =
              policy.retry.backoff_seconds *
              std::pow(policy.retry.backoff_multiplier, attempt);
          if (backoff > 0) {
            guard::interruptible_sleep(backoff);
          }
          // Retries stay live (not delivery-time): they are spent wall
          // clock, observable while the stall is happening, and exempt from
          // the resume equivalence contract.
          m_.retry_backoff_seconds.record(backoff);
          m_.retries.add(1);
          m_.degraded.set(1);
          ++attempt;
          continue;
        }
        emit_event(fault::EventKind::kRetryExhausted, "decode", e.what(),
                   index, attempt);
        action = policy.on_retry_exhausted;
      }
      if (action == fault::Action::kFallback) {
        // The only fallback decode path today is GPU placement → the CPU
        // decoder over the same stored bytes. Raw formats already decode on
        // the CPU baseline, so for them the fallback degrades to a skip.
        const bool can_fallback =
            dataset_.format() == StorageFormat::kEncoded &&
            config_.decode_placement == codec::Placement::kGpu;
        if (can_fallback) {
          if (!consume_budget()) {
            emit_event(fault::EventKind::kBudgetExhausted, "decode", e.what(),
                       index, attempt);
            throw;
          }
          out.recovery_events += 1;
          out.fallbacks += 1;
          emit_event(fault::EventKind::kFallback, "decode", e.what(), index,
                     attempt);
          m_.degraded.set(1);
          try {
            out.tensor = decode_guarded(index, attempt, /*force_cpu=*/true);
            return out;
          } catch (const std::exception&) {
            // The baseline path failed too (e.g. the record itself is
            // corrupt): quarantine below.
          }
        }
        action = fault::Action::kSkipSample;
      }
      if (action == fault::Action::kSkipSample) {
        if (!consume_budget()) {
          emit_event(fault::EventKind::kBudgetExhausted, "decode", e.what(),
                     index, attempt);
          throw;
        }
        // The quarantine has its own bound: a pathologically corrupt dataset
        // escalates to failure once the epoch's skip count passes the cap,
        // instead of quarantining its way through gigabytes one sample at a
        // time (and growing the quarantine list without limit).
        if (skip_events_.fetch_add(1, std::memory_order_relaxed) >=
            config_.fault_policy.quarantine_cap) {
          emit_event(fault::EventKind::kBudgetExhausted, "decode",
                     fmt("quarantine cap {} exceeded: {}",
                         config_.fault_policy.quarantine_cap, e.what()),
                     index, attempt);
          throw;
        }
        out.recovery_events += 1;
        out.tensor.reset();
        emit_event(fault::EventKind::kSkipSample, "decode", e.what(), index,
                   attempt);
        m_.degraded.set(1);
        return out;  // skipped: quarantined at delivery time
      }
      throw;  // kFail, config/cancelled/fatal classes, or budget escalation
    }
  }
}

DataPipeline::Assembled DataPipeline::assemble_batch(std::uint64_t first,
                                                     std::uint64_t count) {
  SCIPREP_OBS_SPAN_NAMED(assemble_span, "pipeline.batch_assemble", "pipeline");
  if (assemble_span.active()) {
    assemble_span.set_args_json(
        fmt("{{\"first\": {}, \"count\": {}, \"epoch\": {}}}", first, count,
            epoch_));
  }
  guard::poll_cancellation();
  const double assemble_t0 = now_seconds();

  Assembled out;
  out.first = first;
  out.count = count;
  out.batch.epoch = epoch_;
  // Decode into per-slot outcomes: a policy-skipped sample leaves a hole and
  // the batch is compacted afterwards preserving epoch order. Workers write
  // only their own slot — delivered-data accounting happens in deliver(), on
  // the consumer thread, so a crash-consistent snapshot never sees half a
  // batch's counters.
  std::vector<SlotOutcome> slots(count);

  auto decode_one = [&](std::size_t i) {
    const std::size_t index = order_[first + i];
    const double t0 = now_seconds();
    SlotOutcome outcome = decode_with_recovery(index);
    const double t1 = now_seconds();
    m_.decode_seconds.record(t1 - t0);
    // Augmentations run on the decode worker, seeded per (epoch, sample id)
    // via split_seed: reruns of an epoch are bit-identical, and — because
    // the key is the sample's identity, not its position in this pipeline's
    // order — a sample augments identically no matter which rank of a
    // sharded run delivers it, or where re-sharding lands it.
    if (outcome.tensor && !config_.ops.empty()) {
      SCIPREP_OBS_SPAN("pipeline.ops", "pipeline");
      Rng rng(split_seed(config_.seed, epoch_, index));
      for (const auto& op : config_.ops) {
        op->apply(*outcome.tensor, rng);
      }
      m_.ops_seconds.record(now_seconds() - t1);
    }
    slots[i] = std::move(outcome);
  };

  if (config_.decode_placement == codec::Placement::kGpu) {
    // The (one) simulated device processes decode kernels serially.
    const sim::KernelStats before = gpu_->lifetime_stats();
    for (std::size_t i = 0; i < count; ++i) {
      decode_one(i);
    }
    const sim::KernelStats after = gpu_->lifetime_stats();
    m_.gpu_bytes_read.add(after.bytes_read - before.bytes_read);
    m_.gpu_bytes_written.add(after.bytes_written - before.bytes_written);
    m_.gpu_lockstep_ops.add(after.lockstep_ops - before.lockstep_ops);
    m_.gpu_divergent_branches.add(after.divergent_branches -
                                  before.divergent_branches);
    m_.gpu_warps.add(after.warps - before.warps);
    m_.decode_gpu_seconds.record(after.wall_seconds - before.wall_seconds);
  } else {
    workers_->parallel_for(count, decode_one, /*grain=*/1, config_.pool_key,
                           config_.pool_weight);
  }

  out.batch.samples.reserve(count);
  out.batch.order_positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SlotOutcome& slot = slots[i];
    out.fallbacks += slot.fallbacks;
    out.recovery_events += slot.recovery_events;
    if (!slot.tensor) {
      out.skipped.push_back(order_[first + i]);
      continue;
    }
    out.batch.samples.push_back(std::move(*slot.tensor));
    out.batch.order_positions.push_back(first + i);
    out.batch.bytes_at_rest += dataset_.sample_bytes(order_[first + i]);
  }
  m_.batch_assemble_seconds.record(now_seconds() - assemble_t0);
  return out;
}

Batch DataPipeline::deliver(Assembled&& assembled) {
  consumed_ = assembled.first + assembled.count;
  m_.samples.add(assembled.batch.samples.size());
  m_.bytes_at_rest.add(assembled.batch.bytes_at_rest);
  if (!assembled.batch.samples.empty()) {
    // A fully-skipped range produces no batch; next_batch() rolls on to the
    // next range, so don't count a phantom one.
    m_.batches.add(1);
  }
  if (!assembled.skipped.empty()) {
    m_.samples_skipped.add(assembled.skipped.size());
    quarantine_.insert(quarantine_.end(), assembled.skipped.begin(),
                       assembled.skipped.end());
    epoch_quarantine_.insert(epoch_quarantine_.end(),
                             assembled.skipped.begin(),
                             assembled.skipped.end());
    // Bound the lifetime list: the same at-rest-corrupt ids re-skip every
    // epoch, so first fold duplicates (keeping first-seen order), then — if
    // genuinely more *distinct* ids ever skipped than the cap — evict the
    // oldest, counting evictions. The per-epoch escalation above makes this
    // a multi-epoch backstop, not the primary defense.
    const std::uint64_t cap = config_.fault_policy.quarantine_cap;
    if (quarantine_.size() > cap) {
      std::vector<std::size_t> seen;
      std::vector<std::size_t> unique;
      unique.reserve(quarantine_.size());
      for (const std::size_t id : quarantine_) {
        const auto it = std::lower_bound(seen.begin(), seen.end(), id);
        if (it != seen.end() && *it == id) continue;
        seen.insert(it, id);
        unique.push_back(id);
      }
      if (unique.size() > cap) {
        const std::size_t evicted = unique.size() - cap;
        unique.erase(unique.begin(),
                     unique.begin() + static_cast<std::ptrdiff_t>(evicted));
        m_.quarantine_evictions.add(evicted);
      }
      quarantine_ = std::move(unique);
    }
  }
  if (assembled.fallbacks > 0) m_.fallbacks.add(assembled.fallbacks);
  delivered_recovery_ += assembled.recovery_events;
  return std::move(assembled.batch);
}

void DataPipeline::launch_prefetch() {
  const std::uint64_t count = take_count(cursor_);
  if (count == 0) return;
  const std::uint64_t at = cursor_;
  cursor_ += count;
  // Each prefetch gets its own child token: the watchdog's prefetch-wait
  // deadline (and abandon_pending) cancel this batch alone, while a
  // config.cancel still unwinds it through the parent link.
  guard::CancelToken token = config_.cancel.child();
  Pending pending;
  pending.first = at;
  pending.count = count;
  pending.token = token;
  pending.future =
      std::async(std::launch::async, [this, at, count, token]() mutable {
        const guard::CancelScope scope(std::move(token));
        return assemble_batch(at, count);
      });
  pending_ = std::move(pending);
}

std::uint64_t DataPipeline::take_count(std::uint64_t at) const {
  const std::uint64_t n = order_.size();
  const auto b = static_cast<std::uint64_t>(config_.batch_size);
  if (at >= n) return 0;
  const std::uint64_t remaining = n - at;
  if (remaining < b && config_.drop_last) return 0;
  return std::min(b, remaining);
}

bool DataPipeline::next_batch(Batch& batch) {
  config_.cancel.check();

  // Loop: a range whose samples were all skipped by policy yields an empty
  // batch, which is dropped here and the next range pulled instead.
  for (;;) {
    Assembled assembled;
    if (ready_) {
      // A prefetch parked by snapshot(); deliver it now.
      assembled = std::move(*ready_);
      ready_.reset();
    } else if (pending_) {
      // Move the pending slot out before get(): if the prefetch worker
      // threw, the exception rethrows here and the pipeline must not be left
      // holding a consumed future — the failed range counts as consumed and
      // the next call continues with the ranges after it.
      Pending pending = std::move(*pending_);
      pending_.reset();
      SCIPREP_OBS_SPAN("pipeline.prefetch_wait", "pipeline");
      // The prefetch-wait deadline cancels the *batch* token: the workers
      // unwind cooperatively (DeadlineError through the per-sample recovery
      // policy), the future completes, and get() returns the recovered —
      // possibly partially skipped — batch. The future is never abandoned.
      std::optional<guard::Watchdog::Armed> armed;
      if (watchdog_ != nullptr && config_.deadlines.prefetch_wait_seconds > 0) {
        armed.emplace(watchdog_->arm("prefetch_wait",
                                     config_.deadlines.prefetch_wait_seconds,
                                     pending.token));
      }
      const double t0 = now_seconds();
      try {
        assembled = pending.future.get();
      } catch (...) {
        consumed_ = pending.first + pending.count;
        throw;
      }
      m_.prefetch_wait_seconds.record(now_seconds() - t0);
    } else {
      const std::uint64_t count = take_count(cursor_);
      if (count == 0) return false;
      const std::uint64_t at = cursor_;
      // Claim the range before assembling (mirroring the prefetch path): if
      // assemble_batch throws under a kFail policy, the bad range must not
      // be retried forever on the next call.
      cursor_ += count;
      const guard::CancelScope scope(config_.cancel);
      try {
        assembled = assemble_batch(at, count);
      } catch (...) {
        consumed_ = at + count;
        throw;
      }
    }

    Batch result = deliver(std::move(assembled));

    // Kick off the next batch's decode while the caller trains on this one.
    if (config_.prefetch && !pending_) {
      launch_prefetch();
    }

    if (result.samples.empty()) continue;  // fully-skipped range
    result.index_in_epoch = batch_index_++;
    batch = std::move(result);
    return true;
  }
}

guard::Snapshot DataPipeline::snapshot() {
  // Quiesce: complete an in-flight prefetch and park it undelivered. Its
  // accounting has not been applied, so the snapshot cuts cleanly at the
  // last delivered batch and a resumed pipeline re-produces the parked
  // batch from the same range.
  if (pending_) {
    Pending pending = std::move(*pending_);
    pending_.reset();
    try {
      ready_ = pending.future.get();
    } catch (...) {
      consumed_ = pending.first + pending.count;
      throw;
    }
  }
  guard::Snapshot s;
  s.config_fingerprint = config_fingerprint();
  s.epoch = epoch_;
  s.cursor = consumed_;
  s.batch_index = batch_index_;
  s.recovery_events = delivered_recovery_;
  s.samples = m_.samples.value();
  s.batches = m_.batches.value();
  s.bytes_at_rest = m_.bytes_at_rest.value();
  s.samples_skipped = m_.samples_skipped.value();
  s.fallbacks = m_.fallbacks.value();
  s.degraded = m_.degraded.value() != 0;
  s.quarantine.assign(quarantine_.begin(), quarantine_.end());
  std::sort(s.quarantine.begin(), s.quarantine.end());
  s.epoch_quarantine.assign(epoch_quarantine_.begin(), epoch_quarantine_.end());
  std::sort(s.epoch_quarantine.begin(), s.epoch_quarantine.end());
  return s;
}

void DataPipeline::resume(const guard::Snapshot& s) {
  if (s.config_fingerprint != config_fingerprint()) {
    emit_event(fault::EventKind::kResumeReject, "resume",
               fmt("snapshot fingerprint {:x} != pipeline fingerprint {:x}",
                   s.config_fingerprint, config_fingerprint()),
               /*sample_index=*/0, /*attempt=*/0);
    throw ConfigError(
        "pipeline: snapshot was taken under a different dataset / pipeline "
        "configuration / injector seed and cannot resume here");
  }
  // Rebuild the epoch's order (a pure function of seed and epoch, or the
  // epoch_order provider) first — the cursor bound is against *that* order's
  // length, which for a sharded rank is its shard, not the whole dataset.
  start_epoch(s.epoch);
  if (s.cursor > order_.size()) {
    throw ConfigError(
        fmt("pipeline: snapshot cursor {} exceeds epoch order size {}",
            s.cursor, order_.size()));
  }
  cursor_ = s.cursor;
  consumed_ = s.cursor;
  batch_index_ = s.batch_index;
  recovery_events_.store(s.recovery_events, std::memory_order_relaxed);
  skip_events_.store(s.epoch_quarantine.size(), std::memory_order_relaxed);
  delivered_recovery_ = s.recovery_events;
  quarantine_.assign(s.quarantine.begin(), s.quarantine.end());
  epoch_quarantine_.assign(s.epoch_quarantine.begin(),
                           s.epoch_quarantine.end());
  // Restore the delivered-counter deltas so the resumed run's final stats
  // equal the uninterrupted run's (retry counters excepted by contract).
  m_.samples.add(s.samples);
  m_.batches.add(s.batches);
  m_.bytes_at_rest.add(s.bytes_at_rest);
  m_.samples_skipped.add(s.samples_skipped);
  m_.fallbacks.add(s.fallbacks);
  if (s.degraded) m_.degraded.set(1);
}

std::uint64_t DataPipeline::config_fingerprint() const {
  std::uint64_t fp = 0x53474B5053455141ULL;
  auto mix = [&fp](std::uint64_t v) {
    std::uint64_t state = fp ^ v;
    fp = splitmix64(state);
  };
  mix(dataset_.size());
  mix(static_cast<std::uint64_t>(dataset_.format()));
  mix(static_cast<std::uint64_t>(config_.batch_size));
  mix(config_.seed);
  mix(config_.shuffle ? 1 : 0);
  mix(config_.drop_last ? 1 : 0);
  mix(static_cast<std::uint64_t>(config_.decode_placement));
  mix(config_.ops.size());
  mix(injector_ != nullptr ? injector_->seed() : 0);
  mix(config_.order_fingerprint);
  return fp;
}

std::vector<std::size_t> DataPipeline::quarantine() const {
  std::vector<std::size_t> ids = quarantine_;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<std::size_t> DataPipeline::epoch_quarantine() const {
  std::vector<std::size_t> ids = epoch_quarantine_;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

PipelineStats DataPipeline::stats() const {
  PipelineStats s;
  s.samples = m_.samples.value();
  s.batches = m_.batches.value();
  s.bytes_at_rest = m_.bytes_at_rest.value();
  s.samples_skipped = m_.samples_skipped.value();
  s.retries = m_.retries.value();
  s.fallbacks = m_.fallbacks.value();
  s.degraded = m_.degraded.value() != 0;
  if (config_.decode_placement == codec::Placement::kGpu) {
    s.decode_gpu_seconds = m_.decode_gpu_seconds.sum();
    s.gpu.wall_seconds = s.decode_gpu_seconds;
    s.gpu.warps = m_.gpu_warps.value();
    s.gpu.bytes_read = m_.gpu_bytes_read.value();
    s.gpu.bytes_written = m_.gpu_bytes_written.value();
    s.gpu.lockstep_ops = m_.gpu_lockstep_ops.value();
    s.gpu.divergent_branches = m_.gpu_divergent_branches.value();
  } else {
    // Decode and augmentation both burn host CPU on the worker pool.
    s.decode_cpu_seconds =
        m_.decode_seconds.sum() + m_.ops_seconds.sum();
  }
  return s;
}

}  // namespace sciprep::pipeline
