// Post-decode tensor operators (the "simple operators provided by the
// framework" of §VI): data augmentation applied to decoded FP16 tensors
// before batching. Each op is deterministic given the per-sample RNG the
// pipeline hands it, so epochs are reproducible under a fixed seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sciprep/codec/codec.hpp"
#include "sciprep/common/rng.hpp"

namespace sciprep::pipeline {

class TensorOp {
 public:
  virtual ~TensorOp() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void apply(codec::TensorF16& tensor, Rng& rng) const = 0;
};

/// Random horizontal flip for CHW image tensors ([c,h,w]) — the classic
/// DeepCAM augmentation. Flips byte labels consistently.
class RandomFlipX final : public TensorOp {
 public:
  explicit RandomFlipX(double probability = 0.5);
  [[nodiscard]] std::string name() const override { return "random-flip-x"; }
  void apply(codec::TensorF16& tensor, Rng& rng) const override;

 private:
  double probability_;
};

/// Random vertical flip for CHW image tensors.
class RandomFlipY final : public TensorOp {
 public:
  explicit RandomFlipY(double probability = 0.5);
  [[nodiscard]] std::string name() const override { return "random-flip-y"; }
  void apply(codec::TensorF16& tensor, Rng& rng) const override;

 private:
  double probability_;
};

/// Multiply every value by a scalar (e.g. rescaling ablations).
class ScaleOp final : public TensorOp {
 public:
  explicit ScaleOp(float factor) : factor_(factor) {}
  [[nodiscard]] std::string name() const override { return "scale"; }
  void apply(codec::TensorF16& tensor, Rng& rng) const override;

 private:
  float factor_;
};

using OpList = std::vector<std::shared_ptr<const TensorOp>>;

}  // namespace sciprep::pipeline
