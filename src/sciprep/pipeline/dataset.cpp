#include "sciprep/pipeline/dataset.hpp"

#include "sciprep/common/error.hpp"
#include "sciprep/io/tfrecord.hpp"

namespace sciprep::pipeline {

const char* storage_format_name(StorageFormat format) {
  switch (format) {
    case StorageFormat::kRawTfRecord:
      return "tfrecord";
    case StorageFormat::kGzipTfRecord:
      return "tfrecord+gzip";
    case StorageFormat::kRawH5:
      return "h5";
    case StorageFormat::kEncoded:
      return "encoded";
  }
  return "?";
}

void InMemoryDataset::add_sample(Bytes bytes) {
  total_bytes_ += bytes.size();
  samples_.push_back(std::make_shared<const Bytes>(std::move(bytes)));
}

void InMemoryDataset::add_shared_sample(std::size_t source_index) {
  auto shared = samples_.at(source_index);
  total_bytes_ += shared->size();
  samples_.push_back(std::move(shared));
}

namespace {

Bytes cosmo_stored_bytes(const io::CosmoSample& sample, StorageFormat format,
                         const codec::SampleCodec* codec) {
  switch (format) {
    case StorageFormat::kRawTfRecord: {
      io::TfRecordWriter w;
      w.append(sample.serialize());
      return std::move(w).take();
    }
    case StorageFormat::kGzipTfRecord: {
      io::TfRecordWriter w;
      w.append(sample.serialize());
      return io::gzip_tfrecord_stream(w.stream());
    }
    case StorageFormat::kEncoded: {
      SCIPREP_ASSERT(codec != nullptr);
      return codec->encode(sample.serialize());
    }
    case StorageFormat::kRawH5:
      break;
  }
  throw ConfigError("cosmo dataset: unsupported storage format");
}

Bytes cam_stored_bytes(const io::CamSample& sample, StorageFormat format,
                       const codec::SampleCodec* codec) {
  switch (format) {
    case StorageFormat::kRawH5:
      return sample.serialize();
    case StorageFormat::kEncoded:
      SCIPREP_ASSERT(codec != nullptr);
      return codec->encode(sample.serialize());
    case StorageFormat::kRawTfRecord:
    case StorageFormat::kGzipTfRecord:
      break;
  }
  throw ConfigError("cam dataset: unsupported storage format");
}

}  // namespace

InMemoryDataset InMemoryDataset::make_cosmo(const data::CosmoGenerator& gen,
                                            std::size_t count,
                                            StorageFormat format,
                                            const codec::SampleCodec* codec,
                                            std::size_t generate_count) {
  if (generate_count == 0) generate_count = count;
  generate_count = std::min(generate_count, count);
  InMemoryDataset ds(format, "cosmoflow");
  for (std::size_t i = 0; i < generate_count; ++i) {
    ds.add_sample(cosmo_stored_bytes(gen.generate(i), format, codec));
  }
  for (std::size_t i = generate_count; i < count; ++i) {
    ds.add_shared_sample(i % generate_count);
  }
  return ds;
}

InMemoryDataset InMemoryDataset::make_cam(const data::CamGenerator& gen,
                                          std::size_t count,
                                          StorageFormat format,
                                          const codec::SampleCodec* codec,
                                          std::size_t generate_count) {
  if (generate_count == 0) generate_count = count;
  generate_count = std::min(generate_count, count);
  InMemoryDataset ds(format, "deepcam");
  for (std::size_t i = 0; i < generate_count; ++i) {
    ds.add_sample(cam_stored_bytes(gen.generate(i), format, codec));
  }
  for (std::size_t i = generate_count; i < count; ++i) {
    ds.add_shared_sample(i % generate_count);
  }
  return ds;
}

}  // namespace sciprep::pipeline
