#include "sciprep/pipeline/ops.hpp"

#include <algorithm>

#include "sciprep/common/error.hpp"

namespace sciprep::pipeline {

namespace {

/// Shape check shared by the flips: [c,h,w] image tensor.
void require_chw(const codec::TensorF16& tensor, const char* op) {
  if (tensor.shape.size() != 3) {
    throw ConfigError(
        fmt("{}: requires a [c,h,w] tensor, got rank {}", op,
            tensor.shape.size()));
  }
}

}  // namespace

RandomFlipX::RandomFlipX(double probability) : probability_(probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw ConfigError("random-flip-x: probability must be in [0,1]");
  }
}

void RandomFlipX::apply(codec::TensorF16& tensor, Rng& rng) const {
  require_chw(tensor, "random-flip-x");
  if (rng.next_double() >= probability_) return;
  const auto c = tensor.shape[0];
  const auto h = tensor.shape[1];
  const auto w = tensor.shape[2];
  for (std::uint64_t ci = 0; ci < c; ++ci) {
    for (std::uint64_t y = 0; y < h; ++y) {
      Half* row = tensor.values.data() + (ci * h + y) * w;
      std::reverse(row, row + w);
    }
  }
  if (tensor.byte_labels.size() == h * w) {
    for (std::uint64_t y = 0; y < h; ++y) {
      auto* row = tensor.byte_labels.data() + y * w;
      std::reverse(row, row + w);
    }
  }
}

RandomFlipY::RandomFlipY(double probability) : probability_(probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw ConfigError("random-flip-y: probability must be in [0,1]");
  }
}

void RandomFlipY::apply(codec::TensorF16& tensor, Rng& rng) const {
  require_chw(tensor, "random-flip-y");
  if (rng.next_double() >= probability_) return;
  const auto c = tensor.shape[0];
  const auto h = tensor.shape[1];
  const auto w = tensor.shape[2];
  std::vector<Half> row(w);
  for (std::uint64_t ci = 0; ci < c; ++ci) {
    Half* plane = tensor.values.data() + ci * h * w;
    for (std::uint64_t y = 0; y < h / 2; ++y) {
      Half* top = plane + y * w;
      Half* bottom = plane + (h - 1 - y) * w;
      std::swap_ranges(top, top + w, bottom);
    }
  }
  if (tensor.byte_labels.size() == h * w) {
    std::vector<std::uint8_t> tmp(w);
    for (std::uint64_t y = 0; y < h / 2; ++y) {
      auto* top = tensor.byte_labels.data() + y * w;
      auto* bottom = tensor.byte_labels.data() + (h - 1 - y) * w;
      std::swap_ranges(top, top + w, bottom);
    }
  }
}

void ScaleOp::apply(codec::TensorF16& tensor, Rng& /*rng*/) const {
  for (Half& value : tensor.values) {
    value = Half(value.to_float() * factor_);
  }
}

}  // namespace sciprep::pipeline
