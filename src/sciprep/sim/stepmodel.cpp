#include "sciprep/sim/stepmodel.hpp"

#include <algorithm>
#include <cmath>

#include "sciprep/common/error.hpp"

namespace sciprep::sim {

StepBreakdown model_step(const StepScenario& scenario,
                         const WorkloadProfile& workload) {
  SCIPREP_ASSERT(scenario.batch_size >= 1);
  SCIPREP_ASSERT(scenario.cpu_workers_per_gpu >= 1);
  const PlatformModel& plat = scenario.platform;

  StepBreakdown b;

  // --- IO stage: where does the dataset live in steady state? -------------
  DatasetSpec dataset;
  dataset.bytes_per_sample = workload.bytes_at_rest;
  dataset.samples_per_node = scenario.samples_per_node;
  dataset.staged = scenario.staged;
  b.residency = steady_residency(plat, dataset);
  b.io_read = sample_read_seconds(plat, b.residency, workload.bytes_at_rest,
                                  plat.gpus_per_node);

  // --- Host stage: CPU work fanned across the GPU's worker threads. -------
  b.host_work = plat.scale_cpu_seconds(workload.host_seconds) /
                static_cast<double>(scenario.cpu_workers_per_gpu);

  // --- Device stage --------------------------------------------------------
  // H2D moves the whole batch in one pageable copy; larger batches ride the
  // bandwidth curve (Figure 8's "performance generally improves with batch
  // size" for the baseline). GPUs on the same PCIe switch share the link.
  const std::uint64_t batch_bytes =
      workload.bytes_to_device * static_cast<std::uint64_t>(scenario.batch_size);
  b.h2d = plat.transfer_seconds(Link::kHostToDevice, batch_bytes) *
          plat.h2d_share / static_cast<double>(scenario.batch_size);

  if (workload.gpu_decode_host_seconds > 0) {
    b.gpu_decode = plat.scale_gpu_seconds(workload.gpu_decode_host_seconds,
                                          workload.gpu_decode_bandwidth_bound);
  }

  // Effective mixed-precision throughput: geometric mean of FP32 and
  // tensor-core peaks (see WorkloadProfile::model_flop_efficiency).
  const double peak_flops =
      std::sqrt(plat.gpu.fp32_tflops * plat.gpu.tensorcore_tflops) * 1e12;
  b.gpu_compute = workload.model_train_flops /
                      (peak_flops * workload.model_flop_efficiency) +
                  scenario.device_overhead_per_batch_seconds /
                      static_cast<double>(scenario.batch_size);

  // Allreduce: a per-step synchronization whose effective cost grows when the
  // host is saturated (Fig 9: the plugin "reduc[es] the fluctuations captured
  // during the model synchronization allreduce"). Contention multiplies the
  // base cost by how much the host stage overruns the device stage.
  const double device_core = b.h2d + b.gpu_decode + b.gpu_compute;
  const double contention =
      device_core > 0 ? std::min(2.0, std::max(0.0, b.host_work / device_core - 1.0))
                      : 0.0;
  b.allreduce = scenario.allreduce_base_seconds * (1.0 + contention) /
                static_cast<double>(scenario.batch_size);
  return b;
}

double node_samples_per_second(const StepScenario& scenario,
                               const StepBreakdown& breakdown) {
  const double per_sample = breakdown.step_seconds();
  SCIPREP_ASSERT(per_sample > 0);
  return scenario.platform.gpus_per_node / per_sample;
}

}  // namespace sciprep::sim
