// Platform models for the three evaluation systems (paper Table I).
//
// The paper's speedups are governed by where bytes sit and which link they
// must cross. Each PlatformModel carries the Table I hardware parameters plus
// the measured pageable-PCIe bandwidth curve quoted in §IX.A, and converts
// (bytes, link) into seconds. GPU kernel and CPU preprocessing times measured
// live on the build host are rescaled by the platform's relative compute
// factors, so benches reproduce cross-platform *shape* rather than absolute
// testbed numbers (see DESIGN.md §2, §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sciprep::sim {

/// Which link a transfer crosses (Figure 1's numbered hops).
enum class Link {
  kPfsToNode,    // parallel file system -> node (unstaged streaming)
  kNvmeToHost,   // node-local NVMe -> host DRAM (staged)
  kHostToDevice, // PCIe or NVLink host -> GPU
  kDeviceMemory, // GPU HBM (on-device)
};

/// Host <-> device interconnect kind.
enum class HostLink { kPcie3, kPcie4, kNvlink };

struct GpuSpec {
  std::string name;              // "V100" / "A100"
  int sm_count = 80;
  double mem_capacity_gb = 16;
  double mem_bandwidth_tbps = 0.9;   // HBM TB/s
  double fp32_tflops = 15.7;
  double tensorcore_tflops = 120;
  double l2_cache_mb = 6;
};

/// One node of an evaluated system (Table I column).
struct PlatformModel {
  std::string name;
  std::string cpu_name;
  double cpu_freq_ghz = 2.4;
  double host_memory_gb = 384;
  HostLink host_link = HostLink::kPcie3;
  GpuSpec gpu;
  int gpus_per_node = 8;
  double nvme_capacity_tb = 1.6;
  double nvme_read_gibps = 3.2;   // shared across the node's GPUs
  double pfs_read_gibps = 2.0;    // shared filesystem streaming bandwidth
  /// GPUs sharing one host-link (PCIe switch) — concurrent feeding divides
  /// the pageable bandwidth (§II: "Feeding four GPUs concurrently makes the
  /// cost for moving a byte across the PCIe bus 224x"). NVLink links are
  /// per-GPU (share 1).
  int h2d_share = 4;
  /// Relative host-CPU throughput for preprocessing work (build host = 1.0
  /// reference; Summit's P9 runs the Python-era stack slower per §IX.A).
  double cpu_perf_factor = 1.0;

  /// Effective host->device bandwidth in GiB/s for a transfer of `bytes`
  /// using pageable memory (deep-learning frameworks use pageable buffers,
  /// §IX.A footnote). Reproduces the measured 4-8 GiB/s (V100 node) and
  /// 6-8 GiB/s (A100 node) plateau for 4-64 MiB transfers, and NVLink's ~3x
  /// PCIe3 bandwidth on Summit.
  [[nodiscard]] double h2d_bandwidth_gibps(std::size_t bytes) const;

  /// Seconds to move `bytes` across `link` (single stream; callers divide
  /// shared-link bandwidth across concurrent GPUs where applicable).
  [[nodiscard]] double transfer_seconds(Link link, std::size_t bytes) const;

  /// Scale a GPU kernel duration measured on the build host to this GPU.
  /// `bytes_touched` selects bandwidth-bound scaling; compute-bound kernels
  /// scale with SM count x frequency proxy (fp32 TFLOPs).
  [[nodiscard]] double scale_gpu_seconds(double host_seconds,
                                         bool bandwidth_bound) const;

  /// Scale a CPU duration measured on the build host to this platform.
  [[nodiscard]] double scale_cpu_seconds(double host_seconds) const;
};

/// Table I presets.
PlatformModel summit();
PlatformModel cori_v100();
PlatformModel cori_a100();
std::vector<PlatformModel> all_platforms();

/// Reference compute throughput of the host that *measures* kernels; used as
/// the denominator in scale_*_seconds. Calibrated once at startup.
struct HostCalibration {
  double cpu_gflops = 8.0;       // single-core proxy on the build host
  double effective_gpu_tflops = 0.05;  // SimGpu throughput proxy
  double effective_gpu_tbps = 0.02;    // SimGpu memory throughput proxy
};
HostCalibration& host_calibration();

}  // namespace sciprep::sim
