#include "sciprep/sim/memhier.hpp"

#include <algorithm>

#include "sciprep/common/error.hpp"

namespace sciprep::sim {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kHostCacheShare = 0.70;
constexpr double kNvmeUsableShare = 0.90;
}  // namespace

const char* residency_name(Residency residency) {
  switch (residency) {
    case Residency::kPfs:
      return "pfs";
    case Residency::kNvme:
      return "nvme";
    case Residency::kHostMem:
      return "dram";
  }
  return "?";
}

Residency steady_residency(const PlatformModel& platform,
                           const DatasetSpec& dataset) {
  const double bytes = static_cast<double>(dataset.total_bytes());
  const double host_budget =
      platform.host_memory_gb * 1e9 * kHostCacheShare;
  if (bytes <= host_budget) {
    return Residency::kHostMem;
  }
  if (dataset.staged &&
      bytes <= platform.nvme_capacity_tb * 1e12 * kNvmeUsableShare) {
    return Residency::kNvme;
  }
  return Residency::kPfs;
}

double sample_read_seconds(const PlatformModel& platform, Residency residency,
                           std::uint64_t bytes, int concurrent_readers) {
  SCIPREP_ASSERT(concurrent_readers >= 1);
  double gibps = 0;
  switch (residency) {
    case Residency::kHostMem:
      // DRAM hit: page-cache copy at memory speed; effectively free relative
      // to the other stages but not zero.
      gibps = 40.0;
      break;
    case Residency::kNvme:
      gibps = platform.nvme_read_gibps / concurrent_readers;
      break;
    case Residency::kPfs:
      gibps = platform.pfs_read_gibps / concurrent_readers;
      break;
  }
  constexpr double kLatency = 50e-6;  // file-open / request latency
  return kLatency + static_cast<double>(bytes) / (gibps * kGiB);
}

double staging_seconds(const PlatformModel& platform,
                       const DatasetSpec& dataset) {
  if (!dataset.staged) return 0.0;
  const double bytes = static_cast<double>(dataset.total_bytes());
  // Staging streams from PFS and writes to NVMe; PFS read dominates.
  return bytes / (platform.pfs_read_gibps * kGiB);
}

}  // namespace sciprep::sim
