#include "sciprep/sim/simgpu.hpp"

#include <chrono>
#include <mutex>
#include <vector>

#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/guard/cancel.hpp"
#include "sciprep/obs/obs.hpp"

namespace sciprep::sim {

void KernelStats::merge(const KernelStats& other) noexcept {
  wall_seconds += other.wall_seconds;
  warps += other.warps;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  lockstep_ops += other.lockstep_ops;
  divergent_branches += other.divergent_branches;
}

SimGpu::SimGpu(Config config, ThreadPool* pool)
    : config_(config), pool_(pool != nullptr ? pool : &global_pool()) {
  SCIPREP_ASSERT(config_.sm_count > 0 && config_.warps_per_sm > 0);
}

KernelStats SimGpu::launch(std::size_t warp_count,
                           const std::function<void(Warp&)>& kernel) {
  KernelStats stats;
  stats.warps = warp_count;
  if (warp_count == 0) return stats;

  SCIPREP_OBS_SPAN_NAMED(kernel_span, "sim.kernel", "sim");
  guard::poll_cancellation();
  const auto start = std::chrono::steady_clock::now();

  std::mutex merge_mutex;
  // Chunk warps into waves the way an SM scheduler would: each task body
  // runs a contiguous batch of warps, bounding task overhead for large grids.
  const std::size_t grain = std::max<std::size_t>(
      1, warp_count / (static_cast<std::size_t>(config_.sm_count) *
                       static_cast<std::size_t>(config_.warps_per_sm)));
  pool_->parallel_for(
      warp_count,
      [&](std::size_t warp_id) {
        // Cancellation point per warp: a cancelled/deadline-expired launch
        // unwinds within one warp body instead of running the grid dry. The
        // pool propagates the submitter's ambient token to its workers.
        guard::poll_cancellation();
        Warp warp(warp_id);
        kernel(warp);
        std::lock_guard lock(merge_mutex);
        stats.bytes_read += warp.bytes_read();
        stats.bytes_written += warp.bytes_written();
        stats.lockstep_ops += warp.lockstep_ops();
        stats.divergent_branches += warp.divergent_branches();
      },
      grain);

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  lifetime_.merge(stats);
  if (kernel_span.active()) {
    kernel_span.set_args_json(
        fmt("{{\"warps\": {}, \"bytes_read\": {}, \"bytes_written\": {}, "
            "\"lockstep_ops\": {}, \"divergent_branches\": {}, "
            "\"wall_ms\": {:.6f}}}",
            stats.warps, stats.bytes_read, stats.bytes_written,
            stats.lockstep_ops, stats.divergent_branches,
            stats.wall_seconds * 1e3));
  }
  return stats;
}

}  // namespace sciprep::sim
