#include "sciprep/sim/platform.hpp"

#include <algorithm>
#include <cmath>

namespace sciprep::sim {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Peak pageable-path bandwidth by link kind (GiB/s), from §IX.A: V100 node
/// measured 12.4 GB/s peak pinned but 4-8 GiB/s pageable for sample-sized
/// transfers; A100 node 24.7 peak, 6-8 pageable; Summit NVLink ~3x PCIe3.
struct H2dCurve {
  double floor_gibps;   // tiny transfers (latency bound)
  double plateau_gibps; // 4-64 MiB pageable transfers
  double peak_gibps;    // very large / pinned-like transfers
};

H2dCurve curve_for(HostLink link) {
  switch (link) {
    case HostLink::kPcie3:
      return {1.5, 6.0, 8.0};
    case HostLink::kPcie4:
      return {2.0, 7.0, 9.0};
    case HostLink::kNvlink:
      return {4.0, 18.0, 22.0};
  }
  return {1.0, 4.0, 6.0};
}
}  // namespace

double PlatformModel::h2d_bandwidth_gibps(std::size_t bytes) const {
  const H2dCurve c = curve_for(host_link);
  const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
  if (mib <= 1.0) return c.floor_gibps;
  if (mib <= 4.0) {
    // Ramp from floor to plateau across 1-4 MiB.
    const double t = (mib - 1.0) / 3.0;
    return c.floor_gibps + t * (c.plateau_gibps - c.floor_gibps);
  }
  if (mib <= 64.0) return c.plateau_gibps;
  // Pageable copies amortize pinning overheads beyond 64 MiB.
  const double t = std::min(1.0, (mib - 64.0) / 192.0);
  return c.plateau_gibps + t * (c.peak_gibps - c.plateau_gibps);
}

double PlatformModel::transfer_seconds(Link link, std::size_t bytes) const {
  constexpr double kLatency = 20e-6;  // per-transfer software latency
  double gibps = 1.0;
  switch (link) {
    case Link::kPfsToNode:
      gibps = pfs_read_gibps;
      break;
    case Link::kNvmeToHost:
      gibps = nvme_read_gibps;
      break;
    case Link::kHostToDevice:
      gibps = h2d_bandwidth_gibps(bytes);
      break;
    case Link::kDeviceMemory:
      gibps = gpu.mem_bandwidth_tbps * 1000.0 / 1.073741824;  // TB/s -> GiB/s
      break;
  }
  return kLatency + static_cast<double>(bytes) / (gibps * kGiB);
}

double PlatformModel::scale_gpu_seconds(double host_seconds,
                                        bool bandwidth_bound) const {
  const HostCalibration& cal = host_calibration();
  if (bandwidth_bound) {
    const double target_tbps = gpu.mem_bandwidth_tbps;
    return host_seconds * (cal.effective_gpu_tbps / target_tbps);
  }
  const double target_tflops = gpu.fp32_tflops;
  return host_seconds * (cal.effective_gpu_tflops / target_tflops);
}

double PlatformModel::scale_cpu_seconds(double host_seconds) const {
  return host_seconds / cpu_perf_factor;
}

PlatformModel summit() {
  PlatformModel p;
  p.name = "Summit";
  p.cpu_name = "IBM P9";
  p.cpu_freq_ghz = 3.1;
  p.host_memory_gb = 512;
  p.host_link = HostLink::kNvlink;
  p.gpu = {"V100", 80, 16, 0.9, 15.7, 120, 6};
  p.gpus_per_node = 6;
  p.nvme_capacity_tb = 1.0;  // Table I lists 1.0 TB for Summit's burst buffer
  p.nvme_read_gibps = 5.5;
  p.pfs_read_gibps = 0.8;  // effective per-node GPFS streaming for sample files
  p.h2d_share = 1;  // NVLink is per-GPU
  // §IX.A: "the ability of host processor to process the software stack ...
  // appears to be lower for Summit as compared with CoriGPU"; the 42 P9
  // cores per 6 GPUs partly compensate via more loader workers (benches set
  // cpu_workers_per_gpu accordingly).
  p.cpu_perf_factor = 0.85;
  return p;
}

PlatformModel cori_v100() {
  PlatformModel p;
  p.name = "Cori-V100";
  p.cpu_name = "Intel Xeon Gold 6148";
  p.cpu_freq_ghz = 2.4;
  p.host_memory_gb = 384;
  p.host_link = HostLink::kPcie3;
  p.gpu = {"V100", 80, 16, 0.9, 15.7, 120, 6};
  p.gpus_per_node = 8;
  p.nvme_capacity_tb = 1.6;
  p.nvme_read_gibps = 3.2;
  p.pfs_read_gibps = 0.5;  // effective per-node Lustre streaming for sample files
  p.cpu_perf_factor = 1.0;
  return p;
}

PlatformModel cori_a100() {
  PlatformModel p;
  p.name = "Cori-A100";
  p.cpu_name = "AMD EPYC 7742";
  p.cpu_freq_ghz = 2.25;
  p.host_memory_gb = 1056;
  p.host_link = HostLink::kPcie4;
  p.gpu = {"A100", 104, 40, 1.6, 19.5, 312, 40};
  p.gpus_per_node = 8;
  p.nvme_capacity_tb = 15.4;
  p.nvme_read_gibps = 24.3;
  p.pfs_read_gibps = 0.5;  // effective per-node Lustre streaming for sample files
  p.cpu_perf_factor = 1.1;
  return p;
}

std::vector<PlatformModel> all_platforms() {
  return {summit(), cori_v100(), cori_a100()};
}

HostCalibration& host_calibration() {
  static HostCalibration cal;
  return cal;
}

}  // namespace sciprep::sim
