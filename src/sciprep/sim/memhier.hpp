// Memory-hierarchy residency model (Figure 1 of the paper).
//
// Decides where a per-node dataset sits in steady state (after the first
// epoch) given its size, the platform's capacities, and whether the job
// staged data to node-local NVMe — and what each subsequent sample read
// costs. This is the mechanism behind the paper's headline effect: a smaller
// encoded sample lets the dataset fit one level closer to the accelerator,
// swapping a ~3 GiB/s NVMe (or ~2 GiB/s PFS) read for a DRAM hit.
#pragma once

#include <cstdint>

#include "sciprep/sim/platform.hpp"

namespace sciprep::sim {

/// Storage level a dataset resides at in steady state.
enum class Residency { kPfs, kNvme, kHostMem };

const char* residency_name(Residency residency);

struct DatasetSpec {
  std::uint64_t bytes_per_sample = 0;
  std::uint64_t samples_per_node = 0;
  bool staged = false;  // copied to node-local NVMe before training

  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_per_sample * samples_per_node;
  }
};

/// Steady-state residency of `dataset` on `platform`.
///
/// Host DRAM caching uses the framework's file-cache share: the paper's small
/// DeepCAM set (1536 x ~56 MiB ~ 86 GB) fits Cori's 384 GB, the large set
/// (12288 samples ~ 690 GB) does not. We budget 70% of host memory for the
/// sample cache (the rest holds frameworks, buffers and the model).
Residency steady_residency(const PlatformModel& platform,
                           const DatasetSpec& dataset);

/// Seconds to deliver one sample's `bytes` into host memory during a steady-
/// state epoch, when `concurrent_readers` GPUs share the node's links.
double sample_read_seconds(const PlatformModel& platform, Residency residency,
                           std::uint64_t bytes, int concurrent_readers);

/// Seconds for the one-time staging copy (PFS -> NVMe) of the whole dataset,
/// zero when unstaged.
double staging_seconds(const PlatformModel& platform,
                       const DatasetSpec& dataset);

}  // namespace sciprep::sim
