// Per-step time composition for the throughput figures (Figs 8, 10, 11) and
// the breakdown figures (Figs 9, 12).
//
// A training step is a three-stage pipeline that overlaps across batches:
//   IO stage     — read the sample's bytes-at-rest from wherever the dataset
//                  resides (DRAM / NVMe / PFS, shared across the node's GPUs),
//   host stage   — CPU-side work (baseline preprocessing, gunzip, or CPU
//                  plugin decode), fanned across the worker threads feeding
//                  each GPU,
//   device stage — H2D transfer (pageable-bandwidth curve) + on-GPU decode
//                  (for the GPU plugin) + model compute + gradient allreduce.
// Steady-state per-sample time is the maximum of the three stages; the
// breakdown records each component so the Fig 9/12 stacked profiles fall out
// of the same model.
//
// Host/GPU work is *measured* on the build host (see apps/measure) and
// rescaled by the PlatformModel factors; transfers and residency come from
// Table I. See DESIGN.md §5.
#pragma once

#include <algorithm>

#include "sciprep/sim/memhier.hpp"
#include "sciprep/sim/platform.hpp"

namespace sciprep::sim {

/// Per-sample workload characterization (measured on the build host).
struct WorkloadProfile {
  std::uint64_t bytes_at_rest = 0;     // stored size per sample
  std::uint64_t bytes_to_device = 0;   // H2D payload per sample
  double host_seconds = 0;             // CPU work per sample on the build host
  double gpu_decode_host_seconds = 0;  // SimGpu wall per sample (0 = no GPU decode)
  bool gpu_decode_bandwidth_bound = true;
  double model_train_flops = 0;        // fwd+bwd FLOPs per sample
  /// Achieved fraction of the GPU's effective mixed-precision throughput
  /// (the geometric mean of its FP32 and tensor-core peaks — small-batch
  /// mixed-precision training lands between the two, and the resulting
  /// A100/V100 ratio ~1.8x matches the paper's observed "up to 2.2x").
  double model_flop_efficiency = 0.22;
};

struct StepScenario {
  PlatformModel platform;
  std::uint64_t samples_per_node = 0;
  bool staged = false;
  int batch_size = 4;            // per GPU
  int cpu_workers_per_gpu = 4;   // decode threads feeding each GPU
  double allreduce_base_seconds = 8e-3;  // per step, uncontended
  /// Per-batch framework/device launch overhead (kernel launches, Python
  /// dispatch). Benches set this per platform; §IX.A observes a much larger
  /// per-step overhead for the PyTorch stack on Summit's ppc64le.
  double device_overhead_per_batch_seconds = 4e-3;
};

struct StepBreakdown {
  Residency residency = Residency::kHostMem;
  // All values are seconds per *sample* (per-GPU stream).
  double io_read = 0;
  double host_work = 0;
  double h2d = 0;
  double gpu_decode = 0;
  double gpu_compute = 0;
  double allreduce = 0;

  [[nodiscard]] double device_stage() const {
    return h2d + gpu_decode + gpu_compute + allreduce;
  }
  /// Steady-state per-sample seconds under pipelining.
  [[nodiscard]] double step_seconds() const {
    return std::max({io_read, host_work, device_stage()});
  }
};

/// Compose the per-sample step time for one (platform, dataset, workload).
StepBreakdown model_step(const StepScenario& scenario,
                         const WorkloadProfile& workload);

/// Node throughput (samples/s) implied by a breakdown.
double node_samples_per_second(const StepScenario& scenario,
                               const StepBreakdown& breakdown);

}  // namespace sciprep::sim
