// SimGpu — a warp-lockstep execution engine for GPU-style decode kernels.
//
// The build host has no CUDA device, but the paper's GPU decoder design is
// about *structure*: warps of 32 lanes execute in lockstep, control
// divergence serializes, and memory efficiency comes from coalesced
// per-lane accesses. SimGpu lets kernels be written against exactly those
// constraints — a kernel is a function over a Warp, lanes are iterated in
// lockstep order, and the engine accounts bytes moved, lane operations and
// divergent branches — while actually executing on host threads.
//
// Timing: the engine measures wall time and the per-kernel traffic counters;
// PlatformModel::scale_gpu_seconds() converts the measurement to a target
// GPU. Counters also let benches report whether a kernel was bandwidth- or
// divergence-bound, mirroring the paper's §VI discussion of hierarchical
// warp assignment for the differential decoder.
#pragma once

#include <cstdint>
#include <functional>

#include "sciprep/common/threadpool.hpp"

namespace sciprep::sim {

/// Execution context handed to a kernel, one per scheduled warp.
class Warp {
 public:
  static constexpr int kLanes = 32;

  explicit Warp(std::size_t id) : id_(id) {}

  [[nodiscard]] std::size_t id() const noexcept { return id_; }

  /// Run `f(lane)` for each of the 32 lanes in lockstep order. This is the
  /// shape of a non-divergent warp-wide operation (copy, table lookup,
  /// broadcast).
  template <class F>
  void lanes(F&& f) {
    for (int lane = 0; lane < kLanes; ++lane) {
      f(lane);
    }
    ++lockstep_ops_;
  }

  /// Mark a data-dependent branch that splits the warp: on real hardware the
  /// two paths serialize. Kernels call this when they take per-segment or
  /// per-line special cases so the stats expose divergence pressure.
  void note_divergence() noexcept { ++divergent_branches_; }

  /// Account device-memory traffic attributed to this warp.
  void count_read(std::uint64_t bytes) noexcept { bytes_read_ += bytes; }
  void count_write(std::uint64_t bytes) noexcept { bytes_written_ += bytes; }

  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t lockstep_ops() const noexcept {
    return lockstep_ops_;
  }
  [[nodiscard]] std::uint64_t divergent_branches() const noexcept {
    return divergent_branches_;
  }

 private:
  std::size_t id_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t lockstep_ops_ = 0;
  std::uint64_t divergent_branches_ = 0;
};

/// Aggregate accounting for one kernel launch.
struct KernelStats {
  double wall_seconds = 0;
  std::uint64_t warps = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t lockstep_ops = 0;
  std::uint64_t divergent_branches = 0;

  [[nodiscard]] std::uint64_t bytes_total() const noexcept {
    return bytes_read + bytes_written;
  }
  /// Heuristic: > 4 bytes moved per lockstep lane-op means the kernel is
  /// limited by memory traffic, not ALU work.
  [[nodiscard]] bool bandwidth_bound() const noexcept {
    return lockstep_ops == 0 ||
           bytes_total() > 4 * lockstep_ops * Warp::kLanes;
  }
  void merge(const KernelStats& other) noexcept;
};

/// The engine. SM count bounds the number of concurrently resident warps
/// (occupancy); the actual host parallelism comes from the thread pool.
class SimGpu {
 public:
  struct Config {
    int sm_count = 80;
    int warps_per_sm = 8;  // scheduling granularity, not a hardware limit
  };

  explicit SimGpu(Config config, ThreadPool* pool = nullptr);

  /// Launch `warp_count` warps of `kernel` and block until completion.
  KernelStats launch(std::size_t warp_count,
                     const std::function<void(Warp&)>& kernel);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Cumulative stats across all launches on this engine.
  [[nodiscard]] const KernelStats& lifetime_stats() const noexcept {
    return lifetime_;
  }

 private:
  Config config_;
  ThreadPool* pool_;
  KernelStats lifetime_;
};

}  // namespace sciprep::sim
