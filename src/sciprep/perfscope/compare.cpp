#include "sciprep/perfscope/compare.hpp"

#include <algorithm>
#include <cmath>

#include "sciprep/common/format.hpp"

namespace sciprep::perfscope {

namespace {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double mad_of(const std::vector<double>& values, double median) {
  if (values.size() < 2) return 0;
  std::vector<double> dev;
  dev.reserve(values.size());
  for (const double v : values) dev.push_back(std::fabs(v - median));
  return median_of(std::move(dev));
}

int verdict_rank(Verdict verdict) {
  switch (verdict) {
    case Verdict::kRegressed: return 0;
    case Verdict::kMissing: return 1;
    case Verdict::kImproved: return 2;
    case Verdict::kConfigChanged: return 3;
    case Verdict::kNew: return 4;
    case Verdict::kPass: return 5;
  }
  return 6;
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPass: return "ok";
    case Verdict::kImproved: return "IMPROVED";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kNew: return "new";
    case Verdict::kMissing: return "MISSING";
    case Verdict::kConfigChanged: return "config-changed";
  }
  return "?";
}

std::size_t CompareReport::count(Verdict verdict) const {
  std::size_t n = 0;
  for (const MetricVerdict& v : verdicts) {
    if (v.verdict == verdict) ++n;
  }
  return n;
}

std::size_t CompareReport::regressions() const {
  return count(Verdict::kRegressed) + count(Verdict::kMissing);
}

std::string CompareReport::human_table() const {
  std::string out;
  out += fmt("  {:<26} {:<38} {:>12} {:>12} {:>9} {:>10}  {}\n", "bench",
             "metric", "baseline", "current", "delta", "tolerance", "verdict");
  for (const MetricVerdict& v : verdicts) {
    const double delta_pct =
        v.baseline_median != 0
            ? 100.0 * (v.current - v.baseline_median) / v.baseline_median
            : 0.0;
    out += fmt("  {:<26} {:<38} {:>12.4g} {:>12.4g} {:>8.1f}% {:>10.4g}  {}\n",
               v.bench, v.metric, v.baseline_median, v.current, delta_pct,
               v.tolerance, verdict_name(v.verdict));
  }
  out += fmt(
      "perfcompare: {} regressed, {} missing, {} improved, {} ok, {} new\n",
      count(Verdict::kRegressed), count(Verdict::kMissing),
      count(Verdict::kImproved), count(Verdict::kPass), count(Verdict::kNew));
  return out;
}

CompareReport compare_runs(const std::vector<BenchRun>& history,
                           const BenchRun& current,
                           const CompareOptions& options) {
  CompareReport report;
  const std::size_t first =
      options.max_history > 0 && history.size() > options.max_history
          ? history.size() - options.max_history
          : 0;

  // Baseline shape comes from the most recent history run: those are the
  // benches/metrics the gate insists on seeing again.
  const BenchRun* reference = history.empty() ? nullptr : &history.back();

  auto history_values = [&](const std::string& bench,
                            const std::string& metric,
                            const std::string& fingerprint) {
    std::vector<double> values;
    for (std::size_t i = first; i < history.size(); ++i) {
      const auto bench_it = history[i].benches.find(bench);
      if (bench_it == history[i].benches.end()) continue;
      if (bench_it->second.config_fingerprint != fingerprint) continue;
      const BenchMetric* m = bench_it->second.find_metric(metric);
      if (m != nullptr) values.push_back(m->value);
    }
    return values;
  };

  for (const auto& [bench_name, record] : current.benches) {
    const BenchRecord* base_record = nullptr;
    if (reference != nullptr) {
      const auto it = reference->benches.find(bench_name);
      if (it != reference->benches.end()) base_record = &it->second;
    }
    const bool config_changed =
        base_record != nullptr &&
        base_record->config_fingerprint != record.config_fingerprint;

    for (const BenchMetric& metric : record.metrics) {
      MetricVerdict v;
      v.bench = bench_name;
      v.metric = metric.name;
      v.unit = metric.unit;
      v.better_higher = metric.better_higher;
      v.current = metric.value;
      if (base_record == nullptr) {
        v.verdict = Verdict::kNew;
        report.verdicts.push_back(std::move(v));
        continue;
      }
      if (config_changed) {
        v.verdict = Verdict::kConfigChanged;
        report.verdicts.push_back(std::move(v));
        continue;
      }
      const std::vector<double> values =
          history_values(bench_name, metric.name, record.config_fingerprint);
      if (values.empty()) {
        v.verdict = Verdict::kNew;
        report.verdicts.push_back(std::move(v));
        continue;
      }
      v.history = values.size();
      v.baseline_median = median_of(values);
      v.baseline_mad = mad_of(values, v.baseline_median);
      double tol = options.rel_tol * std::fabs(v.baseline_median);
      if (values.size() >= options.min_history) {
        tol = std::max(tol, options.mad_k * v.baseline_mad);
      }
      tol = std::max(tol, metric.noise_floor);
      v.tolerance = tol;
      const double delta = v.current - v.baseline_median;
      const double signed_delta = metric.better_higher ? delta : -delta;
      if (signed_delta < -tol) {
        v.verdict = Verdict::kRegressed;
      } else if (signed_delta > tol) {
        v.verdict = Verdict::kImproved;
      } else {
        v.verdict = Verdict::kPass;
      }
      report.verdicts.push_back(std::move(v));
    }

    // Metrics the baseline had but the current record lost.
    if (base_record != nullptr && !config_changed) {
      for (const BenchMetric& metric : base_record->metrics) {
        if (record.find_metric(metric.name) != nullptr) continue;
        MetricVerdict v;
        v.bench = bench_name;
        v.metric = metric.name;
        v.unit = metric.unit;
        v.better_higher = metric.better_higher;
        v.baseline_median = metric.value;
        v.verdict =
            options.fail_on_missing ? Verdict::kMissing : Verdict::kPass;
        report.verdicts.push_back(std::move(v));
      }
    }
  }

  // Whole benches that disappeared.
  if (reference != nullptr) {
    for (const auto& [bench_name, base_record] : reference->benches) {
      if (current.benches.find(bench_name) != current.benches.end()) continue;
      for (const BenchMetric& metric : base_record.metrics) {
        MetricVerdict v;
        v.bench = bench_name;
        v.metric = metric.name;
        v.unit = metric.unit;
        v.better_higher = metric.better_higher;
        v.baseline_median = metric.value;
        v.verdict =
            options.fail_on_missing ? Verdict::kMissing : Verdict::kPass;
        report.verdicts.push_back(std::move(v));
      }
    }
  }

  std::stable_sort(report.verdicts.begin(), report.verdicts.end(),
                   [](const MetricVerdict& a, const MetricVerdict& b) {
                     return verdict_rank(a.verdict) < verdict_rank(b.verdict);
                   });
  return report;
}

CompareReport compare_trajectories(const Trajectory& baseline,
                                   const Trajectory& current,
                                   const CompareOptions& options) {
  if (current.empty()) return {};
  return compare_runs(baseline.runs, *current.latest(), options);
}

CompareReport compare_latest(const Trajectory& trajectory,
                             const CompareOptions& options) {
  if (trajectory.runs.size() < 2) return {};
  const std::vector<BenchRun> history(trajectory.runs.begin(),
                                      trajectory.runs.end() - 1);
  return compare_runs(history, trajectory.runs.back(), options);
}

}  // namespace sciprep::perfscope
