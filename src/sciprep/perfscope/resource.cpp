#include "sciprep/perfscope/resource.hpp"

#include <cstdio>
#include <cstring>

#if !defined(SCIPREP_OBS_DISABLED)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/common/sysio.hpp"
#include "sciprep/obs/json.hpp"

namespace sciprep::perfscope {

std::string ResourceSample::to_json() const {
  return fmt(
      "{{\"ok\":{},\"cpu_utime_seconds\":{},\"cpu_stime_seconds\":{},"
      "\"rss_bytes\":{},\"peak_rss_bytes\":{},\"minor_faults\":{},"
      "\"major_faults\":{},\"ctx_voluntary\":{},\"ctx_involuntary\":{},"
      "\"io_read_bytes\":{},\"io_write_bytes\":{},\"threads\":{}}}",
      ok, obs::json_number(cpu_utime_seconds),
      obs::json_number(cpu_stime_seconds), rss_bytes, peak_rss_bytes,
      minor_faults, major_faults, ctx_voluntary, ctx_involuntary,
      io_read_bytes, io_write_bytes, threads);
}

ResourceSampler::ResourceSampler(obs::MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::global()) {}

#if defined(SCIPREP_OBS_DISABLED)

ResourceSample ResourceSampler::sample() { return {}; }

ResourceSample ResourceSampler::publish() { return {}; }

#else

namespace {

/// Read a whole small procfs file into `buf`; returns false when the file is
/// unavailable (non-Linux host, restricted /proc/self/io permissions).
bool slurp(const char* path, std::string& buf) {
  try {
    const Bytes data = sysio::read_file(path);
    buf.assign(data.begin(), data.end());
  } catch (const IoError&) {
    return false;
  }
  return !buf.empty();
}

/// "VmRSS:   12345 kB" -> 12345 * 1024; 0 when the key is absent.
std::uint64_t status_kb(const std::string& status, const char* key) {
  const std::size_t at = status.find(key);
  if (at == std::string::npos) return 0;
  const char* p = status.c_str() + at + std::strlen(key);
  return std::strtoull(p, nullptr, 10) * 1024;
}

/// "read_bytes: 12345" -> 12345; 0 when absent.
std::uint64_t io_field(const std::string& io, const char* key) {
  const std::size_t at = io.find(key);
  if (at == std::string::npos) return 0;
  const char* p = io.c_str() + at + std::strlen(key);
  return std::strtoull(p, nullptr, 10);
}

}  // namespace

ResourceSample ResourceSampler::sample() {
  ResourceSample s;

  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    s.ok = true;
    s.cpu_utime_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                          static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    s.cpu_stime_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                          static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
    // ru_maxrss is KiB on Linux; /proc VmHWM (below) overrides when present.
    s.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
    s.minor_faults = static_cast<std::uint64_t>(usage.ru_minflt);
    s.major_faults = static_cast<std::uint64_t>(usage.ru_majflt);
    s.ctx_voluntary = static_cast<std::uint64_t>(usage.ru_nvcsw);
    s.ctx_involuntary = static_cast<std::uint64_t>(usage.ru_nivcsw);
  }

  std::string buf;
  if (slurp("/proc/self/status", buf)) {
    s.ok = true;
    s.rss_bytes = status_kb(buf, "VmRSS:");
    const std::uint64_t hwm = status_kb(buf, "VmHWM:");
    if (hwm > 0) s.peak_rss_bytes = hwm;
  }
  // The peak can never read below the level (they come from two sources and
  // procfs rounds to KiB; clamp so consumers can rely on the invariant).
  if (s.peak_rss_bytes < s.rss_bytes) s.peak_rss_bytes = s.rss_bytes;

  if (slurp("/proc/self/io", buf)) {
    s.io_read_bytes = io_field(buf, "read_bytes:");
    s.io_write_bytes = io_field(buf, "write_bytes:");
  }

  if (slurp("/proc/self/stat", buf)) {
    // Field 20 (num_threads), counting from 1, after the parenthesized comm
    // which may itself contain spaces — scan from the *last* ')'.
    const std::size_t close = buf.rfind(')');
    if (close != std::string::npos) {
      const char* p = buf.c_str() + close + 1;
      int field = 2;  // the token after ')' is field 3 (state)
      for (const char* q = p; *q != '\0' && field < 20; ++q) {
        if (*q == ' ') {
          ++field;
          if (field == 20) {
            s.threads = std::strtoull(q + 1, nullptr, 10);
          }
        }
      }
    }
  }
  return s;
}

ResourceSample ResourceSampler::publish() {
  const ResourceSample s = sample();
  if (!s.ok) return s;
  auto set = [&](const char* name, std::uint64_t v) {
    registry_->gauge(name).set(static_cast<std::int64_t>(v));
  };
  set("proc.cpu_utime_ms",
      static_cast<std::uint64_t>(s.cpu_utime_seconds * 1e3));
  set("proc.cpu_stime_ms",
      static_cast<std::uint64_t>(s.cpu_stime_seconds * 1e3));
  set("proc.rss_bytes", s.rss_bytes);
  set("proc.rss_peak_bytes", s.peak_rss_bytes);
  set("proc.minor_faults_total", s.minor_faults);
  set("proc.major_faults_total", s.major_faults);
  set("proc.ctx_voluntary_total", s.ctx_voluntary);
  set("proc.ctx_involuntary_total", s.ctx_involuntary);
  set("proc.io_read_bytes", s.io_read_bytes);
  set("proc.io_write_bytes", s.io_write_bytes);
  set("proc.threads", s.threads);
  std::lock_guard lock(mutex_);
  series_.push_back(s);
  if (series_.size() > kMaxSeries) {
    series_.erase(series_.begin(),
                  series_.begin() +
                      static_cast<std::ptrdiff_t>(series_.size() - kMaxSeries));
  }
  return s;
}

#endif  // SCIPREP_OBS_DISABLED

std::vector<ResourceSample> ResourceSampler::series() const {
  std::lock_guard lock(mutex_);
  return series_;
}

std::function<void()> ResourceSampler::exporter_hook() {
  return [this] { publish(); };
}

}  // namespace sciprep::perfscope
