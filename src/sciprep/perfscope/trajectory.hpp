// BENCH_*.json trajectory files (sciprep::perfscope).
//
// A trajectory is the repo's performance memory: every perfbench invocation
// appends one run (a map of bench name -> sciprep.perf.bench.v1 record), so
// the file accumulates the samples/s history that ROADMAP's speedup arc is
// judged against. perfcompare consumes the history to build noise-aware
// (median + MAD) expectations per metric.
//
// Schema `sciprep.perf.trajectory.v1`:
//   {"schema": "...", "runs": [
//      {"run": 1, "unix_time": ..., "label": "...",
//       "benches": {"fig8_deepcam_throughput": {<bench.v1 record>}, ...}},
//      ...]}
//
// Runs are ordered oldest-first; append_run caps the history so the file
// stays reviewable in a repo checkout.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sciprep/perfscope/benchreport.hpp"

namespace sciprep::perfscope {

inline constexpr const char* kTrajectorySchema = "sciprep.perf.trajectory.v1";

/// One perfbench invocation's worth of records.
struct BenchRun {
  std::uint64_t run_index = 0;   // 1-based, assigned by append_run
  std::uint64_t unix_time = 0;   // seconds since epoch (0 = unknown)
  std::string label;             // free-form tag (--label), e.g. a git rev
  std::map<std::string, BenchRecord> benches;
};

struct Trajectory {
  std::vector<BenchRun> runs;  // oldest first

  [[nodiscard]] bool empty() const noexcept { return runs.empty(); }
  [[nodiscard]] const BenchRun* latest() const noexcept {
    return runs.empty() ? nullptr : &runs.back();
  }
};

/// Parse a trajectory file. Returns false when the file is missing,
/// unparseable, or carries a different schema — callers start fresh then.
/// Never throws.
[[nodiscard]] bool load_trajectory(const std::string& path, Trajectory& out);

/// Append `run`, assign its run_index, and drop the oldest runs beyond
/// `max_runs` (0 = unbounded).
void append_run(Trajectory& trajectory, BenchRun run, std::size_t max_runs);

[[nodiscard]] std::string trajectory_to_json(const Trajectory& trajectory);

/// Write atomically (tmp + rename); throws IoError on failure.
void save_trajectory(const std::string& path, const Trajectory& trajectory);

}  // namespace sciprep::perfscope
