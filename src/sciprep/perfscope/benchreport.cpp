#include "sciprep/perfscope/benchreport.hpp"

#include <thread>
#include <utility>

#include <unistd.h>

#include "sciprep/common/buffer.hpp"
#include "sciprep/common/crc.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/insight/internal.hpp"
#include "sciprep/obs/json.hpp"

namespace sciprep::perfscope {

const BenchMetric* BenchRecord::find_metric(const std::string& name) const {
  for (const BenchMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string host_info_json() {
  char hostname[256] = "unknown";
  if (gethostname(hostname, sizeof(hostname)) != 0) {
    hostname[0] = '\0';
  }
  hostname[sizeof(hostname) - 1] = '\0';
  const long page = sysconf(_SC_PAGESIZE);
#if defined(SCIPREP_OBS_DISABLED)
  const bool obs_enabled = false;
#else
  const bool obs_enabled = true;
#endif
  return fmt("{{\"hostname\":\"{}\",\"cores\":{},\"page_size\":{},"
             "\"obs_enabled\":{}}}",
             obs::json_escape(hostname),
             std::thread::hardware_concurrency(), page > 0 ? page : 0,
             obs_enabled);
}

std::string bench_record_to_json(const BenchRecord& record) {
  std::string out;
  out.reserve(2048);
  out += fmt(
      "{{\"schema\":\"{}\",\"bench\":\"{}\",\"host\":{},"
      "\"wall_seconds\":{},\"sim_charged_seconds\":{},\"config\":\"{}\","
      "\"config_fingerprint\":\"{}\"",
      kBenchSchema, obs::json_escape(record.bench), host_info_json(),
      obs::json_number(record.wall_seconds),
      obs::json_number(record.sim_charged_seconds),
      obs::json_escape(record.config),
      obs::json_escape(record.config_fingerprint));
  if (record.has_resources) {
    out += fmt(",\"resources\":{}", record.resources.to_json());
  }
  out += ",\"metrics\":[";
  bool first = true;
  for (const BenchMetric& m : record.metrics) {
    if (!first) out += ',';
    first = false;
    out += fmt(
        "{{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\",\"kind\":\"{}\","
        "\"better\":\"{}\",\"noise_floor\":{}}}",
        obs::json_escape(m.name), obs::json_number(m.value),
        obs::json_escape(m.unit), obs::json_escape(m.kind),
        m.better_higher ? "higher" : "lower", obs::json_number(m.noise_floor));
  }
  out += "],\"stages\":{";
  first = true;
  for (const auto& [stage, busy] : record.stage_busy_seconds) {
    if (!first) out += ',';
    first = false;
    out += fmt("\"{}\":{}", obs::json_escape(stage), obs::json_number(busy));
  }
  out += "},\"latencies\":{";
  first = true;
  for (const auto& [stage, lat] : record.latencies) {
    if (!first) out += ',';
    first = false;
    out += fmt("\"{}\":{{\"p50\":{},\"p99\":{}}}", obs::json_escape(stage),
               obs::json_number(lat.p50_seconds),
               obs::json_number(lat.p99_seconds));
  }
  out += "}}";
  return out;
}

bool bench_record_from_json(const JsonValue& doc, BenchRecord& out) {
  if (!doc.is_object()) return false;
  if (doc.string_or("schema", "") != kBenchSchema) return false;
  out = BenchRecord{};
  out.bench = doc.string_or("bench", "");
  if (out.bench.empty()) return false;
  out.wall_seconds = doc.number_or("wall_seconds", 0);
  out.sim_charged_seconds = doc.number_or("sim_charged_seconds", 0);
  out.config = doc.string_or("config", "");
  out.config_fingerprint = doc.string_or("config_fingerprint", "");
  const JsonValue& res = doc.at("resources");
  if (res.is_object()) {
    out.has_resources = true;
    out.resources.ok = res.at("ok").as_bool(false);
    out.resources.cpu_utime_seconds = res.number_or("cpu_utime_seconds", 0);
    out.resources.cpu_stime_seconds = res.number_or("cpu_stime_seconds", 0);
    auto u64 = [&](const char* key) {
      return static_cast<std::uint64_t>(res.number_or(key, 0));
    };
    out.resources.rss_bytes = u64("rss_bytes");
    out.resources.peak_rss_bytes = u64("peak_rss_bytes");
    out.resources.minor_faults = u64("minor_faults");
    out.resources.major_faults = u64("major_faults");
    out.resources.ctx_voluntary = u64("ctx_voluntary");
    out.resources.ctx_involuntary = u64("ctx_involuntary");
    out.resources.io_read_bytes = u64("io_read_bytes");
    out.resources.io_write_bytes = u64("io_write_bytes");
    out.resources.threads = u64("threads");
  }
  for (const JsonValue& m : doc.at("metrics").as_array()) {
    BenchMetric metric;
    metric.name = m.string_or("name", "");
    if (metric.name.empty()) return false;
    metric.value = m.number_or("value", 0);
    metric.unit = m.string_or("unit", "");
    metric.kind = m.string_or("kind", "measured");
    metric.better_higher = m.string_or("better", "higher") != "lower";
    metric.noise_floor = m.number_or("noise_floor", 0);
    out.metrics.push_back(std::move(metric));
  }
  for (const auto& [stage, busy] : doc.at("stages").as_object()) {
    out.stage_busy_seconds[stage] = busy.as_number(0);
  }
  for (const auto& [stage, lat] : doc.at("latencies").as_object()) {
    out.latencies[stage] = {lat.number_or("p50", 0), lat.number_or("p99", 0)};
  }
  return true;
}

BenchReporter::BenchReporter(std::string bench_name)
    : started_at_(std::chrono::steady_clock::now()) {
  record_.bench = std::move(bench_name);
}

void BenchReporter::set_config(const std::string& config) {
  record_.config = config;
  record_.config_fingerprint = fmt("{:x}", crc32c(as_bytes(config)));
}

void BenchReporter::add_metric(const std::string& name, double value,
                               const std::string& unit,
                               const std::string& kind, bool better_higher,
                               double noise_floor) {
  record_.metrics.push_back(
      {name, value, unit, kind, better_higher, noise_floor});
}

void BenchReporter::charge_sim_seconds(double seconds) {
  record_.sim_charged_seconds += seconds;
}

void BenchReporter::set_stage_costs(const insight::BottleneckReport& report) {
  for (const insight::StageCost& stage : report.stages) {
    if (stage.busy_seconds > 0) {
      record_.stage_busy_seconds[stage.name] = stage.busy_seconds;
    }
  }
}

void BenchReporter::add_latency(const std::string& stage, double p50_seconds,
                                double p99_seconds) {
  record_.latencies[stage] = {p50_seconds, p99_seconds};
}

BenchRecord BenchReporter::snapshot() const {
  BenchRecord record = record_;
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  const ResourceSample res = ResourceSampler::sample();
  record.has_resources = res.ok;
  record.resources = res;
  return record;
}

std::string BenchReporter::to_json() const {
  return bench_record_to_json(snapshot());
}

void BenchReporter::write(const std::string& path) const {
  insight::detail::write_file_atomic(path, to_json() + "\n");
}

}  // namespace sciprep::perfscope
