// Host resource sampling (sciprep::perfscope).
//
// Preprocessing throughput is only interpretable next to what the host paid
// for it ("Understand Data Preprocessing…"): peak RSS says whether the
// decoded working set still fits, CPU seconds split samples/s into useful
// work vs scheduler churn, and involuntary context switches expose a noisy
// neighbour mid-benchmark. ResourceSampler reads /proc/self/{stat,status,io}
// and getrusage(2) into one ResourceSample and publishes the values as
// proc.* gauges, so the insight exporter's JSONL ticks and perfscope's bench
// records carry the same resource series.
//
// Under SCIPREP_OBS_DISABLED everything compiles to a no-op: sample()
// returns a default (ok == false) sample and publish() touches nothing — the
// healthy path pays zero, matching the rest of the observability stack.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sciprep/obs/metrics.hpp"

namespace sciprep::perfscope {

/// One point-in-time reading of the process's host resource consumption.
/// Cumulative fields (CPU seconds, faults, context switches, IO bytes) are
/// monotone across samples of one process; rss_bytes is instantaneous and
/// peak_rss_bytes is its high-watermark.
struct ResourceSample {
  bool ok = false;                    // false: sampling unavailable/disabled
  double cpu_utime_seconds = 0;       // user CPU, whole process (getrusage)
  double cpu_stime_seconds = 0;       // system CPU
  std::uint64_t rss_bytes = 0;        // current resident set (VmRSS)
  std::uint64_t peak_rss_bytes = 0;   // high-watermark (VmHWM / ru_maxrss)
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t ctx_voluntary = 0;    // voluntary context switches
  std::uint64_t ctx_involuntary = 0;  // preemptions
  std::uint64_t io_read_bytes = 0;    // /proc/self/io read_bytes (0 if absent)
  std::uint64_t io_write_bytes = 0;
  std::uint64_t threads = 0;          // /proc/self/stat num_threads

  [[nodiscard]] double cpu_seconds() const noexcept {
    return cpu_utime_seconds + cpu_stime_seconds;
  }
  /// Summary JSON object ({"cpu_utime_seconds":..,...}) for bench records.
  [[nodiscard]] std::string to_json() const;
};

/// Samples the process and mirrors the readings into a MetricsRegistry as
/// proc.* gauges. Publish on the insight exporter's cadence by handing
/// exporter_hook() to ExporterConfig::pre_tick — every JSONL tick then
/// carries the resource series alongside the pipeline counters.
class ResourceSampler {
 public:
  /// `registry` null means obs::MetricsRegistry::global(). Must outlive the
  /// sampler.
  explicit ResourceSampler(obs::MetricsRegistry* registry = nullptr);

  /// Read /proc + getrusage right now. Never throws; a sample taken on a
  /// host without /proc still carries the getrusage fields. Returns
  /// ok == false (all zeros) under SCIPREP_OBS_DISABLED.
  [[nodiscard]] static ResourceSample sample();

  /// sample() + set the proc.* gauges + append to the in-memory series.
  /// Thread-safe; no-op (returns ok == false) under SCIPREP_OBS_DISABLED.
  ResourceSample publish();

  /// Samples collected by publish() so far, in order. The series keeps the
  /// most recent kMaxSeries readings (old ones are dropped) so a sampler on
  /// a long-lived exporter cannot grow without bound.
  [[nodiscard]] std::vector<ResourceSample> series() const;

  static constexpr std::size_t kMaxSeries = 16384;

  /// Callback form of publish() for ExporterConfig::pre_tick.
  [[nodiscard]] std::function<void()> exporter_hook();

 private:
  obs::MetricsRegistry* registry_;
  mutable std::mutex mutex_;  // guards series_
  std::vector<ResourceSample> series_;
};

}  // namespace sciprep::perfscope
