#include "sciprep/perfscope/jsondom.hpp"

#include <cstdlib>

namespace sciprep::perfscope {

namespace {

const JsonValue& null_value() {
  static const JsonValue v;
  return v;
}

const std::string& empty_string() {
  static const std::string s;
  return s;
}

const std::vector<JsonValue>& empty_array() {
  static const std::vector<JsonValue> a;
  return a;
}

const std::map<std::string, JsonValue>& empty_object() {
  static const std::map<std::string, JsonValue> o;
  return o;
}

/// Recursive-descent parser over a string_view cursor. Mirrors the grammar
/// of obs::json_valid but builds values instead of only checking them.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!eat_word("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!eat_word("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!eat_word("null")) return false;
        out = JsonValue::make_null();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    if (!eat('{')) return false;
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (eat('}')) {
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.insert_or_assign(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) break;
      return false;
    }
    out = JsonValue::make_object(std::move(members));
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    if (!eat('[')) return false;
    std::vector<JsonValue> items;
    skip_ws();
    if (eat(']')) {
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) break;
      return false;
    }
    out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return false;
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are stored as
          // two 3-byte sequences — good enough for metric names and paths).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return false;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return false;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue::make_number(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool(bool fallback) const noexcept {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::as_number(double fallback) const noexcept {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

const std::string& JsonValue::as_string() const noexcept {
  return kind_ == Kind::kString ? string_ : empty_string();
}

const std::vector<JsonValue>& JsonValue::as_array() const noexcept {
  return kind_ == Kind::kArray ? array_ : empty_array();
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const noexcept {
  return kind_ == Kind::kObject ? object_ : empty_object();
}

const JsonValue& JsonValue::at(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return null_value();
  const auto it = object_.find(key);
  return it != object_.end() ? it->second : null_value();
}

bool JsonValue::has(const std::string& key) const noexcept {
  return kind_ == Kind::kObject && object_.find(key) != object_.end();
}

double JsonValue::number_or(const std::string& key,
                            double fallback) const noexcept {
  return at(key).as_number(fallback);
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue& v = at(key);
  return v.kind() == Kind::kString ? v.as_string() : fallback;
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

bool json_parse(std::string_view text, JsonValue& out) {
  Parser parser(text);
  return parser.parse(out);
}

}  // namespace sciprep::perfscope
