// Minimal JSON document model for the perfscope readers.
//
// The obs layer only ever *writes* JSON (plus a validity check); perfscope is
// the first consumer that must read structured documents back — bench
// records, BENCH_*.json trajectories — so it carries a small strict DOM
// parser. Deliberately tiny: doubles for every number (perf metrics fit
// comfortably), ordered maps for objects, no serialization (writers keep
// using sciprep::fmt like the rest of the observability stack).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sciprep::perfscope {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; wrong-kind access returns the fallback (parsers of
  /// foreign files must degrade, not crash).
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept;
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept;
  [[nodiscard]] const std::string& as_string() const noexcept;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const noexcept;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object()
      const noexcept;

  /// Object member lookup; returns a shared null value when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const noexcept;
  [[nodiscard]] bool has(const std::string& key) const noexcept;

  /// Convenience: `at(key).as_*` with fallbacks.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const noexcept;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse a complete JSON document (RFC 8259 grammar, depth-limited to 64).
/// Returns false on any syntax error or trailing garbage; `out` is
/// unspecified on failure. Never throws.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue& out);

}  // namespace sciprep::perfscope
