#include "sciprep/perfscope/trajectory.hpp"

#include <cstdio>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/common/sysio.hpp"
#include "sciprep/insight/internal.hpp"
#include "sciprep/obs/json.hpp"

namespace sciprep::perfscope {

namespace {

bool read_file(const std::string& path, std::string& out) {
  try {
    const Bytes data = sysio::read_file(path);
    out.assign(data.begin(), data.end());
  } catch (const IoError&) {
    return false;
  }
  return true;
}

}  // namespace

bool load_trajectory(const std::string& path, Trajectory& out) {
  out = Trajectory{};
  std::string text;
  if (!read_file(path, text)) return false;
  JsonValue doc;
  if (!json_parse(text, doc)) return false;
  if (doc.string_or("schema", "") != kTrajectorySchema) return false;
  for (const JsonValue& run_doc : doc.at("runs").as_array()) {
    BenchRun run;
    run.run_index = static_cast<std::uint64_t>(run_doc.number_or("run", 0));
    run.unix_time =
        static_cast<std::uint64_t>(run_doc.number_or("unix_time", 0));
    run.label = run_doc.string_or("label", "");
    for (const auto& [name, record_doc] : run_doc.at("benches").as_object()) {
      BenchRecord record;
      if (bench_record_from_json(record_doc, record)) {
        run.benches.emplace(name, std::move(record));
      }
    }
    out.runs.push_back(std::move(run));
  }
  return true;
}

void append_run(Trajectory& trajectory, BenchRun run, std::size_t max_runs) {
  run.run_index = trajectory.runs.empty()
                      ? 1
                      : trajectory.runs.back().run_index + 1;
  trajectory.runs.push_back(std::move(run));
  if (max_runs > 0 && trajectory.runs.size() > max_runs) {
    trajectory.runs.erase(
        trajectory.runs.begin(),
        trajectory.runs.begin() +
            static_cast<std::ptrdiff_t>(trajectory.runs.size() - max_runs));
  }
}

std::string trajectory_to_json(const Trajectory& trajectory) {
  std::string out;
  out.reserve(4096);
  out += fmt("{{\"schema\":\"{}\",\"runs\":[", kTrajectorySchema);
  bool first_run = true;
  for (const BenchRun& run : trajectory.runs) {
    if (!first_run) out += ',';
    first_run = false;
    out += fmt("\n{{\"run\":{},\"unix_time\":{},\"label\":\"{}\",\"benches\":{{",
               run.run_index, run.unix_time, obs::json_escape(run.label));
    bool first_bench = true;
    for (const auto& [name, record] : run.benches) {
      if (!first_bench) out += ',';
      first_bench = false;
      out += fmt("\n\"{}\":{}", obs::json_escape(name),
                 bench_record_to_json(record));
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

void save_trajectory(const std::string& path, const Trajectory& trajectory) {
  insight::detail::write_file_atomic(path, trajectory_to_json(trajectory));
}

}  // namespace sciprep::perfscope
