// sciprep::perfscope — machine-readable benchmark telemetry, host resource
// sampling, and a noise-aware perf-regression gate (DESIGN.md §11).
//
//   * BenchReporter (benchreport.hpp) — schema-versioned
//     sciprep.perf.bench.v1 records every bench binary emits via --json-out:
//     metrics tagged measured/modeled and better=higher/lower, wall vs
//     sim-charged seconds kept separate, per-stage busy seconds from the
//     insight analyzer, p50/p99 latencies, host info, resource summary.
//   * ResourceSampler (resource.hpp) — /proc/self/{stat,status,io} +
//     getrusage readings published as proc.* gauges on the insight
//     exporter's cadence; no-op under SCIPREP_OBS_DISABLED.
//   * Trajectory (trajectory.hpp) — the BENCH_*.json run history perfbench
//     appends to.
//   * compare_* (compare.hpp) — the median+MAD regression gate behind
//     perfcompare and the perf_regression_smoke ctest.
//   * JsonValue (jsondom.hpp) — the strict little DOM parser the readers
//     share.
#pragma once

#include "sciprep/perfscope/benchreport.hpp"
#include "sciprep/perfscope/compare.hpp"
#include "sciprep/perfscope/jsondom.hpp"
#include "sciprep/perfscope/resource.hpp"
#include "sciprep/perfscope/trajectory.hpp"
