// Noise-aware performance regression gate (sciprep::perfscope).
//
// Benchmarks on shared hardware are noisy; a gate that fires on every 3%
// wobble trains people to ignore it. The comparison therefore builds a
// robust expectation per metric from the baseline history — the median of
// recent runs — and widens the alarm threshold by the metric's observed
// spread (median absolute deviation) plus the per-metric absolute noise
// floor the bench itself declared:
//
//   tolerance = max(rel_tol * |median|, mad_k * MAD, noise_floor)
//
// A metric regresses when it lands beyond the tolerance on the WRONG side
// (respecting its better=higher|lower tag); landing beyond it on the right
// side is reported as an improvement. With a thin history (fewer than
// min_history runs) the MAD term is unavailable and the relative tolerance
// alone applies. Records whose config fingerprint changed are not compared
// at all — a different knob setting is a different experiment, not a
// regression.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sciprep/perfscope/trajectory.hpp"

namespace sciprep::perfscope {

struct CompareOptions {
  double rel_tol = 0.30;        // relative slack, always applied
  double mad_k = 4.0;           // MAD multiplier once history is deep enough
  std::size_t min_history = 3;  // runs needed before MAD is trusted
  std::size_t max_history = 32; // most recent baseline runs considered
  /// A metric (or whole bench) present in the baseline but absent from the
  /// current run is itself a regression: silent disappearance must not pass.
  bool fail_on_missing = true;
};

enum class Verdict {
  kPass,           // within tolerance
  kImproved,       // beyond tolerance on the good side
  kRegressed,      // beyond tolerance on the bad side
  kNew,            // no baseline history (informational)
  kMissing,        // in baseline, absent from current
  kConfigChanged,  // fingerprints differ; not comparable
};

[[nodiscard]] const char* verdict_name(Verdict verdict);

struct MetricVerdict {
  std::string bench;
  std::string metric;
  std::string unit;
  bool better_higher = true;
  double baseline_median = 0;
  double baseline_mad = 0;
  std::size_t history = 0;   // runs the expectation was built from
  double current = 0;
  double tolerance = 0;      // absolute, in the metric's unit
  Verdict verdict = Verdict::kPass;
};

struct CompareReport {
  std::vector<MetricVerdict> verdicts;  // regressions ranked first

  [[nodiscard]] std::size_t count(Verdict verdict) const;
  [[nodiscard]] std::size_t regressions() const;
  /// Per-bench verdict table plus the summary line perf_regression_smoke
  /// greps for.
  [[nodiscard]] std::string human_table() const;
};

/// Compare `current` against the expectation built from `history` (oldest
/// first; the most recent max_history runs are used).
[[nodiscard]] CompareReport compare_runs(const std::vector<BenchRun>& history,
                                         const BenchRun& current,
                                         const CompareOptions& options = {});

/// Baseline trajectory (all runs are history) vs the current trajectory's
/// latest run.
[[nodiscard]] CompareReport compare_trajectories(
    const Trajectory& baseline, const Trajectory& current,
    const CompareOptions& options = {});

/// Self-comparison inside one trajectory: the latest run against everything
/// before it. Requires >= 2 runs (returns an empty report otherwise).
[[nodiscard]] CompareReport compare_latest(const Trajectory& trajectory,
                                           const CompareOptions& options = {});

}  // namespace sciprep::perfscope
