// Machine-readable benchmark records (sciprep::perfscope).
//
// Every bench binary in this repo prints human tables; BenchReporter is the
// machine-readable twin they all share via a --json-out flag. One invocation
// produces one schema-versioned `sciprep.perf.bench.v1` document:
//
//   * a flat list of named metrics, each tagged with its unit, whether it
//     was measured on this host or modeled by the §5 step model, which
//     direction is better, and an absolute noise floor the regression gate
//     must respect;
//   * wall seconds (what the harness really spent) kept strictly separate
//     from sim-charged seconds (what the platform model billed) — DESIGN.md
//     §5's timing contract;
//   * per-stage busy seconds lifted from an insight BottleneckReport and
//     p50/p99 stage latencies, when the bench ran a real pipeline;
//   * a host-info block and a ResourceSample summary (peak RSS, CPU split,
//     context switches) so throughput is never read without its cost;
//   * a config string + fingerprint so trajectories only compare like runs.
//
// perfbench merges these records into a BENCH_*.json trajectory
// (trajectory.hpp) and perfcompare diffs trajectories (compare.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sciprep/insight/analyze.hpp"
#include "sciprep/perfscope/jsondom.hpp"
#include "sciprep/perfscope/resource.hpp"

namespace sciprep::perfscope {

inline constexpr const char* kBenchSchema = "sciprep.perf.bench.v1";

/// One named scalar result. `kind` is "measured" (host timing) or "modeled"
/// (§5 step-model output). `noise_floor` is an absolute tolerance in the
/// metric's own unit below which differences are meaningless — overhead
/// fractions, for example, wobble a few points run to run.
struct BenchMetric {
  std::string name;
  double value = 0;
  std::string unit;            // "samples/s", "seconds", "fraction", ...
  std::string kind = "measured";
  bool better_higher = true;
  double noise_floor = 0;
};

/// p50/p99 summary of one latency histogram.
struct LatencySummary {
  double p50_seconds = 0;
  double p99_seconds = 0;
};

/// Everything one bench invocation reports.
struct BenchRecord {
  std::string bench;               // "fig8_deepcam_throughput", ...
  double wall_seconds = 0;         // real harness time (measurement cost)
  double sim_charged_seconds = 0;  // platform-model billed time (0 = none)
  std::string config;              // knob string, e.g. "dim=32 repeat=3"
  std::string config_fingerprint;  // crc32c(config) in hex
  bool has_resources = false;
  ResourceSample resources;        // end-of-bench reading
  std::vector<BenchMetric> metrics;
  std::map<std::string, double> stage_busy_seconds;   // from BottleneckReport
  std::map<std::string, LatencySummary> latencies;    // per stage histogram

  [[nodiscard]] const BenchMetric* find_metric(const std::string& name) const;
};

/// Hostname / core count / page size / build flavor, embedded in every
/// record so a trajectory mixing hosts is detectable.
[[nodiscard]] std::string host_info_json();

/// Serialize a record as a complete sciprep.perf.bench.v1 document
/// (including the host block). Output always passes obs::json_valid.
[[nodiscard]] std::string bench_record_to_json(const BenchRecord& record);

/// Parse a v1 document (as produced above) back into a record. Returns false
/// on schema mismatch or missing required fields.
[[nodiscard]] bool bench_record_from_json(const JsonValue& doc,
                                          BenchRecord& out);

/// Builder used by the bench binaries: construct, add metrics as the bench
/// computes its rows, write at exit. Construction starts the wall clock;
/// write()/to_json() stamp it and capture the closing ResourceSample.
class BenchReporter {
 public:
  explicit BenchReporter(std::string bench_name);

  /// Record the bench's knob string (dims, repeats); also derives the
  /// fingerprint trajectories use to refuse cross-config comparisons.
  void set_config(const std::string& config);

  void add_metric(const std::string& name, double value,
                  const std::string& unit, const std::string& kind,
                  bool better_higher = true, double noise_floor = 0);

  /// Add to the record's sim-charged total (modeled seconds, §5 contract).
  void charge_sim_seconds(double seconds);

  /// Lift per-stage exclusive busy seconds out of an insight report.
  void set_stage_costs(const insight::BottleneckReport& report);

  void add_latency(const std::string& stage, double p50_seconds,
                   double p99_seconds);

  /// The record built so far, with wall_seconds and the resource summary
  /// stamped as of this call.
  [[nodiscard]] BenchRecord snapshot() const;

  [[nodiscard]] std::string to_json() const;

  /// Write the v1 document atomically (tmp + rename); throws IoError.
  void write(const std::string& path) const;

 private:
  BenchRecord record_;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace sciprep::perfscope
