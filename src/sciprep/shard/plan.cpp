#include "sciprep/shard/plan.hpp"

#include <algorithm>
#include <numeric>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"

namespace sciprep::shard {

ShardPlan ShardPlan::build(std::size_t dataset_size,
                           const std::vector<int>& ranks, std::uint64_t seed,
                           std::uint64_t epoch, bool shuffle) {
  if (ranks.empty()) {
    throw ConfigError("shard: a plan needs at least one participating rank");
  }
  ShardPlan plan;
  plan.epoch = epoch;
  plan.seed = seed;
  plan.shuffle = shuffle;
  plan.ranks = ranks;
  std::sort(plan.ranks.begin(), plan.ranks.end());
  if (std::adjacent_find(plan.ranks.begin(), plan.ranks.end()) !=
      plan.ranks.end()) {
    throw ConfigError("shard: duplicate rank id in the participant list");
  }

  plan.global_order.resize(dataset_size);
  std::iota(plan.global_order.begin(), plan.global_order.end(), 0);
  if (shuffle) {
    // Byte-identical to DataPipeline::start_epoch's shuffle: same stream
    // split, same Fisher–Yates walk. A world of 1 therefore delivers the
    // exact unsharded order.
    Rng rng(split_seed(seed, epoch, kShuffleStream));
    for (std::size_t i = plan.global_order.size(); i > 1; --i) {
      std::swap(plan.global_order[i - 1], plan.global_order[rng.next_below(i)]);
    }
  }

  const std::size_t k = plan.ranks.size();
  plan.bounds.resize(k + 1);
  for (std::size_t s = 0; s <= k; ++s) {
    plan.bounds[s] = static_cast<std::uint64_t>(dataset_size * s / k);
  }
  return plan;
}

int ShardPlan::slot_of(int rank) const noexcept {
  const auto it = std::lower_bound(ranks.begin(), ranks.end(), rank);
  if (it == ranks.end() || *it != rank) return -1;
  return static_cast<int>(it - ranks.begin());
}

std::vector<std::size_t> ShardPlan::local_order(std::size_t slot) const {
  SCIPREP_ASSERT(slot + 1 < bounds.size());
  return std::vector<std::size_t>(
      global_order.begin() + static_cast<std::ptrdiff_t>(bounds[slot]),
      global_order.begin() + static_cast<std::ptrdiff_t>(bounds[slot + 1]));
}

std::vector<std::uint64_t> ShardPlan::global_positions(std::size_t slot) const {
  SCIPREP_ASSERT(slot + 1 < bounds.size());
  std::vector<std::uint64_t> positions(bounds[slot + 1] - bounds[slot]);
  std::iota(positions.begin(), positions.end(), bounds[slot]);
  return positions;
}

std::uint64_t order_fingerprint(const std::vector<int>& ranks, int rank,
                                std::uint64_t seed, bool shuffle, bool staged) {
  std::uint64_t fp = 0x5348415244504C4EULL;  // "SHARDPLN"
  auto mix = [&fp](std::uint64_t v) {
    std::uint64_t state = fp ^ v;
    fp = splitmix64(state);
  };
  mix(ranks.size());
  for (const int r : ranks) mix(static_cast<std::uint64_t>(r));
  mix(static_cast<std::uint64_t>(rank));
  mix(seed);
  mix(shuffle ? 1 : 0);
  mix(staged ? 1 : 0);
  return fp;
}

}  // namespace sciprep::shard
