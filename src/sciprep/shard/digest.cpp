#include "sciprep/shard/digest.hpp"

#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"

namespace sciprep::shard {

namespace {

template <class T>
ByteSpan as_bytes(const std::vector<T>& v) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(v.data()),
                  v.size() * sizeof(T));
}

ByteSpan as_bytes(const std::uint64_t& v) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(&v), sizeof(v));
}

}  // namespace

std::uint32_t sample_crc(const codec::TensorF16& tensor) {
  std::uint32_t crc = 0;
  crc = crc32c(as_bytes(tensor.shape), crc);
  crc = crc32c(as_bytes(tensor.values), crc);
  crc = crc32c(as_bytes(tensor.float_labels), crc);
  crc = crc32c(as_bytes(tensor.byte_labels), crc);
  return crc;
}

void GlobalStreamDigest::record(std::uint64_t epoch, std::uint64_t position,
                                std::uint32_t crc) {
  auto [it, inserted] = epochs_[epoch].try_emplace(position, crc);
  if (!inserted && it->second != crc) {
    throw_format(
        "shard: global stream diverged at epoch {} position {} — recorded "
        "crc {:08x}, re-delivered crc {:08x}",
        epoch, position, it->second, crc);
  }
}

std::size_t GlobalStreamDigest::recorded(std::uint64_t epoch) const {
  const auto it = epochs_.find(epoch);
  return it == epochs_.end() ? 0 : it->second.size();
}

std::uint32_t GlobalStreamDigest::epoch_digest(std::uint64_t epoch) const {
  const auto it = epochs_.find(epoch);
  if (it == epochs_.end()) return 0;
  std::uint32_t crc = 0;
  for (const auto& [position, sample] : it->second) {
    crc = crc32c(as_bytes(position), crc);
    const std::uint64_t widened = sample;
    crc = crc32c(as_bytes(widened), crc);
  }
  return crc;
}

std::uint32_t GlobalStreamDigest::stream_digest() const {
  std::uint32_t crc = 0;
  for (const auto& [epoch, entries] : epochs_) {
    (void)entries;
    crc = crc32c(as_bytes(epoch), crc);
    const std::uint64_t widened = epoch_digest(epoch);
    crc = crc32c(as_bytes(widened), crc);
  }
  return crc;
}

const std::map<std::uint64_t, std::uint32_t>& GlobalStreamDigest::entries(
    std::uint64_t epoch) const {
  static const std::map<std::uint64_t, std::uint32_t> kEmpty;
  const auto it = epochs_.find(epoch);
  return it == epochs_.end() ? kEmpty : it->second;
}

}  // namespace sciprep::shard
