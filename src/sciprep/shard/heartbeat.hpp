// HeartbeatMonitor — rank liveness detection on top of guard::Watchdog
// (sciprep::shard).
//
// Each monitored rank holds one armed watchdog deadline and a cancel token.
// beat(rank) disarms and re-arms with a fresh token — a live rank's token is
// never cancelled. A rank that stops beating (its heartbeat was suppressed
// by an injected rank.heartbeat fault, or it genuinely hung) leaves its last
// deadline armed; when it passes, the watchdog thread cancels the token and
// lost(rank) flips true. Detection is therefore asynchronous and wall-clock
// — exactly like a real cluster's failure detector — but *which* beat goes
// missing is a pure function of the injector seed, so the recovered stream
// is reproducible even though detection latency is not.
//
// Expiries ride the shared guard metrics (guard.deadline_expired_total /
// guard.stall_seconds) plus shard.heartbeat.lost_total in the shard's own
// registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/guard/cancel.hpp"
#include "sciprep/guard/watchdog.hpp"
#include "sciprep/obs/metrics.hpp"

namespace sciprep::shard {

class HeartbeatMonitor {
 public:
  /// Monitors ranks 0..world-1 with a per-beat deadline of
  /// `deadline_seconds` (must be > 0). Metrics land in `metrics` (null =
  /// process-global). Ranks start un-armed; the first beat() arms them.
  HeartbeatMonitor(int world, double deadline_seconds,
                   obs::MetricsRegistry* metrics = nullptr);

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  /// Record one liveness beat: re-arms `rank`'s deadline under a fresh
  /// token. No-op for a retired rank.
  void beat(int rank);

  /// True once `rank`'s armed deadline expired without an intervening beat.
  [[nodiscard]] bool lost(int rank) const;

  /// Temporarily disarm `rank` (it exhausted its shard and is idle, not
  /// dead): the deadline is dropped without counting a loss, and a later
  /// beat() re-arms — e.g. when re-sharding hands the rank more work.
  void pause(int rank);

  /// Stop monitoring `rank` (it finished its shard, or its death has been
  /// handled): disarms the deadline. A retired rank is never reported lost
  /// again.
  void retire(int rank);

  /// True while `rank` has an armed, unexpired deadline.
  [[nodiscard]] bool armed(int rank) const;

  [[nodiscard]] double deadline_seconds() const noexcept { return deadline_; }

 private:
  struct Entry {
    guard::CancelToken token;
    guard::Watchdog::Armed armed;
    std::string stage;  // "rank<N>.heartbeat"; stable storage for the armed entry
    bool active = false;
    bool retired = false;
  };

  double deadline_;
  obs::Counter* lost_total_;  // shard.heartbeat.lost_total
  guard::Watchdog watchdog_;
  std::vector<Entry> entries_;
};

}  // namespace sciprep::shard
