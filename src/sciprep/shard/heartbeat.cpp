#include "sciprep/shard/heartbeat.hpp"

#include "sciprep/common/error.hpp"

namespace sciprep::shard {

HeartbeatMonitor::HeartbeatMonitor(int world, double deadline_seconds,
                                   obs::MetricsRegistry* metrics)
    : deadline_(deadline_seconds),
      lost_total_(&(metrics != nullptr ? *metrics
                                       : obs::MetricsRegistry::global())
                       .counter("shard.heartbeat.lost_total")),
      watchdog_(metrics),
      entries_(static_cast<std::size_t>(world)) {
  if (world < 1) {
    throw ConfigError(fmt("shard: heartbeat world size {} must be >= 1",
                          world));
  }
  if (deadline_ <= 0) {
    throw ConfigError("shard: heartbeat deadline must be > 0");
  }
  for (std::size_t rank = 0; rank < entries_.size(); ++rank) {
    entries_[rank].stage = fmt("rank{}.heartbeat", rank);
  }
}

void HeartbeatMonitor::beat(int rank) {
  Entry& entry = entries_.at(static_cast<std::size_t>(rank));
  if (entry.retired) return;
  // Disarm the previous deadline before arming the next: a beat that lands
  // in time resets the clock; one that doesn't never reaches here (the
  // coordinator stops beating a silenced rank).
  entry.armed.reset();
  entry.token = guard::CancelToken::make();
  entry.armed = watchdog_.arm(entry.stage.c_str(), deadline_, entry.token);
  entry.active = true;
}

bool HeartbeatMonitor::lost(int rank) const {
  const Entry& entry = entries_.at(static_cast<std::size_t>(rank));
  return entry.active && !entry.retired && entry.token.cancelled();
}

void HeartbeatMonitor::pause(int rank) {
  Entry& entry = entries_.at(static_cast<std::size_t>(rank));
  if (entry.retired) return;
  entry.armed.reset();
  entry.token = guard::CancelToken();
  entry.active = false;
}

void HeartbeatMonitor::retire(int rank) {
  Entry& entry = entries_.at(static_cast<std::size_t>(rank));
  if (entry.retired) return;
  if (entry.active && entry.token.cancelled()) {
    lost_total_->add(1);
  }
  entry.armed.reset();
  entry.retired = true;
}

bool HeartbeatMonitor::armed(int rank) const {
  const Entry& entry = entries_.at(static_cast<std::size_t>(rank));
  return entry.active && !entry.retired && !entry.token.cancelled();
}

}  // namespace sciprep::shard
