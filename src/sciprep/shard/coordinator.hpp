// ShardCoordinator — N-rank training simulated in one process, with elastic
// recovery when a rank dies (sciprep::shard, DESIGN.md §12).
//
// The coordinator owns one DataPipeline per rank. Each epoch it builds a
// ShardPlan — the deterministic global shuffle partitioned into balanced
// contiguous shards — and hands every rank its slice through the pipeline's
// epoch_order provider, so rank-local delivery is just the ordinary
// single-pipeline machinery (prefetch, fault policy, deadlines, checkpoint)
// operating on a sub-order. step() round-robins delivery across live ranks
// and maps each batch's rank-local positions onto global stream positions.
//
// Failure and recovery:
//   * rank.heartbeat faults silence a rank's liveness beat; the
//     HeartbeatMonitor's watchdog deadline expires and the rank is declared
//     lost — asynchronous, wall-clock detection, like a real failure
//     detector.
//   * rank.crash faults (and the explicit kill_rank() used by the smoke
//     test) kill a rank mid-batch: the batch it had assembled is discarded
//     undelivered.
//   * Recovery rolls the dead rank back to its last checkpoint — its
//     post-checkpoint deliveries are rolled OUT of the aggregate counters,
//     because the survivors are about to re-deliver those samples — and
//     appends the undelivered remainder of its shard to the survivors'
//     epoch orders, balanced contiguously, via extend_epoch_order(). The
//     merged stream digest is unchanged: positions, sample identities, and
//     per-sample bytes (augmentations are keyed by sample id, not position
//     or rank) are all preserved.
//
// Counter aggregation (the cross-rank double-count fix): aggregate() sums
// live registries for live ranks but the *last checkpoint* for dead ranks.
// A dead rank's live registry still contains deliveries that happened after
// its checkpoint; the survivors re-deliver exactly those samples, so summing
// live registries would count them twice. Retries/injected-fault counters
// stay live everywhere — they are spent wall clock, not delivered data, and
// are exempt from the equivalence contract (same as single-pipeline resume).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/shard/digest.hpp"
#include "sciprep/shard/heartbeat.hpp"
#include "sciprep/shard/plan.hpp"

namespace sciprep::shard {

struct ShardConfig {
  /// Number of simulated ranks (>= 1).
  int world = 1;
  /// Per-rank pipeline template. The coordinator overrides `epoch_order`,
  /// `order_fingerprint`, `metrics` (each rank gets a private registry) and
  /// wraps `on_recovery_event` to stamp the rank scope; everything else —
  /// seed, batch size, fault policy, deadlines, injector, placement — is
  /// shared by all ranks.
  pipeline::PipelineConfig pipeline;
  /// Staged placement: every rank holds its own copy of the dataset (the
  /// paper's node-local staging; cheap here — sample storage is shared
  /// underneath — but it is accounted as shard.staged_bytes_total).
  /// Unstaged: all ranks read the one shared store.
  bool staged = true;
  /// Re-shard a dead rank's remainder to the survivors. When false a rank
  /// loss throws Error out of step() — the classic gang-scheduled abort.
  bool elastic = true;
  /// Heartbeat deadline per rank (seconds). Detection latency for a silent
  /// rank is at most this plus scheduler noise.
  double heartbeat_deadline_seconds = 0.25;
  /// Coordinated checkpointing: after every N globally delivered batches,
  /// quiesce and snapshot every live rank (0 disables). Snapshots are the
  /// rollback anchors for recovery; with `checkpoint_dir` set they are also
  /// persisted as <dir>/rank-<r>.ckpt for resume(). On-disk writes are
  /// skipped (shard.checkpoint_skipped_total) once a rank has died or been
  /// extended this epoch — the set would no longer describe a plan a fresh
  /// world could rebuild — and resume at the next epoch boundary.
  std::uint64_t checkpoint_every_batches = 0;
  std::string checkpoint_dir;
  /// Record every delivered sample into the global stream digest (the
  /// --validate cross-check). Costs one CRC per sample; off by default.
  bool verify_stream = false;
  /// Shard-level event sink: rank_lost / reshard / forwarded per-rank
  /// recovery events, all carrying RecoveryEvent::scope = "rank<N>". Same
  /// thread-safety contract as PipelineConfig::on_recovery_event.
  fault::RecoveryListener on_event;
  /// Registry for shard.* aggregate metrics (ranks lost, reshards,
  /// checkpoints, staged bytes). Null = a private registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-rank simulated GPU factory, required for kGpu placement (each rank
  /// models a node with its own device). Called once per rank.
  std::function<std::unique_ptr<sim::SimGpu>(int rank)> gpu_factory;
};

/// One delivered batch plus its global-stream coordinates.
struct ShardBatch {
  int rank = -1;
  pipeline::Batch batch;
  /// Global stream position of each sample in `batch.samples` (parallel to
  /// batch.order_positions, which stays rank-local).
  std::vector<std::uint64_t> global_positions;
};

/// Aggregate counters across the world, double-count-safe (see file header).
struct ShardStats {
  pipeline::PipelineStats totals;
  int world = 0;
  int alive = 0;
  std::uint64_t ranks_lost = 0;
  std::uint64_t reshards = 0;
  std::uint64_t resharded_samples = 0;
  std::uint64_t checkpoints = 0;
};

class ShardCoordinator {
 public:
  /// `dataset` and `codec` must outlive the coordinator (ranks reference
  /// them; staged placement copies the dataset's index, not its bytes).
  ShardCoordinator(const pipeline::InMemoryDataset& dataset,
                   const codec::SampleCodec& codec, ShardConfig config);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Re-plan and reset every live rank to `epoch`. The plan partitions among
  /// the ranks alive *now*: after a death, the next epoch re-balances across
  /// the survivors (elastic world shrink).
  void start_epoch(std::uint64_t epoch);

  /// Deliver the next batch of the epoch, round-robin across live ranks;
  /// false when every live rank has exhausted its (possibly extended) shard
  /// and no silent rank is still awaiting detection. Injected rank faults
  /// fire inside; recovery (detection, rollback, re-shard) happens here too.
  bool step(ShardBatch& out);

  /// Kill `rank` now — the smoke test's deterministic mid-epoch kill. Its
  /// recovery runs immediately (elastic) or the next step() throws
  /// (non-elastic... the throw happens here). Idempotent on a dead rank.
  void kill_rank(int rank);

  /// Quiesce and snapshot every live rank now (in-memory rollback anchors;
  /// persisted when checkpoint_dir is set and the epoch is still clean).
  void checkpoint();

  /// Resume a freshly constructed coordinator from the coordinated
  /// checkpoint in `dir`: reads rank-0..rank-(world-1), validates epochs
  /// agree and each snapshot's fingerprint matches its rank (typed errors
  /// on any corruption or cross-rank swap), then fast-forwards every rank.
  void resume(const std::string& dir);

  [[nodiscard]] ShardStats aggregate() const;
  [[nodiscard]] const GlobalStreamDigest& digest() const { return digest_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] bool alive(int rank) const;
  [[nodiscard]] int alive_count() const;
  /// This rank's private metrics registry (valid for dead ranks too).
  [[nodiscard]] obs::MetricsRegistry& rank_metrics(int rank) const;
  /// The shard-level registry (shard.* counters).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *metrics_;
  }
  /// Fingerprint of rank 0's pipeline config (stable across ranks except
  /// for the rank-id term) — what incident files should carry.
  [[nodiscard]] std::uint64_t config_fingerprint(int rank = 0) const;

 private:
  struct Rank {
    int id = -1;
    bool alive = true;
    bool silent = false;     // heartbeat suppressed; awaiting detection
    bool exhausted = false;  // shard fully delivered (until extended)
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<pipeline::InMemoryDataset> staged;  // staged placement
    std::unique_ptr<sim::SimGpu> gpu;
    std::unique_ptr<pipeline::DataPipeline> pipe;
    /// Rank-local order mirror: sample ids and their global positions,
    /// extended in lockstep with extend_epoch_order().
    std::vector<std::size_t> local_ids;
    std::vector<std::uint64_t> global_pos;
    guard::Snapshot anchor;       // last checkpoint (epoch start if none yet)
    std::uint64_t beats = 0;      // heartbeat ordinal, reset per epoch
    std::uint64_t local_batches = 0;  // crash-site ordinal, reset per epoch
  };

  void build_ranks(const pipeline::InMemoryDataset& dataset,
                   const codec::SampleCodec& codec);
  [[nodiscard]] std::vector<int> alive_ids() const;
  /// The epoch_order provider for `rank`: local slice of the plan for the
  /// requested epoch (rebuilding the plan when the epoch differs).
  [[nodiscard]] std::vector<std::size_t> plan_local_order(int rank,
                                                          std::uint64_t epoch);
  void ensure_plan(std::uint64_t epoch);
  /// Declare `rank` dead and (elastic) redistribute its undelivered
  /// remainder from its rollback anchor to the survivors.
  void recover_rank(int rank, const char* cause);
  /// Mark lost any silent rank whose heartbeat deadline has expired, and
  /// recover it.
  void harvest_lost();
  /// Block until every silent rank's deadline expires (bounded), then
  /// recover. Called when only silent ranks could still produce data.
  void await_detection();
  void emit(fault::EventKind kind, int rank, std::string detail);

  ShardConfig config_;
  const pipeline::InMemoryDataset& dataset_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  std::unique_ptr<HeartbeatMonitor> monitor_;
  std::vector<Rank> ranks_;
  std::optional<ShardPlan> plan_;
  GlobalStreamDigest digest_;
  std::uint64_t epoch_ = 0;
  std::uint64_t delivered_batches_ = 0;  // global, for checkpoint cadence
  std::size_t rotor_ = 0;                // round-robin cursor
  bool epoch_dirty_ = false;  // a death/extension happened this epoch
  obs::Counter* ranks_lost_total_;
  obs::Counter* reshards_total_;
  obs::Counter* resharded_samples_total_;
  obs::Counter* checkpoints_total_;
  obs::Counter* checkpoints_skipped_total_;
  obs::Counter* staged_bytes_total_;
};

}  // namespace sciprep::shard
