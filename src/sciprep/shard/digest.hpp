// GlobalStreamDigest — position-keyed content digest of the merged global
// sample stream (sciprep::shard).
//
// Every delivered sample is recorded as (epoch, global position, content
// CRC). Recording is idempotent-with-verification: the same position may be
// delivered twice across a rank failure (the dead rank delivered it after
// its last checkpoint, then a survivor re-delivered it from the checkpoint
// cursor), and that is fine exactly when both deliveries carry identical
// bytes — a mismatch means the reproducibility contract broke and throws
// immediately, naming the position. The merged digest chains the per-sample
// CRCs over *sorted present positions*, so it is independent of rank count,
// delivery interleaving, and duplicate re-deliveries, and skip-aware:
// policy-quarantined samples simply have no entry, and two runs agree iff
// they skipped the same positions and delivered identical bytes everywhere
// else.
#pragma once

#include <cstdint>
#include <map>

#include "sciprep/codec/codec.hpp"

namespace sciprep::shard {

/// Content CRC of one decoded sample: shape, values, and both label kinds,
/// chained — the per-sample analogue of the trainer's per-batch digest.
[[nodiscard]] std::uint32_t sample_crc(const codec::TensorF16& tensor);

class GlobalStreamDigest {
 public:
  /// Record one delivered sample. Re-recording a position with the same CRC
  /// is a no-op (duplicate re-delivery across a failure); a different CRC
  /// throws FormatError — the global stream stopped being reproducible.
  void record(std::uint64_t epoch, std::uint64_t position, std::uint32_t crc);

  /// Positions recorded for `epoch` (delivered, not skipped).
  [[nodiscard]] std::size_t recorded(std::uint64_t epoch) const;

  /// CRC chain over `epoch`'s entries in ascending position order; 0 for an
  /// unknown epoch.
  [[nodiscard]] std::uint32_t epoch_digest(std::uint64_t epoch) const;

  /// CRC chain over every epoch's digest, ascending — one number for the
  /// whole run's merged stream.
  [[nodiscard]] std::uint32_t stream_digest() const;

  /// All entries of `epoch`, ascending by position (for digest files).
  [[nodiscard]] const std::map<std::uint64_t, std::uint32_t>& entries(
      std::uint64_t epoch) const;

 private:
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint32_t>> epochs_;
};

}  // namespace sciprep::shard
