// ShardPlan — the deterministic global shuffle and its per-rank partition
// (sciprep::shard, DESIGN.md §12).
//
// The plan is the single source of truth for "which rank delivers which
// sample, and where does that sample sit in the global stream". It computes
// the global epoch order with the *same* epoch-keyed Fisher–Yates the
// single-pipeline path uses (Rng over split_seed(seed, epoch,
// kShuffleStream)), so a world of 1 reproduces the unsharded order byte for
// byte, then slices it into balanced contiguous shards — one per
// participating rank. Because the order is a pure function of (seed, epoch)
// and the partition a pure function of the participant list, any two runs
// that agree on those inputs agree on the entire global stream: the
// bit-reproducibility claim reduces to this file.
#pragma once

#include <cstdint>
#include <vector>

namespace sciprep::shard {

/// One epoch's global order and its partition across `ranks`.
struct ShardPlan {
  std::uint64_t epoch = 0;
  std::uint64_t seed = 0;
  bool shuffle = true;

  /// Sample ids in global stream order (position p holds the id delivered at
  /// global position p). Identical to DataPipeline's own epoch order for the
  /// same (seed, epoch, shuffle).
  std::vector<std::size_t> global_order;

  /// Participating rank ids, ascending (not necessarily contiguous — after a
  /// death the next epoch's plan partitions among the survivors, keeping
  /// their original ids).
  std::vector<int> ranks;

  /// First global position of each rank's shard, by slot (index into
  /// `ranks`), plus a terminating global_order.size(): slot s owns positions
  /// [bounds[s], bounds[s+1]).
  std::vector<std::uint64_t> bounds;

  /// Compute the plan: global shuffle (or identity order when `shuffle` is
  /// false) and a balanced contiguous partition — slot s gets
  /// [s*n/k, (s+1)*n/k), so shard sizes differ by at most one sample.
  /// Throws ConfigError for an empty or duplicate-ridden rank list.
  [[nodiscard]] static ShardPlan build(std::size_t dataset_size,
                                       const std::vector<int>& ranks,
                                       std::uint64_t seed, std::uint64_t epoch,
                                       bool shuffle);

  [[nodiscard]] std::size_t world() const noexcept { return ranks.size(); }

  /// Slot of `rank` in this plan; -1 if the rank does not participate.
  [[nodiscard]] int slot_of(int rank) const noexcept;

  /// Sample ids of slot `slot`'s shard, in delivery order (what the rank's
  /// pipeline uses as its epoch order).
  [[nodiscard]] std::vector<std::size_t> local_order(std::size_t slot) const;

  /// Global stream positions of slot `slot`'s shard, parallel to
  /// local_order(): entry i is the global position of the rank's i-th local
  /// position.
  [[nodiscard]] std::vector<std::uint64_t> global_positions(
      std::size_t slot) const;
};

/// Identity hash of a rank's sharded order provider, for
/// PipelineConfig::order_fingerprint: mixes the participant list, the rank
/// id, the shuffle seed/flag and the placement mode, so a snapshot taken as
/// rank 2 of {0,1,2,3} refuses to resume as any other rank or world.
[[nodiscard]] std::uint64_t order_fingerprint(const std::vector<int>& ranks,
                                              int rank, std::uint64_t seed,
                                              bool shuffle, bool staged);

}  // namespace sciprep::shard
