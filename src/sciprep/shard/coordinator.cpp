#include "sciprep/shard/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/guard/snapshot.hpp"

namespace sciprep::shard {

namespace {

// Fault-site operation keys for rank-level sites. Keyed by (epoch, rank,
// per-rank ordinal) — pure functions of run configuration, so which beat is
// suppressed / which batch crashes reproduces across runs regardless of
// detection timing or interleaving.
std::uint64_t rank_op(std::uint64_t epoch, int rank, std::uint64_t ordinal) {
  return (epoch << 32) ^ (static_cast<std::uint64_t>(rank) << 20) ^ ordinal;
}

}  // namespace

ShardCoordinator::ShardCoordinator(const pipeline::InMemoryDataset& dataset,
                                   const codec::SampleCodec& codec,
                                   ShardConfig config)
    : config_(std::move(config)),
      dataset_(dataset),
      owned_metrics_(config_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : owned_metrics_.get()),
      ranks_lost_total_(&metrics_->counter("shard.ranks_lost_total")),
      reshards_total_(&metrics_->counter("shard.reshards_total")),
      resharded_samples_total_(
          &metrics_->counter("shard.resharded_samples_total")),
      checkpoints_total_(&metrics_->counter("shard.checkpoints_total")),
      checkpoints_skipped_total_(
          &metrics_->counter("shard.checkpoints_skipped_total")),
      staged_bytes_total_(&metrics_->counter("shard.staged_bytes_total")) {
  if (config_.world < 1) {
    throw ConfigError(fmt("shard: world size {} must be >= 1", config_.world));
  }
  monitor_ = std::make_unique<HeartbeatMonitor>(
      config_.world, config_.heartbeat_deadline_seconds, metrics_);
  build_ranks(dataset, codec);
  start_epoch(0);
}

ShardCoordinator::~ShardCoordinator() = default;

void ShardCoordinator::build_ranks(const pipeline::InMemoryDataset& dataset,
                                   const codec::SampleCodec& codec) {
  const bool gpu_placement =
      config_.pipeline.decode_placement == codec::Placement::kGpu;
  if (gpu_placement && !config_.gpu_factory) {
    throw ConfigError(
        "shard: GPU placement needs a gpu_factory (one simulated device per "
        "rank)");
  }
  std::vector<int> all_ranks(static_cast<std::size_t>(config_.world));
  for (int i = 0; i < config_.world; ++i) all_ranks[static_cast<std::size_t>(i)] = i;

  // Two passes: the Rank entries (ids + liveness) must all exist before the
  // first pipeline constructor runs, because constructing a pipeline calls
  // the epoch_order provider, which plans over alive_ids().
  ranks_.resize(static_cast<std::size_t>(config_.world));
  for (int i = 0; i < config_.world; ++i) {
    ranks_[static_cast<std::size_t>(i)].id = i;
  }
  for (Rank& rank : ranks_) {
    rank.registry = std::make_unique<obs::MetricsRegistry>();
    if (config_.staged) {
      // Node-local staging: the rank reads its own dataset replica. Sample
      // storage is shared underneath (shared_ptr), but the placement is
      // accounted — this is the paper's staged/unstaged axis.
      rank.staged = std::make_unique<pipeline::InMemoryDataset>(dataset);
      staged_bytes_total_->add(dataset.total_bytes());
    }
    if (gpu_placement) {
      rank.gpu = config_.gpu_factory(rank.id);
      if (rank.gpu == nullptr) {
        throw ConfigError(
            fmt("shard: gpu_factory returned null for rank {}", rank.id));
      }
    }
    pipeline::PipelineConfig cfg = config_.pipeline;
    cfg.metrics = rank.registry.get();
    cfg.epoch_order = [this, id = rank.id](std::uint64_t epoch) {
      return plan_local_order(id, epoch);
    };
    cfg.order_fingerprint = order_fingerprint(
        all_ranks, rank.id, config_.pipeline.seed, config_.pipeline.shuffle,
        config_.staged);
    if (config_.on_event) {
      fault::RecoveryListener sink = config_.on_event;
      const int id = rank.id;
      cfg.on_recovery_event = [sink, id](const fault::RecoveryEvent& event) {
        fault::RecoveryEvent scoped = event;
        if (scoped.scope.empty()) scoped.scope = fmt("rank{}", id);
        sink(scoped);
      };
    }
    const pipeline::InMemoryDataset& store =
        config_.staged ? *rank.staged : dataset_;
    rank.pipe = std::make_unique<pipeline::DataPipeline>(store, codec, cfg,
                                                         rank.gpu.get());
  }
}

std::vector<int> ShardCoordinator::alive_ids() const {
  std::vector<int> ids;
  ids.reserve(ranks_.size());
  for (const Rank& rank : ranks_) {
    if (rank.alive) ids.push_back(rank.id);
  }
  return ids;
}

void ShardCoordinator::ensure_plan(std::uint64_t epoch) {
  if (plan_ && plan_->epoch == epoch) return;
  plan_ = ShardPlan::build(dataset_.size(), alive_ids(), config_.pipeline.seed,
                           epoch, config_.pipeline.shuffle);
}

std::vector<std::size_t> ShardCoordinator::plan_local_order(
    int rank, std::uint64_t epoch) {
  ensure_plan(epoch);
  const int slot = plan_->slot_of(rank);
  if (slot < 0) {
    throw ConfigError(
        fmt("shard: rank {} does not participate in epoch {}", rank, epoch));
  }
  return plan_->local_order(static_cast<std::size_t>(slot));
}

void ShardCoordinator::start_epoch(std::uint64_t epoch) {
  epoch_ = epoch;
  rotor_ = 0;
  epoch_dirty_ = false;
  plan_.reset();
  ensure_plan(epoch);
  for (Rank& rank : ranks_) {
    if (!rank.alive) continue;
    rank.pipe->start_epoch(epoch);
    const auto slot = static_cast<std::size_t>(plan_->slot_of(rank.id));
    rank.local_ids = plan_->local_order(slot);
    rank.global_pos = plan_->global_positions(slot);
    rank.exhausted = rank.local_ids.empty();
    rank.silent = false;
    rank.beats = 0;
    rank.local_batches = 0;
    // The epoch-start snapshot is the default rollback anchor: a rank that
    // dies before any checkpoint re-delivers its whole shard via survivors.
    rank.anchor = rank.pipe->snapshot();
  }
}

void ShardCoordinator::emit(fault::EventKind kind, int rank,
                            std::string detail) {
  if (!config_.on_event) return;
  fault::RecoveryEvent event;
  event.kind = kind;
  event.stage = "shard";
  event.detail = std::move(detail);
  event.scope = fmt("rank{}", rank);
  config_.on_event(event);
}

void ShardCoordinator::kill_rank(int rank) {
  if (rank < 0 || rank >= config_.world) {
    throw ConfigError(fmt("shard: kill_rank({}) outside world {}", rank,
                          config_.world));
  }
  recover_rank(rank, "killed");
}

void ShardCoordinator::recover_rank(int rank, const char* cause) {
  Rank& dead = ranks_.at(static_cast<std::size_t>(rank));
  if (!dead.alive) return;
  dead.alive = false;
  dead.silent = false;
  monitor_->retire(rank);
  ranks_lost_total_->add(1);
  epoch_dirty_ = true;
  emit(fault::EventKind::kRankLost, rank,
       fmt("rank {} lost mid-epoch {}: {}", rank, epoch_, cause));
  // Simulated process death: drop the pipeline (joins its workers, abandons
  // its prefetch). The registry stays — its retry counters are real spent
  // wall clock — but delivered-data accounting rolls back to the anchor.
  dead.pipe.reset();
  if (!config_.elastic) {
    throw Error(fmt(
        "shard: rank {} lost ({}) and elastic resharding is disabled", rank,
        cause));
  }

  // Undelivered remainder measured from the rollback anchor, not the death
  // point: anything delivered after the last checkpoint is re-delivered by
  // the survivors (and rolled out of the dead rank's aggregate contribution
  // by aggregate(), so the stream accounting stays exact-once).
  const std::size_t from = static_cast<std::size_t>(dead.anchor.cursor);
  SCIPREP_ASSERT(from <= dead.local_ids.size());
  const std::size_t remainder = dead.local_ids.size() - from;
  if (remainder == 0) return;

  std::vector<Rank*> survivors;
  for (Rank& rank_ref : ranks_) {
    if (rank_ref.alive) survivors.push_back(&rank_ref);
  }
  if (survivors.empty()) {
    throw Error(fmt(
        "shard: rank {} lost ({}) with no survivors to re-shard onto", rank,
        cause));
  }
  reshards_total_->add(1);
  resharded_samples_total_->add(remainder);
  const std::size_t k = survivors.size();
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t lo = from + remainder * s / k;
    const std::size_t hi = from + remainder * (s + 1) / k;
    if (lo == hi) continue;
    Rank& surv = *survivors[s];
    const std::vector<std::size_t> tail(
        dead.local_ids.begin() + static_cast<std::ptrdiff_t>(lo),
        dead.local_ids.begin() + static_cast<std::ptrdiff_t>(hi));
    surv.pipe->extend_epoch_order(tail);
    surv.local_ids.insert(surv.local_ids.end(), tail.begin(), tail.end());
    surv.global_pos.insert(
        surv.global_pos.end(),
        dead.global_pos.begin() + static_cast<std::ptrdiff_t>(lo),
        dead.global_pos.begin() + static_cast<std::ptrdiff_t>(hi));
    surv.exhausted = false;
    emit(fault::EventKind::kReshard, surv.id,
         fmt("rank {} adopted {} samples [{}..{}) of dead rank {}'s shard",
             surv.id, hi - lo, lo, hi, rank));
  }
}

void ShardCoordinator::harvest_lost() {
  for (Rank& rank : ranks_) {
    if (rank.alive && rank.silent && monitor_->lost(rank.id)) {
      recover_rank(rank.id, "heartbeat deadline expired");
    }
  }
}

void ShardCoordinator::await_detection() {
  // Only silent ranks can still matter; block until the watchdog declares
  // them (bounded — a silent rank's deadline is already ticking).
  const auto give_up =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              2 * config_.heartbeat_deadline_seconds + 1.0));
  for (;;) {
    harvest_lost();
    bool any_silent = false;
    for (const Rank& rank : ranks_) {
      any_silent = any_silent || (rank.alive && rank.silent);
    }
    if (!any_silent) return;
    if (std::chrono::steady_clock::now() >= give_up) {
      // Failsafe: the watchdog should have fired long ago. Declare the
      // ranks lost rather than hanging the epoch.
      for (Rank& rank : ranks_) {
        if (rank.alive && rank.silent) {
          recover_rank(rank.id, "heartbeat silent (detection forced)");
        }
      }
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool ShardCoordinator::step(ShardBatch& out) {
  fault::Injector* injector = config_.pipeline.injector != nullptr
                                  ? config_.pipeline.injector
                                  : fault::Injector::global();
  for (;;) {
    harvest_lost();
    Rank* next = nullptr;
    for (std::size_t probe = 0; probe < ranks_.size(); ++probe) {
      Rank& cand = ranks_[(rotor_ + probe) % ranks_.size()];
      if (cand.alive && !cand.silent && !cand.exhausted) {
        next = &cand;
        rotor_ = (rotor_ + probe + 1) % ranks_.size();
        break;
      }
    }
    if (next == nullptr) {
      bool any_silent = false;
      for (const Rank& rank : ranks_) {
        any_silent = any_silent || (rank.alive && rank.silent);
      }
      if (any_silent) {
        await_detection();
        continue;  // re-sharding may have un-exhausted a survivor
      }
      return false;  // epoch complete
    }

    Rank& rank = *next;
    if (injector != nullptr) {
      // The rank's liveness beat goes out through the rank.heartbeat fault
      // site; a transient there means the beat was lost — the rank falls
      // silent and its armed deadline will out it.
      try {
        injector->on_operation(fault::Site::kRankHeartbeat,
                               rank_op(epoch_, rank.id, rank.beats));
      } catch (const TransientError&) {
        ++rank.beats;
        rank.silent = true;
        continue;
      }
    }
    ++rank.beats;
    monitor_->beat(rank.id);

    pipeline::Batch batch;
    if (!rank.pipe->next_batch(batch)) {
      rank.exhausted = true;
      monitor_->pause(rank.id);
      continue;
    }

    if (injector != nullptr) {
      // Mid-batch crash: the batch was assembled but the rank dies before
      // handing it to the consumer — it is discarded and its samples are
      // re-delivered by the survivors from the rank's rollback anchor.
      try {
        injector->on_operation(fault::Site::kRankCrash,
                               rank_op(epoch_, rank.id, rank.local_batches));
      } catch (const TransientError&) {
        ++rank.local_batches;
        recover_rank(rank.id, "injected mid-batch crash");
        continue;
      }
    }
    ++rank.local_batches;

    out.rank = rank.id;
    out.global_positions.clear();
    out.global_positions.reserve(batch.order_positions.size());
    for (const std::uint64_t local : batch.order_positions) {
      out.global_positions.push_back(
          rank.global_pos.at(static_cast<std::size_t>(local)));
    }
    if (config_.verify_stream) {
      for (std::size_t i = 0; i < batch.samples.size(); ++i) {
        digest_.record(batch.epoch, out.global_positions[i],
                       sample_crc(batch.samples[i]));
      }
    }
    out.batch = std::move(batch);
    ++delivered_batches_;
    if (config_.checkpoint_every_batches > 0 &&
        delivered_batches_ % config_.checkpoint_every_batches == 0) {
      checkpoint();
    }
    return true;
  }
}

void ShardCoordinator::checkpoint() {
  checkpoints_total_->add(1);
  for (Rank& rank : ranks_) {
    if (rank.alive) rank.anchor = rank.pipe->snapshot();
  }
  if (config_.checkpoint_dir.empty()) return;
  // On-disk coordinated sets must describe a state a *fresh* world can
  // rebuild from (seed, epoch, full participant list). After a death or an
  // intra-epoch extension that stops holding, so persistence pauses until
  // the next clean epoch boundary; the in-memory anchors above still
  // advance, so recovery rollback stays tight.
  if (epoch_dirty_ || alive_count() != config_.world) {
    checkpoints_skipped_total_->add(1);
    return;
  }
  for (Rank& rank : ranks_) {
    guard::write_rank_snapshot(config_.checkpoint_dir, rank.id, rank.anchor);
  }
}

void ShardCoordinator::resume(const std::string& dir) {
  const std::vector<guard::Snapshot> set =
      guard::read_coordinated(dir, config_.world);
  for (Rank& rank : ranks_) {
    if (!rank.alive || rank.pipe == nullptr) {
      throw ConfigError(
          "shard: resume() needs a freshly constructed coordinator (every "
          "rank alive)");
    }
    // Per-rank fingerprint check inside resume() rejects corrupted or
    // cross-rank-swapped snapshots with typed errors.
    rank.pipe->resume(set[static_cast<std::size_t>(rank.id)]);
  }
  epoch_ = set.front().epoch;
  ensure_plan(epoch_);
  delivered_batches_ = 0;
  rotor_ = 0;
  epoch_dirty_ = false;
  for (Rank& rank : ranks_) {
    const guard::Snapshot& snap = set[static_cast<std::size_t>(rank.id)];
    const auto slot = static_cast<std::size_t>(plan_->slot_of(rank.id));
    rank.local_ids = plan_->local_order(slot);
    rank.global_pos = plan_->global_positions(slot);
    rank.exhausted = snap.cursor >= rank.local_ids.size();
    rank.silent = false;
    rank.beats = 0;
    rank.local_batches = snap.batch_index;
    rank.anchor = snap;
    delivered_batches_ += snap.batch_index;
  }
}

ShardStats ShardCoordinator::aggregate() const {
  ShardStats out;
  out.world = config_.world;
  for (const Rank& rank : ranks_) {
    if (rank.alive) {
      ++out.alive;
      const pipeline::PipelineStats stats = rank.pipe->stats();
      out.totals.samples += stats.samples;
      out.totals.batches += stats.batches;
      out.totals.bytes_at_rest += stats.bytes_at_rest;
      out.totals.samples_skipped += stats.samples_skipped;
      out.totals.retries += stats.retries;
      out.totals.fallbacks += stats.fallbacks;
      out.totals.degraded = out.totals.degraded || stats.degraded;
      out.totals.decode_cpu_seconds += stats.decode_cpu_seconds;
      out.totals.decode_gpu_seconds += stats.decode_gpu_seconds;
      out.totals.gpu.merge(stats.gpu);
    } else {
      // The double-count fix: a dead rank contributes its last checkpoint,
      // not its live registry — everything it delivered after that anchor
      // was re-delivered by the survivors, whose registries already count
      // it. Retries stay live (spent wall clock, exempt from equivalence).
      out.totals.samples += rank.anchor.samples;
      out.totals.batches += rank.anchor.batches;
      out.totals.bytes_at_rest += rank.anchor.bytes_at_rest;
      out.totals.samples_skipped += rank.anchor.samples_skipped;
      out.totals.fallbacks += rank.anchor.fallbacks;
      out.totals.degraded = out.totals.degraded || rank.anchor.degraded;
      out.totals.retries +=
          rank.registry->counter_value("pipeline.retries_total");
    }
  }
  out.ranks_lost = ranks_lost_total_->value();
  out.reshards = reshards_total_->value();
  out.resharded_samples = resharded_samples_total_->value();
  out.checkpoints = checkpoints_total_->value();
  return out;
}

bool ShardCoordinator::alive(int rank) const {
  return ranks_.at(static_cast<std::size_t>(rank)).alive;
}

int ShardCoordinator::alive_count() const {
  int count = 0;
  for (const Rank& rank : ranks_) count += rank.alive ? 1 : 0;
  return count;
}

obs::MetricsRegistry& ShardCoordinator::rank_metrics(int rank) const {
  return *ranks_.at(static_cast<std::size_t>(rank)).registry;
}

std::uint64_t ShardCoordinator::config_fingerprint(int rank) const {
  const Rank& entry = ranks_.at(static_cast<std::size_t>(rank));
  if (entry.pipe == nullptr) {
    throw ConfigError(fmt("shard: rank {} is dead", rank));
  }
  return entry.pipe->config_fingerprint();
}

}  // namespace sciprep::shard
