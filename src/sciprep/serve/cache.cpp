#include "sciprep/serve/cache.hpp"

namespace sciprep::serve {

std::uint64_t tensor_bytes(const codec::TensorF16& tensor) {
  return tensor.shape.size() * sizeof(std::uint64_t) +
         tensor.values.size() * sizeof(Half) +
         tensor.float_labels.size() * sizeof(float) +
         tensor.byte_labels.size();
}

SampleCache::SampleCache(CacheConfig config)
    : config_(config),
      hits_((config.metrics != nullptr ? *config.metrics
                                       : obs::MetricsRegistry::global())
                .counter("serve.cache.hits_total")),
      misses_((config.metrics != nullptr ? *config.metrics
                                         : obs::MetricsRegistry::global())
                  .counter("serve.cache.misses_total")),
      inserts_((config.metrics != nullptr ? *config.metrics
                                          : obs::MetricsRegistry::global())
                   .counter("serve.cache.inserts_total")),
      evictions_((config.metrics != nullptr ? *config.metrics
                                            : obs::MetricsRegistry::global())
                     .counter("serve.cache.evictions_total")),
      quota_rejected_((config.metrics != nullptr
                           ? *config.metrics
                           : obs::MetricsRegistry::global())
                          .counter("serve.cache.quota_rejected_total")),
      bytes_gauge_((config.metrics != nullptr ? *config.metrics
                                              : obs::MetricsRegistry::global())
                       .gauge("serve.cache.bytes")) {}

bool SampleCache::lookup(std::uint64_t key, std::size_t index,
                         codec::TensorF16& out) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(Key{key, index});
  if (it == entries_.end()) {
    misses_.add(1);
    return false;
  }
  lru_.splice(lru_.end(), lru_, it->second.lru);  // refresh recency
  out = it->second.tensor;
  hits_.add(1);
  return true;
}

void SampleCache::insert(std::uint64_t key, std::size_t index,
                         std::uint64_t tenant,
                         const codec::TensorF16& tensor) {
  const std::uint64_t bytes = tensor_bytes(tensor);
  std::lock_guard lock(mutex_);
  if (bytes == 0 || bytes > config_.capacity_bytes) return;
  const Key full_key{key, index};
  if (entries_.count(full_key) > 0) return;  // racing decode already inserted
  if (config_.per_tenant_quota_bytes > 0 &&
      tenant_bytes_[tenant] + bytes > config_.per_tenant_quota_bytes) {
    quota_rejected_.add(1);
    return;
  }
  while (resident_ + bytes > config_.capacity_bytes && !lru_.empty()) {
    evict_locked(lru_.front());
    evictions_.add(1);
  }
  Entry entry;
  entry.tensor = tensor;
  entry.bytes = bytes;
  entry.tenant = tenant;
  entry.lru = lru_.insert(lru_.end(), full_key);
  entries_.emplace(full_key, std::move(entry));
  resident_ += bytes;
  tenant_bytes_[tenant] += bytes;
  inserts_.add(1);
  bytes_gauge_.set(static_cast<std::int64_t>(resident_));
}

void SampleCache::drop_tenant(std::uint64_t tenant) {
  std::lock_guard lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.tenant == tenant) {
      const Key key = it->first;
      ++it;  // evict_locked erases `key`; advance first
      evict_locked(key);
    } else {
      ++it;
    }
  }
  bytes_gauge_.set(static_cast<std::int64_t>(resident_));
}

std::uint64_t SampleCache::resident_bytes() const {
  std::lock_guard lock(mutex_);
  return resident_;
}

std::uint64_t SampleCache::tenant_bytes(std::uint64_t tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = tenant_bytes_.find(tenant);
  return it != tenant_bytes_.end() ? it->second : 0;
}

std::size_t SampleCache::entry_count() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void SampleCache::evict_locked(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  resident_ -= it->second.bytes;
  auto tenant_it = tenant_bytes_.find(it->second.tenant);
  if (tenant_it != tenant_bytes_.end()) {
    tenant_it->second -= std::min(tenant_it->second, it->second.bytes);
  }
  lru_.erase(it->second.lru);
  entries_.erase(it);
  bytes_gauge_.set(static_cast<std::int64_t>(resident_));
}

}  // namespace sciprep::serve
