#include "sciprep/serve/service.hpp"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <utility>

#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/common/rng.hpp"

namespace sciprep::serve {

namespace {

obs::MetricsRegistry& resolve(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? *metrics : obs::MetricsRegistry::global();
}

}  // namespace

const char* admission_name(Admission admission) noexcept {
  switch (admission) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kDegraded:
      return "degraded";
    case Admission::kRejected:
      return "rejected";
  }
  return "?";
}

const char* session_state_name(SessionState state) noexcept {
  switch (state) {
    case SessionState::kActive:
      return "active";
    case SessionState::kSuspended:
      return "suspended";
    case SessionState::kEvicted:
      return "evicted";
    case SessionState::kClosed:
      return "closed";
  }
  return "?";
}

DataService::DataService(const pipeline::InMemoryDataset& dataset,
                         const codec::SampleCodec& codec, ServiceConfig config,
                         sim::SimGpu* gpu)
    : dataset_(dataset),
      codec_(codec),
      config_(std::move(config)),
      gpu_(gpu),
      metrics_(&resolve(config_.metrics)),
      probe_injector_(1, metrics_),
      pool_metrics_(*metrics_, "serve.pool"),
      pool_(config_.worker_threads),
      cache_([this] {
        CacheConfig c = config_.cache;
        if (c.metrics == nullptr) c.metrics = metrics_;
        return c;
      }()),
      leases_(static_cast<int>(std::max<std::size_t>(1,
                                                     config_.limits.max_tenants)),
              config_.lease_deadline_seconds, metrics_),
      admitted_total_(metrics_->counter("serve.sessions_admitted_total")),
      degraded_total_(metrics_->counter("serve.sessions_degraded_total")),
      rejected_total_(metrics_->counter("serve.sessions_rejected_total")),
      evicted_total_(metrics_->counter("serve.sessions_evicted_total")),
      suspended_total_(metrics_->counter("serve.sessions_suspended_total")),
      reattached_total_(metrics_->counter("serve.sessions_reattached_total")),
      batches_served_(metrics_->counter("serve.batches_served_total")),
      committed_gauge_(metrics_->gauge("serve.committed_bytes")),
      shedding_gauge_(metrics_->gauge("serve.shedding")),
      active_gauge_(metrics_->gauge("serve.active_sessions")) {
  const ServiceLimits& limits = config_.limits;
  if (limits.max_tenants < 1) {
    throw ConfigError("serve: max_tenants must be >= 1");
  }
  if (limits.degrade_watermark <= 0 || limits.degrade_watermark > 1.0) {
    throw ConfigError(fmt("serve: degrade_watermark {} must be in (0, 1]",
                          limits.degrade_watermark));
  }
  if (limits.recover_watermark < 0 ||
      limits.recover_watermark > limits.degrade_watermark) {
    throw ConfigError(
        fmt("serve: recover_watermark {} must be in [0, degrade_watermark {}]",
            limits.recover_watermark, limits.degrade_watermark));
  }
  if (!config_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    if (ec) {
      throw IoError(fmt("serve: cannot create checkpoint dir '{}': {}",
                        config_.checkpoint_dir, ec.message()));
    }
  }
  pool_.set_observer(&pool_metrics_);
  // Admission charges are keyed to what one in-flight sample actually costs
  // resident: probe-decode sample 0 once, through a zero-probability local
  // injector so a process-global injector cannot perturb the measurement.
  if (dataset_.size() > 0) {
    pipeline::PipelineConfig probe;
    probe.batch_size = 1;
    probe.shuffle = false;
    probe.prefetch = false;
    probe.injector = &probe_injector_;
    probe.shared_pool = &pool_;
    const pipeline::DataPipeline probe_pipeline(dataset_, codec_, probe, gpu_);
    probe_bytes_ = tensor_bytes(probe_pipeline.decode_sample(0));
  }
  free_slots_.reserve(limits.max_tenants);
  for (std::size_t slot = limits.max_tenants; slot > 0; --slot) {
    free_slots_.push_back(static_cast<int>(slot - 1));
  }
  // The wire handshake's identity: everything that decides what bytes a
  // tenant's stream contains. Two services agree on the fingerprint exactly
  // when a session could migrate between them bit-identically.
  std::uint64_t fp = 0x73637770u;  // arbitrary non-zero anchor ("scwp")
  const auto mix = [&fp](std::uint64_t v) {
    std::uint64_t state = fp ^ v;
    fp = splitmix64(state);
  };
  mix(dataset_.size());
  mix(dataset_.mean_sample_bytes());
  mix(crc32c(as_bytes(codec_.name())));
  mix(std::bit_cast<std::uint64_t>(config_.lease_deadline_seconds));
  mix(config_.verify_stream ? 1 : 0);
  mix(probe_bytes_);
  fingerprint_ = fp != 0 ? fp : 1;  // 0 is the wire's "first contact" marker
}

DataService::~DataService() {
  {
    std::lock_guard lock(mutex_);
    for (auto& tenant : tenants_) {
      if (tenant->state == SessionState::kActive) {
        tenant->token.cancel("service shutdown");
      }
    }
    // Pipeline destructors drain their in-flight work on the shared pool, so
    // after this loop the pool is quiet and safe to tear down.
    for (auto& tenant : tenants_) {
      tenant->pipeline.reset();
      tenant->cache_view.reset();
    }
  }
  pool_.wait_idle();
  pool_.set_observer(nullptr);
}

std::uint64_t DataService::session_charge(const TenantSpec& spec,
                                          bool prefetch) const {
  const std::uint64_t per_sample =
      probe_bytes_ > 0 ? probe_bytes_ : dataset_.mean_sample_bytes();
  const std::uint64_t batch =
      static_cast<std::uint64_t>(std::max(1, spec.pipeline.batch_size));
  // Prefetch overlaps the next batch's decode with the consumer, so two
  // batches are resident at once.
  return batch * per_sample * (prefetch ? 2 : 1);
}

Admission DataService::admit_locked(const TenantSpec& spec) {
  const ServiceLimits& limits = config_.limits;
  if (free_slots_.empty()) return Admission::kRejected;
  if (limits.max_queue_depth > 0 &&
      pool_.queue_depth() > limits.max_queue_depth) {
    return Admission::kRejected;
  }
  if (limits.max_inflight_bytes == 0) return Admission::kAdmitted;
  const std::uint64_t full = session_charge(spec, spec.pipeline.prefetch);
  const double full_ratio =
      static_cast<double>(committed_ + full) /
      static_cast<double>(limits.max_inflight_bytes);
  if (!shedding_ && full_ratio <= limits.degrade_watermark) {
    return Admission::kAdmitted;
  }
  if (full_ratio > limits.degrade_watermark && !shedding_) {
    shedding_ = true;
    shedding_gauge_.set(1);
  }
  const std::uint64_t degraded = session_charge(spec, false);
  return committed_ + degraded <= limits.max_inflight_bytes
             ? Admission::kDegraded
             : Admission::kRejected;
}

void DataService::activate_locked(Tenant& tenant, int session,
                                  Admission admission,
                                  const guard::Snapshot* from) {
  tenant.admission = admission;
  const bool degraded = admission == Admission::kDegraded;
  // Child of the caller's token (fresh root when none): the tenant can still
  // be cancelled from outside, and the service cancels its side on eviction
  // without touching the caller's tree.
  tenant.token = tenant.spec.pipeline.cancel.child();
  if (!tenant.metrics || from != nullptr) {
    // resume() re-adds the snapshot's delivered-counter deltas on the
    // assumption of a fresh (post-crash) registry, so a reattach starts one:
    // the tenant's exact-once accounting then spans the suspend.
    tenant.metrics = std::make_unique<obs::MetricsRegistry>();
  }

  pipeline::PipelineConfig cfg = tenant.spec.pipeline;
  cfg.shared_pool = &pool_;
  cfg.pool_key = static_cast<std::uint64_t>(session);
  cfg.pool_weight = std::max<std::uint32_t>(1, tenant.spec.weight);
  cfg.cancel = tenant.token;
  cfg.metrics = tenant.metrics.get();
  if (degraded) cfg.prefetch = false;

  // The shared cache is only bit-transparent when a sample's decode is a
  // pure function of its id — any fault injection (per-pipeline or global)
  // breaks that, and degraded sessions bypass the cache by design. Content
  // key = decode placement: CPU and simulated-GPU decoders never share
  // entries.
  const bool cache_ok = !degraded && config_.cache.capacity_bytes > 0 &&
                        cfg.injector == nullptr &&
                        fault::Injector::global() == nullptr;
  if (cache_ok) {
    tenant.cache_view = std::make_unique<TenantCacheView>(
        cache_, static_cast<std::uint64_t>(cfg.decode_placement),
        static_cast<std::uint64_t>(session));
    cfg.decode_cache = tenant.cache_view.get();
  } else {
    tenant.cache_view.reset();
    cfg.decode_cache = nullptr;
  }

  // Stamp the tenant's name as the event scope so flight-recorder rate
  // limits and incident files attribute every recovery event to the tenant.
  const std::string name = tenant.spec.name;
  const fault::RecoveryListener user = tenant.spec.pipeline.on_recovery_event;
  const fault::RecoveryListener svc = config_.on_event;
  if (user || svc) {
    cfg.on_recovery_event = [name, user, svc](const fault::RecoveryEvent& event) {
      fault::RecoveryEvent scoped = event;
      if (scoped.scope.empty()) scoped.scope = name;
      if (user) user(scoped);
      if (svc) svc(scoped);
    };
  } else {
    cfg.on_recovery_event = nullptr;
  }

  tenant.charge = session_charge(tenant.spec, cfg.prefetch);
  committed_ += tenant.charge;
  committed_gauge_.set(static_cast<std::int64_t>(committed_));

  tenant.pipeline =
      std::make_unique<pipeline::DataPipeline>(dataset_, codec_, cfg, gpu_);
  if (from != nullptr) {
    tenant.pipeline->resume(*from);
    // The snapshot's epoch is mid-flight: it is the open epoch, and
    // next_batch()'s exhaustion path advances past it (invariant: while
    // epoch_open, next_epoch names the open epoch).
    tenant.next_epoch = from->epoch;
    tenant.epoch_open = true;
  }

  tenant.slot = free_slots_.back();
  free_slots_.pop_back();
  tenant.state = SessionState::kActive;
  leases_.beat(tenant.slot);
  active_gauge_.add(1);
}

void DataService::release_locked(Tenant& tenant) {
  tenant.pipeline.reset();
  tenant.cache_view.reset();
  if (tenant.slot >= 0) {
    leases_.pause(tenant.slot);
    free_slots_.push_back(tenant.slot);
    tenant.slot = -1;
  }
  committed_ -= std::min(committed_, tenant.charge);
  tenant.charge = 0;
  committed_gauge_.set(static_cast<std::int64_t>(committed_));
  active_gauge_.add(-1);
  if (shedding_ && config_.limits.max_inflight_bytes > 0 &&
      static_cast<double>(committed_) /
              static_cast<double>(config_.limits.max_inflight_bytes) <
          config_.limits.recover_watermark) {
    shedding_ = false;
    shedding_gauge_.set(0);
  }
}

void DataService::emit_event(fault::EventKind kind, const std::string& tenant,
                             std::string detail) const {
  if (!config_.on_event) return;
  fault::RecoveryEvent event;
  event.kind = kind;
  event.stage = "serve";
  event.detail = std::move(detail);
  event.scope = tenant;
  config_.on_event(event);
}

DataService::Tenant& DataService::tenant_checked(int session) const {
  if (session < 0 || static_cast<std::size_t>(session) >= tenants_.size()) {
    throw ConfigError(fmt("serve: unknown session {}", session));
  }
  return *tenants_[static_cast<std::size_t>(session)];
}

std::string DataService::checkpoint_path(const Tenant& tenant) const {
  return fmt("{}/{}.ckpt", config_.checkpoint_dir, tenant.spec.name);
}

DataService::OpenResult DataService::open_session(TenantSpec spec) {
  std::lock_guard lock(mutex_);
  if (spec.name.empty()) {
    throw ConfigError("serve: tenant name must be non-empty");
  }
  for (const auto& tenant : tenants_) {
    if (tenant->spec.name == spec.name &&
        (tenant->state == SessionState::kActive ||
         tenant->state == SessionState::kSuspended)) {
      throw ConfigError(
          fmt("serve: tenant '{}' already has a live session", spec.name));
    }
  }
  const Admission admission = admit_locked(spec);
  if (admission == Admission::kRejected) {
    rejected_total_.add(1);
    emit_event(fault::EventKind::kSessionShed, spec.name,
               fmt("admission rejected: committed {} of {} bytes, {} slots "
                   "free, queue depth {}",
                   committed_, config_.limits.max_inflight_bytes,
                   free_slots_.size(), pool_.queue_depth()));
    return {-1, Admission::kRejected};
  }
  const int session = static_cast<int>(tenants_.size());
  auto tenant = std::make_unique<Tenant>();
  tenant->spec = std::move(spec);
  activate_locked(*tenant, session, admission, nullptr);
  if (admission == Admission::kDegraded) {
    degraded_total_.add(1);
    emit_event(fault::EventKind::kSessionShed, tenant->spec.name,
               fmt("admitted degraded: committed {} of {} bytes, shedding",
                   committed_, config_.limits.max_inflight_bytes));
  } else {
    admitted_total_.add(1);
  }
  tenants_.push_back(std::move(tenant));
  return {session, admission};
}

bool DataService::next_batch(int session, pipeline::Batch& batch) {
  Tenant* tenant = nullptr;
  {
    std::lock_guard lock(mutex_);
    tenant = &tenant_checked(session);
    if (tenant->state != SessionState::kActive) {
      throw ConfigError(fmt("serve: session {} ('{}') is {}, not active",
                            session, tenant->spec.name,
                            session_state_name(tenant->state)));
    }
    leases_.beat(tenant->slot);
  }
  try {
    for (;;) {
      if (!tenant->epoch_open) {
        if (tenant->next_epoch >= tenant->spec.epochs) return false;
        tenant->pipeline->start_epoch(tenant->next_epoch);
        tenant->epoch_open = true;
      }
      if (tenant->pipeline->next_batch(batch)) {
        if (config_.verify_stream) {
          for (std::size_t i = 0; i < batch.samples.size(); ++i) {
            tenant->digest.record(batch.epoch, batch.order_positions[i],
                                  shard::sample_crc(batch.samples[i]));
          }
        }
        batches_served_.add(1);
        return true;
      }
      tenant->epoch_open = false;
      tenant->next_epoch += 1;
    }
  } catch (const std::exception& e) {
    // The escalation is this tenant's alone: cancel its tree, release its
    // charge and cache working set, and rethrow to its caller only.
    std::lock_guard lock(mutex_);
    if (tenant->state == SessionState::kActive) {
      emit_event(fault::EventKind::kTenantEvicted, tenant->spec.name,
                 fmt("pipeline escalated: {}", e.what()));
      tenant->token.cancel("tenant evicted");
      release_locked(*tenant);
      cache_.drop_tenant(static_cast<std::uint64_t>(session));
      tenant->state = SessionState::kEvicted;
      evicted_total_.add(1);
    }
    throw;
  }
}

void DataService::beat(int session) {
  std::lock_guard lock(mutex_);
  Tenant& tenant = tenant_checked(session);
  if (tenant.state != SessionState::kActive) {
    throw ConfigError(fmt("serve: cannot beat session {} ('{}'): {}", session,
                          tenant.spec.name, session_state_name(tenant.state)));
  }
  leases_.beat(tenant.slot);
}

void DataService::close_session(int session) {
  std::lock_guard lock(mutex_);
  Tenant& tenant = tenant_checked(session);
  if (tenant.state != SessionState::kActive) {
    throw ConfigError(fmt("serve: cannot close session {} ('{}'): {}", session,
                          tenant.spec.name,
                          session_state_name(tenant.state)));
  }
  release_locked(tenant);
  tenant.state = SessionState::kClosed;
}

std::vector<std::string> DataService::sweep_leases() {
  std::lock_guard lock(mutex_);
  std::vector<std::string> suspended;
  for (auto& entry : tenants_) {
    Tenant& tenant = *entry;
    if (tenant.state != SessionState::kActive || !leases_.lost(tenant.slot)) {
      continue;
    }
    emit_event(fault::EventKind::kTenantLost, tenant.spec.name,
               fmt("lease expired after {:.3f}s; session suspended",
                   config_.lease_deadline_seconds));
    // The consumer is gone, so no next_batch() races this: quiesce the
    // pipeline into a delivered-batch-boundary snapshot and free everything
    // the session held. resume() re-produces the parked prefetch batch
    // bit-identically.
    guard::Snapshot snapshot = tenant.pipeline->snapshot();
    if (!config_.checkpoint_dir.empty()) {
      guard::write_snapshot(checkpoint_path(tenant), snapshot);
    }
    tenant.suspend_snapshot = std::move(snapshot);
    release_locked(tenant);
    tenant.state = SessionState::kSuspended;
    suspended_total_.add(1);
    suspended.push_back(tenant.spec.name);
  }
  return suspended;
}

DataService::OpenResult DataService::reattach(const std::string& name) {
  std::lock_guard lock(mutex_);
  int session = -1;
  for (std::size_t i = tenants_.size(); i > 0; --i) {
    if (tenants_[i - 1]->spec.name == name) {
      session = static_cast<int>(i - 1);
      break;
    }
  }
  if (session < 0) {
    throw ConfigError(fmt("serve: no session for tenant '{}'", name));
  }
  Tenant& tenant = *tenants_[static_cast<std::size_t>(session)];
  if (tenant.state != SessionState::kSuspended) {
    throw ConfigError(fmt("serve: tenant '{}' is {}, not suspended", name,
                          session_state_name(tenant.state)));
  }
  // Prefer the disk checkpoint when one was written: reattach then proves
  // the full serialize/parse round-trip, not just in-memory state.
  const guard::Snapshot snapshot =
      !config_.checkpoint_dir.empty()
          ? guard::read_snapshot(checkpoint_path(tenant))
          : (tenant.suspend_snapshot.has_value()
                 ? *tenant.suspend_snapshot
                 : throw ConfigError(fmt(
                       "serve: tenant '{}' has no suspend checkpoint", name)));
  const Admission admission = admit_locked(tenant.spec);
  if (admission == Admission::kRejected) {
    rejected_total_.add(1);
    emit_event(fault::EventKind::kSessionShed, name,
               fmt("reattach rejected: committed {} of {} bytes", committed_,
                   config_.limits.max_inflight_bytes));
    return {session, Admission::kRejected};
  }
  activate_locked(tenant, session, admission, &snapshot);
  if (admission == Admission::kDegraded) {
    degraded_total_.add(1);
    emit_event(fault::EventKind::kSessionShed, name,
               "reattached degraded: shedding");
  } else {
    admitted_total_.add(1);
  }
  reattached_total_.add(1);
  tenant.suspend_snapshot.reset();
  return {session, admission};
}

SessionState DataService::session_state(int session) const {
  std::lock_guard lock(mutex_);
  return tenant_checked(session).state;
}

Admission DataService::session_admission(int session) const {
  std::lock_guard lock(mutex_);
  return tenant_checked(session).admission;
}

const std::string& DataService::session_name(int session) const {
  std::lock_guard lock(mutex_);
  return tenant_checked(session).spec.name;
}

int DataService::find_session(const std::string& name) const {
  std::lock_guard lock(mutex_);
  for (std::size_t i = tenants_.size(); i > 0; --i) {
    if (tenants_[i - 1]->spec.name == name) return static_cast<int>(i - 1);
  }
  return -1;
}

const shard::GlobalStreamDigest& DataService::digest(int session) const {
  std::lock_guard lock(mutex_);
  return tenant_checked(session).digest;
}

obs::MetricsRegistry& DataService::tenant_metrics(int session) const {
  std::lock_guard lock(mutex_);
  Tenant& tenant = tenant_checked(session);
  if (!tenant.metrics) {
    throw ConfigError(
        fmt("serve: session {} has no metrics registry yet", session));
  }
  return *tenant.metrics;
}

obs::MetricsSnapshot DataService::tenant_snapshot(int session) const {
  return tenant_metrics(session).snapshot();
}

std::uint64_t DataService::committed_bytes() const {
  std::lock_guard lock(mutex_);
  return committed_;
}

bool DataService::shedding() const {
  std::lock_guard lock(mutex_);
  return shedding_;
}

}  // namespace sciprep::serve
