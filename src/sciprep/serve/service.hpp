// Resident multi-tenant data service (sciprep::serve).
//
// One process-resident DataService admits many concurrent training jobs
// ("tenants"), each with its own epochs, shuffle seed, PipelineConfig, and
// fault policy, and multiplexes their decode fan-outs onto one shared worker
// pool (weighted-fair stride scheduling, see common/threadpool.hpp) and one
// shared decoded-sample cache (per-tenant admission quotas, see cache.hpp).
// Three service-level guarantees stack on top of the per-pipeline ones:
//
//   * Admission control + graceful overload degradation. Every session is
//     charged a deterministic in-flight-bytes estimate (batch size x probed
//     decoded-sample bytes, doubled when prefetch overlaps a second batch)
//     against ServiceLimits::max_inflight_bytes. Past the degrade watermark
//     the service sheds: new sessions are admitted *degraded* — prefetch off
//     and cache bypassed, halving their footprint — and past the budget they
//     are rejected outright. Shedding clears only below the recover
//     watermark (hysteresis, no admit/degrade flapping), and a bounded pool
//     backlog (max_queue_depth) rejects sessions that would grow the queue
//     without bound. Decisions are deterministic functions of the committed
//     ledger, so an overload drill converges to the same admissions every
//     run.
//
//   * Tenant fault isolation. Each tenant runs its own DataPipeline on a
//     private metrics registry and a private cancellation root, with its own
//     fault policy and error budget; the shared pool's parallel_for groups
//     keep one tenant's exceptions and stragglers invisible to the others.
//     A tenant whose pipeline escalates (budget exhausted, deadline expiry,
//     cancellation) is *evicted* — its charge released, its cache working
//     set dropped, a kTenantEvicted incident emitted under the tenant's
//     scope — without perturbing any other tenant's delivered stream.
//
//   * Session leases + crash recovery. Every next_batch() beats a per-slot
//     heartbeat lease; a consumer that dies simply stops beating, and
//     sweep_leases() suspends the dead session — checkpointing its pipeline
//     via guard::Snapshot (to disk when checkpoint_dir is set) and releasing
//     its admission charge. reattach() re-admits the tenant under current
//     pressure and resumes from the checkpoint; with verify_stream on, the
//     tenant's GlobalStreamDigest spans the suspend, so the continuation is
//     provably bit-identical to an uninterrupted run.
//
// Threading contract: the roster calls (open_session, close_session,
// sweep_leases, reattach) and each session's next_batch() stream may run on
// different threads, but a single session is single-consumer — its
// next_batch() must not race its own sweep/close/reattach. Distinct
// sessions' next_batch() calls are fully concurrent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sciprep/codec/codec.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/guard/cancel.hpp"
#include "sciprep/guard/snapshot.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/pipeline/dataset.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/serve/cache.hpp"
#include "sciprep/shard/digest.hpp"
#include "sciprep/shard/heartbeat.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::serve {

/// The service's overload budget. All limits are hard; the watermarks steer
/// degradation before the hard edge.
struct ServiceLimits {
  /// Concurrently active sessions (also the heartbeat-lease slot count).
  std::size_t max_tenants = 8;
  /// In-flight decoded-bytes budget admissions are charged against; 0 means
  /// unlimited (watermarks and degradation never engage).
  std::uint64_t max_inflight_bytes = 256ull << 20;
  /// Reject new sessions while the shared pool backlog exceeds this many
  /// queued tasks; 0 disables the check.
  std::size_t max_queue_depth = 0;
  /// Committed/budget ratio at which shedding starts: sessions that would
  /// land above it are admitted degraded (prefetch off, cache bypass).
  double degrade_watermark = 0.75;
  /// Ratio below which shedding clears. Must be <= degrade_watermark; the
  /// gap is the hysteresis band that prevents admit/degrade flapping.
  double recover_watermark = 0.5;
};

struct ServiceConfig {
  ServiceLimits limits;
  /// Shared decode pool size; 0 selects the hardware concurrency.
  std::size_t worker_threads = 0;
  /// Shared decoded-sample cache; capacity_bytes 0 disables it. The cache's
  /// metrics default into the service registry.
  CacheConfig cache;
  /// Lease deadline: a session whose consumer has not called next_batch()
  /// for this long is declared lost by the next sweep_leases().
  double lease_deadline_seconds = 30.0;
  /// When non-empty, suspended sessions checkpoint here as <name>.ckpt and
  /// reattach() proves the disk round-trip; empty keeps snapshots in memory.
  std::string checkpoint_dir;
  /// Record every delivered sample into the tenant's GlobalStreamDigest
  /// (CRC over the full tensor) so isolation and reattach continuations can
  /// be proven bit-identical. Off by default — the per-sample CRC is a real
  /// fraction of a small sample's decode cost, and the healthy serving path
  /// must stay under the <1% overhead contract. Same knob as
  /// shard::ShardConfig::verify_stream.
  bool verify_stream = false;
  /// Service-level incident sink (kTenantLost / kTenantEvicted /
  /// kSessionShed, plus every tenant pipeline's recovery events, each with
  /// RecoveryEvent::scope set to the tenant name). Same contract as
  /// PipelineConfig::on_recovery_event: thread-safe, never throws.
  fault::RecoveryListener on_event;
  /// serve.* metrics land here; null means the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One training job's ask.
struct TenantSpec {
  std::string name;
  /// The tenant's pipeline configuration. The service overrides the plumbing
  /// fields (shared_pool/pool_key/pool_weight, cancel, metrics, decode_cache)
  /// and wraps on_recovery_event to stamp the tenant scope; everything else
  /// — seed, batch size, ops, fault policy, deadlines, injector — is the
  /// tenant's own.
  pipeline::PipelineConfig pipeline;
  std::uint64_t epochs = 1;
  /// Fair-share weight on the shared pool (>= 1).
  std::uint32_t weight = 1;
};

enum class Admission : int {
  kAdmitted = 0,  // full service: prefetch + shared cache
  kDegraded,      // shed mode: prefetch off, cache bypassed
  kRejected,      // over budget / roster full / queue bound exceeded
};

const char* admission_name(Admission admission) noexcept;

enum class SessionState : int {
  kActive = 0,
  kSuspended,  // lease lost; checkpointed, waiting for reattach()
  kEvicted,    // pipeline escalated; terminal
  kClosed,     // clean close_session(); terminal
};

const char* session_state_name(SessionState state) noexcept;

class DataService {
 public:
  /// The service serves `dataset` through `codec` to every tenant. `gpu` is
  /// required when any tenant decodes on kGpu placement. All three must
  /// outlive the service.
  DataService(const pipeline::InMemoryDataset& dataset,
              const codec::SampleCodec& codec, ServiceConfig config,
              sim::SimGpu* gpu = nullptr);
  ~DataService();

  DataService(const DataService&) = delete;
  DataService& operator=(const DataService&) = delete;

  struct OpenResult {
    int session = -1;  // valid when admission != kRejected
    Admission admission = Admission::kRejected;
  };

  /// Admit a tenant. kRejected leaves no session behind (the spec may be
  /// retried later); otherwise the returned session id is stable for the
  /// tenant's lifetime, across suspend/reattach. A name may be reused only
  /// after its previous session reached a terminal state.
  OpenResult open_session(TenantSpec spec);

  /// Produce `session`'s next batch, beating its lease and crossing epoch
  /// boundaries internally; false once all spec.epochs are delivered.
  /// Records every delivered sample into the tenant's stream digest. A
  /// pipeline escalation (budget exhausted, cancellation, deadline) evicts
  /// the session and rethrows to this tenant's caller only.
  bool next_batch(int session, pipeline::Batch& batch);

  /// Beat `session`'s lease without producing a batch. The wire transport
  /// pumps this from real socket liveness (BEAT frames), so a connected but
  /// momentarily idle consumer is not swept as dead.
  void beat(int session);

  /// Clean shutdown of an active session; releases its charge and slot.
  void close_session(int session);

  /// Suspend every active session whose lease expired: emit kTenantLost,
  /// checkpoint the pipeline, release the charge and slot. Returns the
  /// suspended tenant names. Call from a maintenance thread; must not race
  /// a suspended session's own consumer (a live consumer keeps its lease).
  std::vector<std::string> sweep_leases();

  /// Re-admit a suspended tenant under current pressure and resume its
  /// pipeline from the suspend checkpoint (disk when checkpoint_dir is set).
  /// On success the tenant continues bit-identically — same session id, same
  /// stream digest. kRejected leaves it suspended for a later retry.
  OpenResult reattach(const std::string& name);

  // -- Introspection ------------------------------------------------------

  [[nodiscard]] SessionState session_state(int session) const;
  /// The admission level the session is currently running at (it can change
  /// across a suspend/reattach cycle as pressure shifts).
  [[nodiscard]] Admission session_admission(int session) const;
  [[nodiscard]] const std::string& session_name(int session) const;
  /// The session currently holding `name` (any state), or -1.
  [[nodiscard]] int find_session(const std::string& name) const;

  /// The tenant's position-keyed content digest (survives suspend/eviction;
  /// see shard::GlobalStreamDigest for the bit-identity contract). Empty
  /// unless ServiceConfig::verify_stream is set.
  [[nodiscard]] const shard::GlobalStreamDigest& digest(int session) const;
  /// The tenant's private pipeline metrics registry.
  [[nodiscard]] obs::MetricsRegistry& tenant_metrics(int session) const;
  /// Point-in-time copy of that registry — the federation unit: the wire
  /// STATS frame ships deltas of this snapshot and flow::merge_fleet()
  /// accumulates them back into per-tenant totals.
  [[nodiscard]] obs::MetricsSnapshot tenant_snapshot(int session) const;

  [[nodiscard]] std::uint64_t committed_bytes() const;
  [[nodiscard]] bool shedding() const;
  /// Stable hash of the serving surface (dataset shape, codec, lease
  /// deadline, stream verification). The wire handshake carries it so a
  /// reconnecting client can prove it is resuming against the same service
  /// configuration it first attached to, not a restarted look-alike.
  [[nodiscard]] std::uint64_t config_fingerprint() const noexcept {
    return fingerprint_;
  }
  /// Admission charge probe: decoded bytes of sample 0 (what one in-flight
  /// sample costs resident).
  [[nodiscard]] std::uint64_t probe_sample_bytes() const noexcept {
    return probe_bytes_;
  }
  [[nodiscard]] SampleCache& cache() noexcept { return cache_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *metrics_;
  }

 private:
  struct Tenant {
    TenantSpec spec;
    SessionState state = SessionState::kActive;
    Admission admission = Admission::kAdmitted;
    int slot = -1;              // lease slot while active
    std::uint64_t charge = 0;   // committed bytes while active
    std::uint64_t next_epoch = 0;  // first epoch not yet started
    bool epoch_open = false;
    guard::CancelToken token;   // service-owned cancellation root
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<TenantCacheView> cache_view;
    std::unique_ptr<pipeline::DataPipeline> pipeline;
    shard::GlobalStreamDigest digest;
    std::optional<guard::Snapshot> suspend_snapshot;
  };

  /// Deterministic in-flight-bytes estimate for a session.
  [[nodiscard]] std::uint64_t session_charge(const TenantSpec& spec,
                                             bool prefetch) const;
  /// The admission decision against the current ledger. Mutates only
  /// shedding_ (watermark crossing). Caller holds mutex_.
  [[nodiscard]] Admission admit_locked(const TenantSpec& spec);
  /// Build + wire the tenant's pipeline for its admission level and resume
  /// it from `from` when set. Caller holds mutex_.
  void activate_locked(Tenant& tenant, int session, Admission admission,
                       const guard::Snapshot* from);
  /// Tear down an active tenant's pipeline/slot/charge. Caller holds mutex_.
  void release_locked(Tenant& tenant);
  void emit_event(fault::EventKind kind, const std::string& tenant,
                  std::string detail) const;
  [[nodiscard]] Tenant& tenant_checked(int session) const;
  [[nodiscard]] std::string checkpoint_path(const Tenant& tenant) const;

  const pipeline::InMemoryDataset& dataset_;
  const codec::SampleCodec& codec_;
  ServiceConfig config_;
  sim::SimGpu* gpu_;
  obs::MetricsRegistry* metrics_;
  fault::Injector probe_injector_;  // zero-probability; masks any global one
  std::uint64_t probe_bytes_ = 0;
  std::uint64_t fingerprint_ = 0;

  // Declared before the pool so the workers (who call the observer) are
  // joined before the observer dies.
  obs::PoolMetrics pool_metrics_;  // serve.pool.*
  ThreadPool pool_;
  SampleCache cache_;
  shard::HeartbeatMonitor leases_;

  obs::Counter& admitted_total_;
  obs::Counter& degraded_total_;
  obs::Counter& rejected_total_;
  obs::Counter& evicted_total_;
  obs::Counter& suspended_total_;
  obs::Counter& reattached_total_;
  obs::Counter& batches_served_;
  obs::Gauge& committed_gauge_;
  obs::Gauge& shedding_gauge_;
  obs::Gauge& active_gauge_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<int> free_slots_;  // lease slots available for new sessions
  std::uint64_t committed_ = 0;  // sum of active charges
  bool shedding_ = false;
};

}  // namespace sciprep::serve
