// Shared decoded-sample cache (sciprep::serve).
//
// A resident data service decodes the same stored samples for many tenants;
// the cache lets tenant B reuse tenant A's decode instead of re-running the
// io/gunzip/codec path. It plugs into the pipeline through the
// pipeline::DecodeCache seam and keeps that seam's bit-transparency
// contract: entries hold the *pre-augmentation* decode output keyed by
// (content key, sample index), and the service only wires a view into
// tenants whose decode of a sample is a pure function of the sample id (no
// fault injection), so a hit returns exactly the bytes a cold decode would
// have produced and the delivered stream stays bit-identical either way.
//
// Two independent bounds keep one tenant from monopolising memory:
//
//   * capacity_bytes — total resident bytes, enforced by evicting the
//     globally least-recently-used entries (serve.cache.evictions_total);
//   * per_tenant_quota_bytes — an admission quota on the bytes each tenant
//     may have *inserted* and still resident. An insert that would push its
//     tenant over quota is dropped (serve.cache.quota_rejected_total)
//     rather than evicting another tenant's entries. Lookups are unmetered:
//     sharing is the point.
//
// Thread-safe (one mutex; decode workers of every tenant call concurrently).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <utility>

#include "sciprep/codec/codec.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace sciprep::serve {

/// Resident bytes of a decoded tensor (shape + values + both label kinds) —
/// the unit the cache's capacity and quotas are accounted in.
[[nodiscard]] std::uint64_t tensor_bytes(const codec::TensorF16& tensor);

struct CacheConfig {
  /// Total resident-byte budget; 0 disables the cache (every lookup misses,
  /// every insert is dropped).
  std::uint64_t capacity_bytes = 64ull << 20;
  /// Per-tenant bound on inserted-and-still-resident bytes; 0 means no
  /// per-tenant quota (capacity still applies).
  std::uint64_t per_tenant_quota_bytes = 0;
  /// serve.cache.* metrics land here; null means the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
};

class SampleCache {
 public:
  explicit SampleCache(CacheConfig config);

  SampleCache(const SampleCache&) = delete;
  SampleCache& operator=(const SampleCache&) = delete;

  /// Fill `out` on a hit for (key, index) and refresh its recency.
  bool lookup(std::uint64_t key, std::size_t index, codec::TensorF16& out);

  /// Offer a decoded sample under `tenant`'s quota. Oversized (> capacity),
  /// over-quota, and duplicate offers are dropped; otherwise LRU entries are
  /// evicted until the new entry fits.
  void insert(std::uint64_t key, std::size_t index, std::uint64_t tenant,
              const codec::TensorF16& tensor);

  /// Drop every entry charged to `tenant`, refunding its quota — called when
  /// a session is evicted so a dead tenant's working set frees immediately.
  void drop_tenant(std::uint64_t tenant);

  [[nodiscard]] std::uint64_t resident_bytes() const;
  [[nodiscard]] std::uint64_t tenant_bytes(std::uint64_t tenant) const;
  [[nodiscard]] std::size_t entry_count() const;

 private:
  using Key = std::pair<std::uint64_t, std::size_t>;  // (content key, index)

  struct Entry {
    codec::TensorF16 tensor;
    std::uint64_t bytes = 0;
    std::uint64_t tenant = 0;  // whose quota the entry is charged to
    std::list<Key>::iterator lru;
  };

  void evict_locked(const Key& key);

  CacheConfig config_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& inserts_;
  obs::Counter& evictions_;
  obs::Counter& quota_rejected_;
  obs::Gauge& bytes_gauge_;

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = least recently used
  std::uint64_t resident_ = 0;
  std::map<std::uint64_t, std::uint64_t> tenant_bytes_;
};

/// A tenant's handle on the shared cache: binds the tenant's quota identity
/// and content key so the pipeline-facing DecodeCache interface stays
/// tenant-agnostic. The view is what PipelineConfig::decode_cache points at.
class TenantCacheView final : public pipeline::DecodeCache {
 public:
  TenantCacheView(SampleCache& cache, std::uint64_t key, std::uint64_t tenant)
      : cache_(cache), key_(key), tenant_(tenant) {}

  bool lookup(std::size_t index, codec::TensorF16& out) override {
    return cache_.lookup(key_, index, out);
  }
  void insert(std::size_t index, const codec::TensorF16& tensor) override {
    cache_.insert(key_, index, tenant_, tensor);
  }

 private:
  SampleCache& cache_;
  std::uint64_t key_;
  std::uint64_t tenant_;
};

}  // namespace sciprep::serve
