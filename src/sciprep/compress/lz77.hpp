// LZ77 string matching for the DEFLATE substrate.
//
// Hash-chain matcher over the 32 KiB DEFLATE window producing a token stream
// of literals and (length, distance) matches with greedy + lazy evaluation
// (one-step lookahead, as in zlib's default strategy).
#pragma once

#include <cstdint>
#include <vector>

#include "sciprep/common/buffer.hpp"

namespace sciprep::compress {

inline constexpr std::size_t kWindowSize = 32 * 1024;
inline constexpr int kMinMatch = 3;
inline constexpr int kMaxMatch = 258;

/// One LZ77 token: either a literal byte or a back-reference.
struct Token {
  std::uint16_t length = 0;    // 0 => literal
  std::uint16_t distance = 0;  // 1..32768 when length > 0
  std::uint8_t literal = 0;

  [[nodiscard]] bool is_literal() const noexcept { return length == 0; }

  static Token make_literal(std::uint8_t byte) { return {0, 0, byte}; }
  static Token make_match(int length, int distance) {
    return {static_cast<std::uint16_t>(length),
            static_cast<std::uint16_t>(distance), 0};
  }
};

/// Tunables mirroring zlib compression levels: longer chains find better
/// matches at more CPU cost.
struct MatcherConfig {
  int max_chain = 128;      // hash-chain probes per position
  int nice_length = 128;    // stop searching once a match this long is found
  bool lazy = true;         // one-token lookahead
};

/// Tokenize `input` with hash-chain LZ77.
std::vector<Token> lz77_tokenize(ByteSpan input, const MatcherConfig& config = {});

}  // namespace sciprep::compress
