#include "sciprep/compress/huffman.hpp"

#include <algorithm>
#include <queue>

#include "sciprep/common/error.hpp"

namespace sciprep::compress {

std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint64_t> freqs, int limit) {
  SCIPREP_ASSERT(limit >= 1 && limit <= kMaxCodeLength);
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  // Collect live symbols.
  std::vector<std::size_t> live;
  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] > 0) live.push_back(s);
  }
  if (live.empty()) return lengths;
  if (live.size() == 1) {
    // DEFLATE requires at least a 1-bit code for a lone symbol.
    lengths[live[0]] = 1;
    return lengths;
  }

  // Standard Huffman tree via a min-heap of (freq, node). Internal nodes are
  // appended past the symbol ids.
  struct Node {
    std::uint64_t freq;
    int left = -1;
    int right = -1;
  };
  std::vector<Node> nodes;
  nodes.reserve(live.size() * 2);
  std::vector<std::size_t> node_symbol;  // leaf node index -> symbol
  using HeapItem = std::pair<std::uint64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (const std::size_t s : live) {
    heap.emplace(freqs[s], static_cast<int>(nodes.size()));
    nodes.push_back({freqs[s]});
    node_symbol.push_back(s);
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    heap.emplace(fa + fb, static_cast<int>(nodes.size()));
    nodes.push_back({fa + fb, a, b});
  }

  // Depth-first traversal assigning depths to leaves.
  std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
  std::vector<int> depth_of_leaf(live.size(), 0);
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.left < 0) {
      depth_of_leaf[static_cast<std::size_t>(idx)] = std::max(1, depth);
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }

  // Histogram of code lengths, clamped at `limit`.
  std::vector<std::uint32_t> bl_count(static_cast<std::size_t>(limit) + 1, 0);
  for (std::size_t i = 0; i < live.size(); ++i) {
    const int d = std::min(depth_of_leaf[i], limit);
    ++bl_count[static_cast<std::size_t>(d)];
  }

  // Rebalance so the Kraft sum equals 1 (zlib's fix-up): while oversubscribed,
  // move one code from the deepest non-empty shorter level down a level.
  auto kraft = [&]() {
    std::uint64_t sum = 0;
    for (int l = 1; l <= limit; ++l) {
      sum += static_cast<std::uint64_t>(bl_count[static_cast<std::size_t>(l)])
             << (limit - l);
    }
    return sum;
  };
  const std::uint64_t full = 1ULL << limit;
  while (kraft() > full) {
    // Find a code at some length < limit to push deeper; prefer the deepest.
    int from = limit - 1;
    while (from >= 1 && bl_count[static_cast<std::size_t>(from)] == 0) --from;
    SCIPREP_ASSERT(from >= 1);
    --bl_count[static_cast<std::size_t>(from)];
    ++bl_count[static_cast<std::size_t>(from) + 1];
  }
  // If undersubscribed (possible after clamping), promote codes upward to use
  // the spare space — shorter codes only help compression.
  while (kraft() < full) {
    int deepest = limit;
    while (deepest >= 2 && bl_count[static_cast<std::size_t>(deepest)] == 0) {
      --deepest;
    }
    if (deepest < 2) break;
    --bl_count[static_cast<std::size_t>(deepest)];
    ++bl_count[static_cast<std::size_t>(deepest) - 1];
  }

  // Hand lengths back to symbols: sort live symbols by (original depth,
  // symbol id) and deal lengths shortest-first to the shallowest leaves.
  std::vector<std::size_t> order(live.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (depth_of_leaf[a] != depth_of_leaf[b]) {
      return depth_of_leaf[a] < depth_of_leaf[b];
    }
    return node_symbol[a] < node_symbol[b];
  });
  std::size_t cursor = 0;
  for (int l = 1; l <= limit; ++l) {
    for (std::uint32_t k = 0; k < bl_count[static_cast<std::size_t>(l)]; ++k) {
      lengths[node_symbol[order[cursor++]]] = static_cast<std::uint8_t>(l);
    }
  }
  SCIPREP_ASSERT(cursor == live.size());
  return lengths;
}

std::vector<std::uint16_t> assign_canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::vector<std::uint32_t> bl_count(kMaxCodeLength + 1, 0);
  for (const auto l : lengths) {
    SCIPREP_ASSERT(l <= kMaxCodeLength);
    ++bl_count[l];
  }
  bl_count[0] = 0;
  std::vector<std::uint16_t> next_code(kMaxCodeLength + 1, 0);
  std::uint32_t code = 0;
  for (int bits = 1; bits <= kMaxCodeLength; ++bits) {
    code = (code + bl_count[static_cast<std::size_t>(bits) - 1]) << 1;
    next_code[static_cast<std::size_t>(bits)] = static_cast<std::uint16_t>(code);
  }
  std::vector<std::uint16_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] != 0) {
      codes[s] = next_code[lengths[s]]++;
    }
  }
  return codes;
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : lengths_(lengths.begin(), lengths.end()) {
  const auto canonical = assign_canonical_codes(lengths);
  codes_.resize(lengths.size());
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    codes_[s] = reverse_bits(canonical[s], lengths_[s]);
  }
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (const auto l : lengths) {
    max_len_ = std::max(max_len_, static_cast<int>(l));
  }
  if (max_len_ == 0) {
    throw_format("huffman: empty code set");
  }
  // Validate the Kraft inequality — over-subscribed code sets are corrupt.
  std::uint64_t kraft = 0;
  for (const auto l : lengths) {
    if (l > 0) kraft += 1ULL << (max_len_ - l);
  }
  if (kraft > (1ULL << max_len_)) {
    throw_format("huffman: over-subscribed code lengths");
  }

  const auto canonical = assign_canonical_codes(lengths);
  table_.assign(std::size_t{1} << max_len_, Entry{});
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len == 0) continue;
    // The decoder peeks max_len_ LSB-first bits; fill every table slot whose
    // low `len` bits equal the reversed code.
    const std::uint16_t rev = reverse_bits(canonical[s], len);
    const std::size_t step = std::size_t{1} << len;
    for (std::size_t idx = rev; idx < table_.size(); idx += step) {
      table_[idx] = {static_cast<std::uint16_t>(s),
                     static_cast<std::uint8_t>(len)};
    }
  }
}

std::uint16_t HuffmanDecoder::decode(BitReader& in) const {
  const std::uint32_t window = in.peek_bits(max_len_);
  const Entry entry = table_[window];
  if (entry.length == 0) {
    throw_format("huffman: invalid code in stream");
  }
  in.drop_bits(entry.length);
  return entry.symbol;
}

}  // namespace sciprep::compress
