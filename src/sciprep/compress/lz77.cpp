#include "sciprep/compress/lz77.hpp"

#include <algorithm>

namespace sciprep::compress {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

/// Hash of the 3 bytes starting at p (Fibonacci multiplicative hash).
inline std::uint32_t hash3(const std::uint8_t* p) noexcept {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Longest common prefix of a and b, up to `limit` bytes.
inline int match_length(const std::uint8_t* a, const std::uint8_t* b,
                        int limit) noexcept {
  int n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

struct Chains {
  // head[h]: most recent position with hash h; prev[pos % window]: previous
  // position in that chain. Positions stored +1 so 0 means "none".
  std::vector<std::uint32_t> head = std::vector<std::uint32_t>(kHashSize, 0);
  std::vector<std::uint32_t> prev = std::vector<std::uint32_t>(kWindowSize, 0);

  void insert(std::size_t pos, const std::uint8_t* data) {
    const std::uint32_t h = hash3(data + pos);
    prev[pos % kWindowSize] = head[h];
    head[h] = static_cast<std::uint32_t>(pos + 1);
  }
};

struct Match {
  int length = 0;
  int distance = 0;
};

Match find_best(const Chains& chains, const std::uint8_t* data, std::size_t pos,
                std::size_t size, const MatcherConfig& config) {
  Match best;
  const int limit =
      static_cast<int>(std::min<std::size_t>(kMaxMatch, size - pos));
  if (limit < kMinMatch) return best;
  std::uint32_t cand = chains.head[hash3(data + pos)];
  int probes = config.max_chain;
  while (cand != 0 && probes-- > 0) {
    const std::size_t cpos = cand - 1;
    if (cpos >= pos || pos - cpos > kWindowSize) break;
    // Quick reject: check the byte just past the current best first (only
    // safe while best.length < limit keeps the probe in bounds).
    if (best.length == 0 || best.length >= limit ||
        data[cpos + static_cast<std::size_t>(best.length)] ==
            data[pos + static_cast<std::size_t>(best.length)]) {
      const int len = match_length(data + cpos, data + pos, limit);
      if (len > best.length) {
        best = {len, static_cast<int>(pos - cpos)};
        if (len >= config.nice_length || len == limit) break;
      }
    }
    cand = chains.prev[cpos % kWindowSize];
  }
  return best.length >= kMinMatch ? best : Match{};
}

}  // namespace

std::vector<Token> lz77_tokenize(ByteSpan input, const MatcherConfig& config) {
  std::vector<Token> tokens;
  tokens.reserve(input.size() / 3);
  const std::uint8_t* data = input.data();
  const std::size_t size = input.size();
  Chains chains;

  std::size_t pos = 0;
  while (pos < size) {
    if (size - pos < kMinMatch) {
      tokens.push_back(Token::make_literal(data[pos]));
      ++pos;
      continue;
    }
    Match here = find_best(chains, data, pos, size, config);
    if (here.length == 0) {
      tokens.push_back(Token::make_literal(data[pos]));
      chains.insert(pos, data);
      ++pos;
      continue;
    }
    if (config.lazy && pos + 1 + kMinMatch <= size) {
      // Lazy matching: if the next position offers a strictly longer match,
      // emit a literal here and take the longer match next iteration.
      chains.insert(pos, data);
      const Match next = find_best(chains, data, pos + 1, size, config);
      if (next.length > here.length) {
        tokens.push_back(Token::make_literal(data[pos]));
        ++pos;
        continue;
      }
      // Committed to `here`: insert the remaining covered positions.
      const std::size_t end = std::min(pos + static_cast<std::size_t>(here.length),
                                       size - kMinMatch + 1);
      for (std::size_t p = pos + 1; p < end; ++p) {
        chains.insert(p, data);
      }
    } else {
      const std::size_t end = std::min(pos + static_cast<std::size_t>(here.length),
                                       size >= kMinMatch ? size - kMinMatch + 1 : 0);
      for (std::size_t p = pos; p < end; ++p) {
        chains.insert(p, data);
      }
    }
    tokens.push_back(Token::make_match(here.length, here.distance));
    pos += static_cast<std::size_t>(here.length);
  }
  return tokens;
}

}  // namespace sciprep::compress
