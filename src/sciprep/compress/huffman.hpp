// Canonical Huffman coding for the DEFLATE substrate (RFC 1951).
//
// DEFLATE transmits only code lengths; both encoder and decoder derive the
// canonical codes from them. The encoder builds length-limited (<= 15 bit)
// codes from symbol frequencies; the decoder builds a single-level lookup
// table indexed by the next `max_length` input bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sciprep/common/bitstream.hpp"

namespace sciprep::compress {

/// Maximum code length permitted by DEFLATE for literal/length and distance
/// alphabets.
inline constexpr int kMaxCodeLength = 15;

/// Compute length-limited Huffman code lengths for `freqs`. Symbols with zero
/// frequency get length 0 (absent). At most `limit` bits per code; lengths are
/// adjusted with the standard overflow-rebalancing step when the unlimited
/// Huffman tree exceeds the limit.
std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs,
                                             int limit = kMaxCodeLength);

/// Assign canonical codes (RFC 1951 §3.2.2) to the given lengths. Returned
/// codes are MSB-first as the RFC defines them; use `reverse_bits` before
/// writing with the LSB-first BitWriter.
std::vector<std::uint16_t> assign_canonical_codes(
    std::span<const std::uint8_t> lengths);

/// Reverse the low `width` bits of `code` (DEFLATE stores Huffman codes
/// most-significant-bit first inside its LSB-first bitstream).
constexpr std::uint16_t reverse_bits(std::uint16_t code, int width) {
  std::uint16_t r = 0;
  for (int i = 0; i < width; ++i) {
    r = static_cast<std::uint16_t>((r << 1) | ((code >> i) & 1u));
  }
  return r;
}

/// Encoder-side table: per-symbol bit-reversed code + length, ready to emit.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  void emit(BitWriter& out, std::size_t symbol) const {
    out.put_bits(codes_[symbol], lengths_[symbol]);
  }
  [[nodiscard]] int length_of(std::size_t symbol) const {
    return lengths_[symbol];
  }
  [[nodiscard]] std::size_t alphabet_size() const { return lengths_.size(); }

 private:
  std::vector<std::uint16_t> codes_;  // bit-reversed, LSB-first ready
  std::vector<std::uint8_t> lengths_;
};

/// Decoder-side table: one flat lookup of 2^max_len entries mapping the next
/// bits to (symbol, length). Throws FormatError for invalid code sets.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  /// Decode one symbol from `in`.
  std::uint16_t decode(BitReader& in) const;

  [[nodiscard]] int max_length() const noexcept { return max_len_; }

 private:
  struct Entry {
    std::uint16_t symbol = 0;
    std::uint8_t length = 0;  // 0 marks an invalid bit pattern
  };
  std::vector<Entry> table_;
  int max_len_ = 0;
};

}  // namespace sciprep::compress
