// DEFLATE (RFC 1951) compressor and decompressor, implemented from scratch.
//
// This is the general-purpose compression baseline the paper compares its
// domain codecs against (TFRecord's GZIP option). Supports stored, fixed-
// Huffman, and dynamic-Huffman blocks; the compressor picks per block
// whichever of {stored, fixed, dynamic} is smallest.
#pragma once

#include <cstdint>

#include "sciprep/common/buffer.hpp"
#include "sciprep/compress/lz77.hpp"

namespace sciprep::compress {

/// Compression effort knobs (roughly zlib levels 1/6/9).
enum class DeflateLevel { kFast, kDefault, kBest };

/// Compress `input` into a raw DEFLATE stream.
Bytes deflate(ByteSpan input, DeflateLevel level = DeflateLevel::kDefault);

/// Decompress a raw DEFLATE stream. `size_hint` preallocates the output.
/// Throws FormatError on any stream corruption.
Bytes inflate(ByteSpan input, std::size_t size_hint = 0);

}  // namespace sciprep::compress
