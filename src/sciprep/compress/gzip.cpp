#include "sciprep/compress/gzip.hpp"

#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"

namespace sciprep::compress {

namespace {
constexpr std::uint8_t kId1 = 0x1F;
constexpr std::uint8_t kId2 = 0x8B;
constexpr std::uint8_t kCmDeflate = 8;

constexpr std::uint8_t kFlagExtra = 0x04;
constexpr std::uint8_t kFlagName = 0x08;
constexpr std::uint8_t kFlagComment = 0x10;
constexpr std::uint8_t kFlagHcrc = 0x02;
}  // namespace

Bytes gzip_compress(ByteSpan input, DeflateLevel level) {
  ByteWriter out;
  out.put<std::uint8_t>(kId1);
  out.put<std::uint8_t>(kId2);
  out.put<std::uint8_t>(kCmDeflate);
  out.put<std::uint8_t>(0);             // FLG: no name/extra/comment
  out.put<std::uint32_t>(0);            // MTIME: unset (deterministic output)
  out.put<std::uint8_t>(0);             // XFL
  out.put<std::uint8_t>(255);           // OS: unknown
  out.put_bytes(deflate(input, level));
  out.put<std::uint32_t>(crc32(input));
  out.put<std::uint32_t>(static_cast<std::uint32_t>(input.size()));
  return std::move(out).take();
}

Bytes gzip_decompress(ByteSpan input) {
  ByteReader in(input);
  if (in.get<std::uint8_t>() != kId1 || in.get<std::uint8_t>() != kId2) {
    throw_format("gzip: bad magic");
  }
  if (in.get<std::uint8_t>() != kCmDeflate) {
    throw_format("gzip: unsupported compression method");
  }
  const auto flags = in.get<std::uint8_t>();
  in.skip(6);  // MTIME, XFL, OS
  if (flags & kFlagExtra) {
    const auto xlen = in.get<std::uint16_t>();
    in.skip(xlen);
  }
  auto skip_cstring = [&in] {
    while (in.get<std::uint8_t>() != 0) {
    }
  };
  if (flags & kFlagName) skip_cstring();
  if (flags & kFlagComment) skip_cstring();
  if (flags & kFlagHcrc) in.skip(2);

  if (in.remaining() < 8) {
    throw_format("gzip: truncated member");
  }
  const ByteSpan body = in.get_bytes(in.remaining() - 8);
  const auto expect_crc = in.get<std::uint32_t>();
  const auto expect_size = in.get<std::uint32_t>();

  Bytes out = inflate(body, expect_size);
  if (static_cast<std::uint32_t>(out.size()) != expect_size) {
    throw_format("gzip: ISIZE mismatch (got {}, want {})", out.size(),
                 expect_size);
  }
  if (crc32(out) != expect_crc) {
    throw_format("gzip: CRC32 mismatch");
  }
  return out;
}

}  // namespace sciprep::compress
