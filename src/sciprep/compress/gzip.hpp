// gzip (RFC 1952) framing around the DEFLATE substrate.
//
// This is the exact baseline the paper's CosmoFlow comparison uses: TFRecord
// files compressed with GZIP, decompressed on the host CPU (there is no GPU
// gunzip — which is precisely the limitation the domain codecs remove).
#pragma once

#include "sciprep/common/buffer.hpp"
#include "sciprep/compress/deflate.hpp"

namespace sciprep::compress {

/// Compress `input` into a gzip member (header + deflate body + CRC32 + ISIZE).
Bytes gzip_compress(ByteSpan input, DeflateLevel level = DeflateLevel::kDefault);

/// Decompress a single-member gzip stream; validates CRC32 and ISIZE.
Bytes gzip_decompress(ByteSpan input);

}  // namespace sciprep::compress
