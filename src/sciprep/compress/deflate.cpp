#include "sciprep/compress/deflate.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "sciprep/common/bitstream.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/compress/huffman.hpp"

namespace sciprep::compress {

namespace {

// RFC 1951 §3.2.5 length code table: code 257..285 -> (base length, extra bits).
struct LengthCode {
  std::uint16_t base;
  std::uint8_t extra;
};
constexpr std::array<LengthCode, 29> kLengthCodes = {{
    {3, 0},  {4, 0},  {5, 0},  {6, 0},  {7, 0},  {8, 0},  {9, 0},  {10, 0},
    {11, 1}, {13, 1}, {15, 1}, {17, 1}, {19, 2}, {23, 2}, {27, 2}, {31, 2},
    {35, 3}, {43, 3}, {51, 3}, {59, 3}, {67, 4}, {83, 4}, {99, 4}, {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

// Distance code table: code 0..29 -> (base distance, extra bits).
struct DistCode {
  std::uint16_t base;
  std::uint8_t extra;
};
constexpr std::array<DistCode, 30> kDistCodes = {{
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},    {7, 1},
    {9, 2},     {13, 2},    {17, 3},    {25, 3},    {33, 4},   {49, 4},
    {65, 5},    {97, 5},    {129, 6},   {193, 6},   {257, 7},  {385, 7},
    {513, 8},   {769, 8},   {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12}, {16385, 13}, {24577, 13},
}};

// Order in which code-length-code lengths are transmitted (§3.2.7).
constexpr std::array<std::uint8_t, 19> kClcOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

constexpr std::size_t kLitLenAlphabet = 286;
constexpr std::size_t kDistAlphabet = 30;
constexpr std::uint16_t kEndOfBlock = 256;

int length_to_code(int length) {
  SCIPREP_ASSERT(length >= kMinMatch && length <= kMaxMatch);
  // Linear scan is fine: the table is tiny and this is per-token.
  for (int c = static_cast<int>(kLengthCodes.size()) - 1; c >= 0; --c) {
    if (length >= kLengthCodes[static_cast<std::size_t>(c)].base) return c;
  }
  return 0;
}

int distance_to_code(int distance) {
  SCIPREP_ASSERT(distance >= 1 && distance <= 32768);
  for (int c = static_cast<int>(kDistCodes.size()) - 1; c >= 0; --c) {
    if (distance >= kDistCodes[static_cast<std::size_t>(c)].base) return c;
  }
  return 0;
}

/// Fixed literal/length code lengths (§3.2.6).
std::vector<std::uint8_t> fixed_litlen_lengths() {
  std::vector<std::uint8_t> lengths(288);
  for (std::size_t s = 0; s <= 143; ++s) lengths[s] = 8;
  for (std::size_t s = 144; s <= 255; ++s) lengths[s] = 9;
  for (std::size_t s = 256; s <= 279; ++s) lengths[s] = 7;
  for (std::size_t s = 280; s <= 287; ++s) lengths[s] = 8;
  return lengths;
}

std::vector<std::uint8_t> fixed_dist_lengths() {
  return std::vector<std::uint8_t>(30, 5);
}

struct TokenHistogram {
  std::array<std::uint64_t, kLitLenAlphabet> litlen{};
  std::array<std::uint64_t, kDistAlphabet> dist{};
};

TokenHistogram histogram(const std::vector<Token>& tokens) {
  TokenHistogram h;
  for (const Token& t : tokens) {
    if (t.is_literal()) {
      ++h.litlen[t.literal];
    } else {
      ++h.litlen[static_cast<std::size_t>(257 + length_to_code(t.length))];
      ++h.dist[static_cast<std::size_t>(distance_to_code(t.distance))];
    }
  }
  ++h.litlen[kEndOfBlock];
  return h;
}

void emit_tokens(BitWriter& out, const std::vector<Token>& tokens,
                 const HuffmanEncoder& lit, const HuffmanEncoder& dst) {
  for (const Token& t : tokens) {
    if (t.is_literal()) {
      lit.emit(out, t.literal);
      continue;
    }
    const int lc = length_to_code(t.length);
    const auto& lentry = kLengthCodes[static_cast<std::size_t>(lc)];
    lit.emit(out, static_cast<std::size_t>(257 + lc));
    if (lentry.extra > 0) {
      out.put_bits(static_cast<std::uint32_t>(t.length - lentry.base),
                   lentry.extra);
    }
    const int dc = distance_to_code(t.distance);
    const auto& dentry = kDistCodes[static_cast<std::size_t>(dc)];
    dst.emit(out, static_cast<std::size_t>(dc));
    if (dentry.extra > 0) {
      out.put_bits(static_cast<std::uint32_t>(t.distance - dentry.base),
                   dentry.extra);
    }
  }
  lit.emit(out, kEndOfBlock);
}

/// Estimate the encoded token cost in bits under the given code lengths.
std::uint64_t token_cost_bits(const TokenHistogram& h,
                              std::span<const std::uint8_t> lit_lengths,
                              std::span<const std::uint8_t> dist_lengths) {
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < kLitLenAlphabet; ++s) {
    bits += h.litlen[s] * lit_lengths[s];
  }
  // Extra bits for length symbols.
  for (std::size_t c = 0; c < kLengthCodes.size(); ++c) {
    bits += h.litlen[257 + c] * kLengthCodes[c].extra;
  }
  for (std::size_t c = 0; c < kDistAlphabet; ++c) {
    bits += h.dist[c] * (dist_lengths[c] + kDistCodes[c].extra);
  }
  return bits;
}

/// Run-length encode code lengths with symbols 16/17/18 (§3.2.7).
struct ClcSymbol {
  std::uint8_t symbol;
  std::uint8_t extra_value;
  std::uint8_t extra_bits;
};

std::vector<ClcSymbol> rle_code_lengths(std::span<const std::uint8_t> lengths) {
  std::vector<ClcSymbol> out;
  std::size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t len = lengths[i];
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == len) ++run;
    if (len == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const auto take = static_cast<std::uint8_t>(std::min<std::size_t>(left, 138));
        out.push_back({18, static_cast<std::uint8_t>(take - 11), 7});
        left -= take;
      }
      while (left >= 3) {
        const auto take = static_cast<std::uint8_t>(std::min<std::size_t>(left, 10));
        out.push_back({17, static_cast<std::uint8_t>(take - 3), 3});
        left -= take;
      }
      while (left-- > 0) out.push_back({0, 0, 0});
    } else {
      out.push_back({len, 0, 0});
      std::size_t left = run - 1;
      while (left >= 3) {
        const auto take = static_cast<std::uint8_t>(std::min<std::size_t>(left, 6));
        out.push_back({16, static_cast<std::uint8_t>(take - 3), 2});
        left -= take;
      }
      while (left-- > 0) out.push_back({len, 0, 0});
    }
    i += run;
  }
  return out;
}

struct DynamicHeader {
  std::vector<std::uint8_t> lit_lengths;   // trimmed to hlit
  std::vector<std::uint8_t> dist_lengths;  // trimmed to hdist
  std::vector<ClcSymbol> clc_stream;
  std::vector<std::uint8_t> clc_lengths;  // 19 entries
  std::uint64_t header_bits = 0;
};

DynamicHeader build_dynamic_header(const TokenHistogram& h,
                                   std::vector<std::uint8_t> lit_lengths,
                                   std::vector<std::uint8_t> dist_lengths) {
  DynamicHeader hdr;
  // hlit >= 257, hdist >= 1.
  std::size_t hlit = kLitLenAlphabet;
  while (hlit > 257 && lit_lengths[hlit - 1] == 0) --hlit;
  std::size_t hdist = kDistAlphabet;
  while (hdist > 1 && dist_lengths[hdist - 1] == 0) --hdist;
  lit_lengths.resize(hlit);
  dist_lengths.resize(hdist);

  std::vector<std::uint8_t> joined = lit_lengths;
  joined.insert(joined.end(), dist_lengths.begin(), dist_lengths.end());
  hdr.clc_stream = rle_code_lengths(joined);

  std::array<std::uint64_t, 19> clc_freq{};
  for (const auto& s : hdr.clc_stream) ++clc_freq[s.symbol];
  hdr.clc_lengths = build_code_lengths(clc_freq, 7);

  std::size_t hclen = 19;
  while (hclen > 4 && hdr.clc_lengths[kClcOrder[hclen - 1]] == 0) --hclen;

  hdr.header_bits = 5 + 5 + 4 + hclen * 3;
  for (const auto& s : hdr.clc_stream) {
    hdr.header_bits += hdr.clc_lengths[s.symbol] + s.extra_bits;
  }
  (void)h;
  hdr.lit_lengths = std::move(lit_lengths);
  hdr.dist_lengths = std::move(dist_lengths);
  return hdr;
}

void emit_dynamic_header(BitWriter& out, const DynamicHeader& hdr) {
  out.put_bits(static_cast<std::uint32_t>(hdr.lit_lengths.size() - 257), 5);
  out.put_bits(static_cast<std::uint32_t>(hdr.dist_lengths.size() - 1), 5);
  std::size_t hclen = 19;
  while (hclen > 4 && hdr.clc_lengths[kClcOrder[hclen - 1]] == 0) --hclen;
  out.put_bits(static_cast<std::uint32_t>(hclen - 4), 4);
  for (std::size_t i = 0; i < hclen; ++i) {
    out.put_bits(hdr.clc_lengths[kClcOrder[i]], 3);
  }
  const HuffmanEncoder clc(hdr.clc_lengths);
  for (const auto& s : hdr.clc_stream) {
    clc.emit(out, s.symbol);
    if (s.extra_bits > 0) {
      out.put_bits(s.extra_value, s.extra_bits);
    }
  }
}

MatcherConfig matcher_for(DeflateLevel level) {
  switch (level) {
    case DeflateLevel::kFast:
      return {.max_chain = 8, .nice_length = 16, .lazy = false};
    case DeflateLevel::kDefault:
      return {.max_chain = 128, .nice_length = 128, .lazy = true};
    case DeflateLevel::kBest:
      return {.max_chain = 1024, .nice_length = kMaxMatch, .lazy = true};
  }
  return {};
}

}  // namespace

Bytes deflate(ByteSpan input, DeflateLevel level) {
  BitWriter out;

  // Process in blocks so histograms stay adaptive for heterogeneous data.
  constexpr std::size_t kBlockSize = 256 * 1024;
  std::size_t offset = 0;
  const std::size_t nblocks = std::max<std::size_t>(1, (input.size() + kBlockSize - 1) / kBlockSize);

  for (std::size_t b = 0; b < nblocks; ++b) {
    const bool final_block = (b + 1 == nblocks);
    const std::size_t take = std::min(kBlockSize, input.size() - offset);
    // NOTE: tokenizing per block forgoes cross-block matches; acceptable for
    // a baseline comparator and keeps blocks independent.
    const ByteSpan chunk = input.subspan(offset, take);
    offset += take;

    const auto tokens = lz77_tokenize(chunk, matcher_for(level));
    const TokenHistogram h = histogram(tokens);

    // Candidate 1: fixed Huffman.
    const auto fixed_lit = fixed_litlen_lengths();
    const auto fixed_dst = fixed_dist_lengths();
    const std::uint64_t fixed_bits =
        token_cost_bits(h, std::span(fixed_lit).first(kLitLenAlphabet),
                        fixed_dst);

    // Candidate 2: dynamic Huffman.
    auto dyn_lit = build_code_lengths(h.litlen);
    auto dyn_dst = build_code_lengths(h.dist);
    // DEFLATE requires at least one distance code description even when no
    // matches exist; and at least 2 to avoid the single-code edge in some
    // decoders. Give length-1 codes to dist 0/1 when empty.
    if (std::all_of(dyn_dst.begin(), dyn_dst.end(),
                    [](std::uint8_t l) { return l == 0; })) {
      dyn_dst[0] = 1;
    }
    const std::uint64_t dyn_token_bits = token_cost_bits(h, dyn_lit, dyn_dst);
    const DynamicHeader hdr =
        build_dynamic_header(h, std::move(dyn_lit), std::move(dyn_dst));
    const std::uint64_t dyn_bits = hdr.header_bits + dyn_token_bits;

    // Candidate 3: stored block (byte-aligned; 5 bytes of header per 65535).
    const std::uint64_t stored_bits =
        (take / 65535 + 1) * 5 * 8 + take * 8 + 7 /*alignment upper bound*/;

    if (stored_bits < fixed_bits && stored_bits < dyn_bits) {
      std::size_t rem = take;
      std::size_t pos = 0;
      do {
        const std::size_t piece = std::min<std::size_t>(rem, 65535);
        const bool last_piece = final_block && piece == rem;
        out.put_bits(last_piece ? 1u : 0u, 1);
        out.put_bits(0b00, 2);  // stored
        out.align_to_byte();
        ByteWriter w;
        w.put<std::uint16_t>(static_cast<std::uint16_t>(piece));
        w.put<std::uint16_t>(static_cast<std::uint16_t>(~piece & 0xFFFFu));
        out.put_bytes(w.bytes());
        out.put_bytes(chunk.subspan(pos, piece));
        pos += piece;
        rem -= piece;
      } while (rem > 0);
      continue;
    }

    out.put_bits(final_block ? 1u : 0u, 1);
    if (fixed_bits <= dyn_bits) {
      out.put_bits(0b01, 2);  // fixed
      const HuffmanEncoder lit(fixed_lit);
      const HuffmanEncoder dst(fixed_dst);
      emit_tokens(out, tokens, lit, dst);
    } else {
      out.put_bits(0b10, 2);  // dynamic
      emit_dynamic_header(out, hdr);
      const HuffmanEncoder lit(hdr.lit_lengths);
      const HuffmanEncoder dst(hdr.dist_lengths);
      emit_tokens(out, tokens, lit, dst);
    }
  }

  return std::move(out).finish();
}

namespace {

void inflate_block(BitReader& in, Bytes& out, const HuffmanDecoder& lit,
                   const HuffmanDecoder& dst) {
  for (;;) {
    const std::uint16_t sym = lit.decode(in);
    if (sym == kEndOfBlock) return;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym >= 286) {
      throw_format("deflate: invalid literal/length symbol {}", sym);
    }
    const auto& lentry = kLengthCodes[static_cast<std::size_t>(sym - 257)];
    const int length =
        lentry.base + static_cast<int>(in.get_bits(lentry.extra));
    const std::uint16_t dsym = dst.decode(in);
    if (dsym >= kDistCodes.size()) {
      throw_format("deflate: invalid distance symbol {}", dsym);
    }
    const auto& dentry = kDistCodes[dsym];
    const std::size_t distance =
        dentry.base + in.get_bits(dentry.extra);
    if (distance > out.size()) {
      throw_format("deflate: distance {} exceeds output size {}", distance,
                   out.size());
    }
    // Byte-at-a-time copy: overlapping copies (distance < length) must
    // replicate, per the RFC.
    std::size_t src = out.size() - distance;
    for (int i = 0; i < length; ++i) {
      out.push_back(out[src++]);
    }
  }
}

}  // namespace

Bytes inflate(ByteSpan input, std::size_t size_hint) {
  BitReader in(input);
  Bytes out;
  out.reserve(size_hint != 0 ? size_hint : input.size() * 4);

  bool final_block = false;
  while (!final_block) {
    final_block = in.get_bit() != 0;
    const std::uint32_t btype = in.get_bits(2);
    switch (btype) {
      case 0b00: {  // stored
        in.align_to_byte();
        ByteReader hdr(in.get_bytes(4));
        const auto len = hdr.get<std::uint16_t>();
        const auto nlen = hdr.get<std::uint16_t>();
        if ((len ^ nlen) != 0xFFFFu) {
          throw_format("deflate: stored block LEN/NLEN mismatch");
        }
        const ByteSpan payload = in.get_bytes(len);
        out.insert(out.end(), payload.begin(), payload.end());
        break;
      }
      case 0b01: {  // fixed
        const HuffmanDecoder lit(fixed_litlen_lengths());
        const HuffmanDecoder dst(fixed_dist_lengths());
        inflate_block(in, out, lit, dst);
        break;
      }
      case 0b10: {  // dynamic
        const std::size_t hlit = in.get_bits(5) + 257;
        const std::size_t hdist = in.get_bits(5) + 1;
        const std::size_t hclen = in.get_bits(4) + 4;
        if (hlit > kLitLenAlphabet || hdist > kDistAlphabet) {
          throw_format("deflate: dynamic header out of range (hlit={} hdist={})",
                       hlit, hdist);
        }
        std::vector<std::uint8_t> clc_lengths(19, 0);
        for (std::size_t i = 0; i < hclen; ++i) {
          clc_lengths[kClcOrder[i]] =
              static_cast<std::uint8_t>(in.get_bits(3));
        }
        const HuffmanDecoder clc(clc_lengths);
        std::vector<std::uint8_t> joined;
        joined.reserve(hlit + hdist);
        while (joined.size() < hlit + hdist) {
          const std::uint16_t sym = clc.decode(in);
          if (sym < 16) {
            joined.push_back(static_cast<std::uint8_t>(sym));
          } else if (sym == 16) {
            if (joined.empty()) {
              throw_format("deflate: repeat code with no previous length");
            }
            const std::size_t run = 3 + in.get_bits(2);
            joined.insert(joined.end(), run, joined.back());
          } else if (sym == 17) {
            const std::size_t run = 3 + in.get_bits(3);
            joined.insert(joined.end(), run, 0);
          } else {  // 18
            const std::size_t run = 11 + in.get_bits(7);
            joined.insert(joined.end(), run, 0);
          }
        }
        if (joined.size() != hlit + hdist) {
          throw_format("deflate: code length stream overruns header counts");
        }
        const std::span<const std::uint8_t> js(joined);
        const HuffmanDecoder lit(js.first(hlit));
        const HuffmanDecoder dst(js.subspan(hlit));
        inflate_block(in, out, lit, dst);
        break;
      }
      default:
        throw_format("deflate: reserved block type 3");
    }
  }
  return out;
}

}  // namespace sciprep::compress
