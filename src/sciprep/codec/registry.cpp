#include <algorithm>
#include <cmath>

#include "sciprep/codec/codec.hpp"
#include "sciprep/common/error.hpp"

namespace sciprep::codec {

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry registry;
  return registry;
}

void CodecRegistry::register_codec(std::unique_ptr<SampleCodec> codec) {
  SCIPREP_ASSERT(codec != nullptr);
  for (const auto& existing : codecs_) {
    if (existing->name() == codec->name()) {
      throw ConfigError(fmt("codec '{}' already registered", codec->name()));
    }
  }
  codecs_.push_back(std::move(codec));
}

const SampleCodec& CodecRegistry::get(const std::string& name) const {
  for (const auto& codec : codecs_) {
    if (codec->name() == name) return *codec;
  }
  throw ConfigError(fmt("no codec named '{}' registered", name));
}

std::vector<std::string> CodecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(codecs_.size());
  for (const auto& codec : codecs_) {
    out.push_back(codec->name());
  }
  return out;
}

double fraction_above_rel_error(std::span<const float> reference,
                                std::span<const Half> decoded,
                                double rel_threshold) {
  SCIPREP_ASSERT(reference.size() == decoded.size());
  if (reference.empty()) return 0.0;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double ref = reference[i];
    const double got = decoded[i].to_float();
    const double err = std::abs(got - ref);
    const double scale = std::abs(ref);
    if (scale == 0.0) {
      // Against an exact zero, any nonzero half counts as exceeding.
      if (err > 0.0) ++bad;
    } else if (err / scale > rel_threshold) {
      ++bad;
    }
  }
  return static_cast<double>(bad) / static_cast<double>(reference.size());
}

}  // namespace sciprep::codec
