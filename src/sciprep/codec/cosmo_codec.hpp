// CosmoFlow lookup-table codec (paper §V.B).
//
// Encoding exploits two measured properties of the dataset:
//   1. each sample has only a few hundred unique particle counts, and
//   2. the 4 redshift values of a voxel are highly coupled — the number of
//      unique *groups of 4* is tens of thousands, indexable by 16-bit keys.
// The encoder builds a per-sample (per-block for larger volumes) lookup
// table of unique groups and replaces each voxel with a 1- or 2-byte key.
// Runs of identical keys (empty space) get a run-length "broadcast" stream.
//
// The decode step fuses the benchmark's preprocessing: the log1p operator is
// applied to the *table* (10^3 fewer values than the volume) and the table is
// materialized directly in FP16, so the scatter writes feed the
// mixed-precision model with zero further work. Casting counts through
// log1p to FP16 is the only precision change; the paper calls this encoding
// "not lossy when casting to FP16" because every voxel with equal counts maps
// to the identical FP16 value.
#pragma once

#include <array>
#include <cstdint>

#include "sciprep/codec/codec.hpp"
#include "sciprep/io/samples.hpp"

namespace sciprep::codec {

struct CosmoEncodeOptions {
  bool fuse_log1p = true;  // decoder applies log1p to table entries
  bool rle = true;         // allow the broadcast (run-length) key stream
  /// Maximum lookup-table entries per block. Blocks split when a volume has
  /// more unique groups than one 16-bit key space (paper: "For larger than
  /// 128^3 decompositions, multiple lookup tables are required").
  std::uint32_t max_groups_per_block = 65536;
};

/// Structural description of an encoded sample, for analysis benches.
struct CosmoEncodedInfo {
  std::uint32_t block_count = 0;
  std::uint64_t table_bytes = 0;
  std::uint64_t key_bytes = 0;
  std::uint64_t total_groups = 0;  // sum of per-block table sizes
  std::uint64_t rle_blocks = 0;
};

class CosmoCodec final : public SampleCodec {
 public:
  explicit CosmoCodec(CosmoEncodeOptions options = {});

  // Typed API ---------------------------------------------------------------
  [[nodiscard]] Bytes encode_sample(const io::CosmoSample& sample) const;
  [[nodiscard]] TensorF16 decode_sample_cpu(ByteSpan encoded) const;
  [[nodiscard]] TensorF16 decode_sample_gpu(ByteSpan encoded,
                                            sim::SimGpu& gpu) const;
  /// Parse only the structural header (no voxel work).
  [[nodiscard]] static CosmoEncodedInfo inspect(ByteSpan encoded);

  /// Baseline preprocessing: log1p + FP16 cast over the full volume, as the
  /// unmodified TensorFlow input pipeline performs it on the CPU.
  [[nodiscard]] static TensorF16 reference_preprocess_sample(
      const io::CosmoSample& sample, bool log1p = true);

  // SampleCodec -------------------------------------------------------------
  [[nodiscard]] std::string name() const override { return "cosmo-lut"; }
  [[nodiscard]] Bytes encode(ByteSpan raw_sample) const override;
  [[nodiscard]] TensorF16 decode_cpu(ByteSpan encoded) const override;
  [[nodiscard]] TensorF16 decode_gpu(ByteSpan encoded,
                                     sim::SimGpu& gpu) const override;
  [[nodiscard]] TensorF16 reference_preprocess(
      ByteSpan raw_sample) const override;

  [[nodiscard]] const CosmoEncodeOptions& options() const noexcept {
    return options_;
  }

 private:
  CosmoEncodeOptions options_;
};

}  // namespace sciprep::codec
