#include "sciprep/codec/cosmo_codec.hpp"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "sciprep/common/error.hpp"
#include "sciprep/guard/cancel.hpp"
#include "sciprep/obs/obs.hpp"

namespace sciprep::codec {

namespace {

constexpr std::uint32_t kMagic = 0x31455343u;  // "CSE1"
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagLog1p = 0x01;

constexpr std::uint8_t kStreamRaw = 0;
constexpr std::uint8_t kStreamRle = 1;

constexpr int kR = io::CosmoSample::kRedshifts;

/// A group of 4 redshift counts, hashed for the encoder's group index.
struct Group {
  std::array<std::int32_t, kR> v;
  bool operator==(const Group&) const = default;
};

struct GroupHash {
  std::size_t operator()(const Group& g) const noexcept {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const std::int32_t x : g.v) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) +
           0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// One block during encoding: voxel range, group table, key stream.
struct Block {
  std::uint64_t voxel_begin = 0;
  std::uint64_t voxel_end = 0;
  std::vector<Group> table;
  std::vector<std::uint32_t> keys;  // one per voxel in range
};

/// Size of a block's key stream if emitted raw.
std::uint64_t raw_stream_bytes(const Block& b, int key_width) {
  return (b.voxel_end - b.voxel_begin) * static_cast<std::uint64_t>(key_width);
}

struct RleRun {
  std::uint32_t length;
  std::uint32_t key;
};

std::vector<RleRun> rle_runs(const Block& b) {
  std::vector<RleRun> runs;
  std::size_t i = 0;
  while (i < b.keys.size()) {
    std::size_t j = i + 1;
    while (j < b.keys.size() && b.keys[j] == b.keys[i]) ++j;
    runs.push_back({static_cast<std::uint32_t>(j - i), b.keys[i]});
    i = j;
  }
  return runs;
}

std::uint64_t rle_stream_bytes(const std::vector<RleRun>& runs, int key_width) {
  // u32 run count + per run: u32 length + key.
  return 4 + runs.size() * (4ull + static_cast<std::uint64_t>(key_width));
}

/// The fused table transform: count -> (optionally log1p) -> FP16.
Half transform_count(std::int32_t count, bool log1p) {
  const auto x = static_cast<float>(count);
  return Half(log1p ? std::log1p(x) : x);
}

}  // namespace

CosmoCodec::CosmoCodec(CosmoEncodeOptions options) : options_(options) {
  if (options_.max_groups_per_block == 0 ||
      options_.max_groups_per_block > 65536) {
    throw ConfigError(fmt("cosmo codec: max_groups_per_block {} not in 1..65536",
                          options_.max_groups_per_block));
  }
}

Bytes CosmoCodec::encode_sample(const io::CosmoSample& sample) const {
  SCIPREP_ASSERT(sample.counts.size() == sample.value_count());
  if (options_.fuse_log1p) {
    for (const std::int32_t c : sample.counts) {
      if (c < 0) {
        throw ConfigError(
            "cosmo codec: negative counts are incompatible with fused log1p");
      }
    }
  }

  // --- Pass 1: split the volume into blocks of <= max_groups unique groups.
  const std::uint64_t voxels = sample.voxel_count();
  std::vector<Block> blocks;
  {
    Block current;
    current.voxel_begin = 0;
    std::unordered_map<Group, std::uint32_t, GroupHash> index;
    index.reserve(4096);
    for (std::uint64_t v = 0; v < voxels; ++v) {
      Group g;
      std::memcpy(g.v.data(), sample.counts.data() + v * kR,
                  sizeof(std::int32_t) * kR);
      auto it = index.find(g);
      if (it == index.end()) {
        if (current.table.size() >= options_.max_groups_per_block) {
          current.voxel_end = v;
          blocks.push_back(std::move(current));
          current = Block{};
          current.voxel_begin = v;
          index.clear();
        }
        it = index.emplace(g, static_cast<std::uint32_t>(current.table.size()))
                 .first;
        current.table.push_back(g);
      }
      current.keys.push_back(it->second);
    }
    current.voxel_end = voxels;
    blocks.push_back(std::move(current));
  }

  // --- Pass 2: serialize.
  ByteWriter out;
  out.put<std::uint32_t>(kMagic);
  out.put<std::uint8_t>(kVersion);
  out.put<std::uint8_t>(options_.fuse_log1p ? kFlagLog1p : 0);
  out.put<std::uint16_t>(0);  // reserved
  out.put<std::uint32_t>(static_cast<std::uint32_t>(sample.dim));
  for (const float p : sample.params) {
    out.put<float>(p);  // labels are lossless
  }
  out.put<std::uint32_t>(static_cast<std::uint32_t>(blocks.size()));

  for (const Block& b : blocks) {
    const int key_width = b.table.size() <= 256 ? 1 : 2;
    const auto runs = options_.rle ? rle_runs(b) : std::vector<RleRun>{};
    const bool use_rle =
        options_.rle &&
        rle_stream_bytes(runs, key_width) < raw_stream_bytes(b, key_width);

    out.put<std::uint64_t>(b.voxel_begin);
    out.put<std::uint64_t>(b.voxel_end);
    out.put<std::uint32_t>(static_cast<std::uint32_t>(b.table.size()));
    out.put<std::uint8_t>(static_cast<std::uint8_t>(key_width));
    out.put<std::uint8_t>(use_rle ? kStreamRle : kStreamRaw);
    for (const Group& g : b.table) {
      for (const std::int32_t x : g.v) {
        out.put<std::int32_t>(x);
      }
    }
    auto put_key = [&out, key_width](std::uint32_t key) {
      if (key_width == 1) {
        out.put<std::uint8_t>(static_cast<std::uint8_t>(key));
      } else {
        out.put<std::uint16_t>(static_cast<std::uint16_t>(key));
      }
    };
    if (use_rle) {
      out.put<std::uint32_t>(static_cast<std::uint32_t>(runs.size()));
      for (const RleRun& r : runs) {
        out.put<std::uint32_t>(r.length);
        put_key(r.key);
      }
    } else {
      for (const std::uint32_t k : b.keys) {
        put_key(k);
      }
    }
  }
  return std::move(out).take();
}

namespace {

/// Parsed views into an encoded sample (no copies of bulk data).
struct ParsedBlock {
  std::uint64_t voxel_begin = 0;
  std::uint64_t voxel_end = 0;
  std::uint32_t group_count = 0;
  int key_width = 1;
  bool rle = false;
  ByteSpan table;   // group_count * 4 * i32
  ByteSpan stream;  // raw keys or rle runs
  std::uint32_t run_count = 0;  // rle only
};

struct ParsedCosmo {
  int dim = 0;
  bool log1p = false;
  std::array<float, 4> labels{};
  std::vector<ParsedBlock> blocks;
};

ParsedCosmo parse_cosmo(ByteSpan encoded) {
  ByteReader in(encoded);
  if (in.get<std::uint32_t>() != kMagic) {
    throw_format("cosmo codec: bad magic");
  }
  const auto version = in.get<std::uint8_t>();
  if (version != kVersion) {
    throw_format("cosmo codec: unsupported version {}", version);
  }
  ParsedCosmo p;
  p.log1p = (in.get<std::uint8_t>() & kFlagLog1p) != 0;
  in.skip(2);
  p.dim = static_cast<int>(in.get<std::uint32_t>());
  if (p.dim <= 0 || p.dim > 4096) {
    throw_format("cosmo codec: implausible dim {}", p.dim);
  }
  for (auto& l : p.labels) {
    l = in.get<float>();
  }
  const auto nblocks = in.get<std::uint32_t>();
  const std::uint64_t voxels = static_cast<std::uint64_t>(p.dim) * p.dim * p.dim;
  std::uint64_t expect_begin = 0;
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    ParsedBlock b;
    b.voxel_begin = in.get<std::uint64_t>();
    b.voxel_end = in.get<std::uint64_t>();
    if (b.voxel_begin != expect_begin || b.voxel_end <= b.voxel_begin ||
        b.voxel_end > voxels) {
      throw_format("cosmo codec: block {} covers [{}, {}) (expected start {})",
                   i, b.voxel_begin, b.voxel_end, expect_begin);
    }
    expect_begin = b.voxel_end;
    b.group_count = in.get<std::uint32_t>();
    b.key_width = in.get<std::uint8_t>();
    if (b.key_width != 1 && b.key_width != 2) {
      throw_format("cosmo codec: bad key width {}", b.key_width);
    }
    if (b.group_count == 0 ||
        b.group_count > (b.key_width == 1 ? 256u : 65536u)) {
      throw_format("cosmo codec: table size {} exceeds key space", b.group_count);
    }
    const auto mode = in.get<std::uint8_t>();
    b.table = in.get_bytes(static_cast<std::size_t>(b.group_count) * kR *
                           sizeof(std::int32_t));
    if (mode == kStreamRle) {
      b.rle = true;
      b.run_count = in.get<std::uint32_t>();
      b.stream = in.get_bytes(static_cast<std::size_t>(b.run_count) *
                              (4u + static_cast<std::uint32_t>(b.key_width)));
    } else if (mode == kStreamRaw) {
      b.stream = in.get_bytes(
          static_cast<std::size_t>(b.voxel_end - b.voxel_begin) *
          static_cast<std::size_t>(b.key_width));
    } else {
      throw_format("cosmo codec: bad stream mode {}", mode);
    }
    p.blocks.push_back(b);
  }
  if (expect_begin != voxels) {
    throw_format("cosmo codec: blocks cover {} of {} voxels", expect_begin,
                 voxels);
  }
  if (!in.done()) {
    throw_format("cosmo codec: {} trailing bytes", in.remaining());
  }
  return p;
}

/// Reads the i-th little-endian int32 from an encoded table byte stream.
/// The stream sits at an arbitrary offset inside the serialized sample, so a
/// reinterpret_cast'ed array access would be a misaligned load.
std::int32_t load_table_count(const std::uint8_t* table_bytes, std::size_t i) {
  std::int32_t v;
  std::memcpy(&v, table_bytes + i * sizeof(std::int32_t), sizeof(v));
  return v;
}

/// Materialize a block's FP16 table: the fused log1p is applied to the unique
/// groups only — three orders of magnitude fewer values than the volume.
std::vector<Half> build_fp16_table(const ParsedBlock& b, bool log1p) {
  std::vector<Half> table(static_cast<std::size_t>(b.group_count) * kR);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = transform_count(load_table_count(b.table.data(), i), log1p);
  }
  return table;
}

std::uint32_t read_key(const std::uint8_t* stream, std::size_t i,
                       int key_width) {
  if (key_width == 1) return stream[i];
  std::uint16_t k;
  std::memcpy(&k, stream + i * 2, 2);
  return k;
}

void validate_key(std::uint32_t key, const ParsedBlock& b) {
  if (key >= b.group_count) {
    throw_format("cosmo codec: key {} out of table range {}", key,
                 b.group_count);
  }
}

}  // namespace

TensorF16 CosmoCodec::decode_sample_cpu(ByteSpan encoded) const {
  const ParsedCosmo p = parse_cosmo(encoded);
  TensorF16 out;
  const auto dim = static_cast<std::uint64_t>(p.dim);
  out.shape = {dim, dim, dim, kR};
  out.values.resize(dim * dim * dim * kR);
  out.float_labels.assign(p.labels.begin(), p.labels.end());

  for (const ParsedBlock& b : p.blocks) {
    guard::poll_cancellation();  // cancellation point per block
    const std::vector<Half> table = build_fp16_table(b, p.log1p);
    Half* dst = out.values.data() + b.voxel_begin * kR;
    if (b.rle) {
      ByteReader runs(b.stream);
      std::uint64_t voxel = b.voxel_begin;
      for (std::uint32_t r = 0; r < b.run_count; ++r) {
        const auto length = runs.get<std::uint32_t>();
        const std::uint32_t key = b.key_width == 1
                                      ? runs.get<std::uint8_t>()
                                      : runs.get<std::uint16_t>();
        validate_key(key, b);
        if (voxel + length > b.voxel_end) {
          throw_format("cosmo codec: RLE overruns block at voxel {}", voxel);
        }
        const Half* entry = table.data() + static_cast<std::size_t>(key) * kR;
        for (std::uint32_t i = 0; i < length; ++i) {
          std::memcpy(dst, entry, sizeof(Half) * kR);
          dst += kR;
        }
        voxel += length;
      }
      if (voxel != b.voxel_end) {
        throw_format("cosmo codec: RLE covers {} of {} voxels", voxel,
                     b.voxel_end);
      }
    } else {
      const std::uint64_t count = b.voxel_end - b.voxel_begin;
      for (std::uint64_t v = 0; v < count; ++v) {
        const std::uint32_t key = read_key(b.stream.data(), v, b.key_width);
        validate_key(key, b);
        std::memcpy(dst, table.data() + static_cast<std::size_t>(key) * kR,
                    sizeof(Half) * kR);
        dst += kR;
      }
    }
  }
  return out;
}

TensorF16 CosmoCodec::decode_sample_gpu(ByteSpan encoded,
                                        sim::SimGpu& gpu) const {
  const ParsedCosmo p = parse_cosmo(encoded);
  TensorF16 out;
  const auto dim = static_cast<std::uint64_t>(p.dim);
  out.shape = {dim, dim, dim, kR};
  out.values.resize(dim * dim * dim * kR);
  out.float_labels.assign(p.labels.begin(), p.labels.end());

  for (const ParsedBlock& b : p.blocks) {
    guard::poll_cancellation();  // cancellation point per block
    // Table construction is itself a small kernel: one lane per table entry.
    std::vector<Half> table(static_cast<std::size_t>(b.group_count) * kR);
    const std::uint8_t* raw_table = b.table.data();
    const std::size_t table_values = table.size();
    const bool log1p = p.log1p;
    gpu.launch((table_values + sim::Warp::kLanes - 1) / sim::Warp::kLanes,
               [&](sim::Warp& warp) {
                 warp.lanes([&](int lane) {
                   const std::size_t i =
                       warp.id() * sim::Warp::kLanes +
                       static_cast<std::size_t>(lane);
                   if (i >= table_values) return;
                   table[i] =
                       transform_count(load_table_count(raw_table, i), log1p);
                 });
                 warp.count_read(sim::Warp::kLanes * sizeof(std::int32_t));
                 warp.count_write(sim::Warp::kLanes * sizeof(Half));
               });

    Half* dst = out.values.data() + b.voxel_begin * kR;
    if (b.rle) {
      // Broadcast kernel: parse runs once on the "host" side of the launch,
      // then assign each run to consecutive warps; each lockstep op writes 32
      // voxels of the same table entry (a pure coalesced broadcast).
      ByteReader runs_in(b.stream);
      struct Run {
        std::uint64_t voxel;
        std::uint32_t length;
        std::uint32_t key;
      };
      std::vector<Run> runs;
      runs.reserve(b.run_count);
      std::uint64_t voxel = b.voxel_begin;
      for (std::uint32_t r = 0; r < b.run_count; ++r) {
        const auto length = runs_in.get<std::uint32_t>();
        const std::uint32_t key = b.key_width == 1
                                      ? runs_in.get<std::uint8_t>()
                                      : runs_in.get<std::uint16_t>();
        validate_key(key, b);
        if (voxel + length > b.voxel_end) {
          throw_format("cosmo codec: RLE overruns block at voxel {}", voxel);
        }
        runs.push_back({voxel, length, key});
        voxel += length;
      }
      if (voxel != b.voxel_end) {
        throw_format("cosmo codec: RLE covers {} of {} voxels", voxel,
                     b.voxel_end);
      }
      const std::uint64_t base = b.voxel_begin;
      gpu.launch(runs.size(), [&](sim::Warp& warp) {
        const Run& run = runs[warp.id()];
        const Half* entry =
            table.data() + static_cast<std::size_t>(run.key) * kR;
        Half* out_base = out.values.data() + run.voxel * kR;
        std::uint32_t done = 0;
        while (done < run.length) {
          const std::uint32_t batch =
              std::min<std::uint32_t>(sim::Warp::kLanes, run.length - done);
          if (batch < sim::Warp::kLanes) {
            warp.note_divergence();  // partial warp at run tail
          }
          warp.lanes([&](int lane) {
            if (static_cast<std::uint32_t>(lane) >= batch) return;
            std::memcpy(out_base + (done + static_cast<std::uint32_t>(lane)) * kR,
                        entry, sizeof(Half) * kR);
          });
          warp.count_write(batch * sizeof(Half) * kR);
          done += batch;
        }
        (void)base;
      });
    } else {
      // Gather kernel: lane v reads key[v], looks up 8 bytes, writes 8 bytes
      // — fully coalesced, no divergence (paper §VI: "no dependencies
      // between threads due to the use of single key width per table").
      const std::uint64_t count = b.voxel_end - b.voxel_begin;
      const std::uint8_t* stream = b.stream.data();
      const int key_width = b.key_width;
      const std::uint32_t group_count = b.group_count;
      gpu.launch((count + sim::Warp::kLanes - 1) / sim::Warp::kLanes,
                 [&](sim::Warp& warp) {
                   warp.lanes([&](int lane) {
                     const std::uint64_t v =
                         warp.id() * sim::Warp::kLanes +
                         static_cast<std::uint64_t>(lane);
                     if (v >= count) return;
                     const std::uint32_t key = read_key(stream, v, key_width);
                     if (key >= group_count) {
                       throw_format("cosmo codec: key {} out of range {}", key,
                                    group_count);
                     }
                     std::memcpy(
                         dst + v * kR,
                         table.data() + static_cast<std::size_t>(key) * kR,
                         sizeof(Half) * kR);
                   });
                   warp.count_read(sim::Warp::kLanes *
                                   (key_width + sizeof(Half) * kR));
                   warp.count_write(sim::Warp::kLanes * sizeof(Half) * kR);
                 });
    }
  }
  return out;
}

CosmoEncodedInfo CosmoCodec::inspect(ByteSpan encoded) {
  const ParsedCosmo p = parse_cosmo(encoded);
  CosmoEncodedInfo info;
  info.block_count = static_cast<std::uint32_t>(p.blocks.size());
  for (const ParsedBlock& b : p.blocks) {
    info.table_bytes += b.table.size();
    info.key_bytes += b.stream.size();
    info.total_groups += b.group_count;
    info.rle_blocks += b.rle ? 1 : 0;
  }
  return info;
}

TensorF16 CosmoCodec::reference_preprocess_sample(const io::CosmoSample& sample,
                                                  bool log1p) {
  TensorF16 out;
  const auto dim = static_cast<std::uint64_t>(sample.dim);
  out.shape = {dim, dim, dim, kR};
  out.values.resize(sample.counts.size());
  out.float_labels.assign(sample.params.begin(), sample.params.end());
  // Baseline path: the full 8M-value volume goes through log1p + cast, one
  // value at a time — no unique-value factoring.
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    out.values[i] = transform_count(sample.counts[i], log1p);
  }
  return out;
}

Bytes CosmoCodec::encode(ByteSpan raw_sample) const {
  SCIPREP_OBS_SPAN("codec.cosmo.encode", "codec");
  SCIPREP_OBS_COUNT("codec.cosmo.encode_bytes_in_total", raw_sample.size());
  Bytes out = encode_sample(io::CosmoSample::parse(raw_sample));
  SCIPREP_OBS_COUNT("codec.cosmo.encode_bytes_out_total", out.size());
  return out;
}

TensorF16 CosmoCodec::decode_cpu(ByteSpan encoded) const {
  SCIPREP_OBS_SPAN("codec.cosmo.decode_cpu", "codec");
  SCIPREP_OBS_COUNT("codec.cosmo.decode_bytes_in_total", encoded.size());
  return decode_sample_cpu(encoded);
}

TensorF16 CosmoCodec::decode_gpu(ByteSpan encoded, sim::SimGpu& gpu) const {
  SCIPREP_OBS_SPAN("codec.cosmo.decode_gpu", "codec");
  SCIPREP_OBS_COUNT("codec.cosmo.decode_bytes_in_total", encoded.size());
  return decode_sample_gpu(encoded, gpu);
}

TensorF16 CosmoCodec::reference_preprocess(ByteSpan raw_sample) const {
  SCIPREP_OBS_SPAN("codec.cosmo.reference_preprocess", "codec");
  SCIPREP_OBS_COUNT("codec.cosmo.reference_bytes_in_total", raw_sample.size());
  return reference_preprocess_sample(io::CosmoSample::parse(raw_sample),
                                     options_.fuse_log1p);
}

}  // namespace sciprep::codec
