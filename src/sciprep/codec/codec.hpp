// Codec plugin API — the integration surface of the paper's contribution.
//
// A SampleCodec turns a raw on-disk sample (serialized CosmoSample /
// CamSample) into a compact encoded form, and decodes that form directly into
// the FP16 tensor the mixed-precision training step consumes — with the
// domain preprocessing (log1p, normalization, layout transpose) fused into
// the decode, on either the CPU or the (simulated) GPU. The pipeline module
// places decode work by Placement, exactly like a DALI operator placement.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sciprep/common/buffer.hpp"
#include "sciprep/common/fp16.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::codec {

/// Where a decode runs (DALI operator placement).
enum class Placement { kCpu, kGpu };

/// The decoded, preprocessed training input: an FP16 tensor plus the sample's
/// labels (always lossless).
struct TensorF16 {
  std::vector<std::uint64_t> shape;
  std::vector<Half> values;
  std::vector<float> float_labels;        // CosmoFlow: 4 cosmological params
  std::vector<std::uint8_t> byte_labels;  // DeepCAM: segmentation mask

  [[nodiscard]] std::size_t value_count() const noexcept {
    return values.size();
  }
};

/// Abstract encoder/decoder plugin.
class SampleCodec {
 public:
  virtual ~SampleCodec() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Encode a raw serialized sample into the codec's compact format.
  [[nodiscard]] virtual Bytes encode(ByteSpan raw_sample) const = 0;

  /// Decode + fused preprocessing on the host CPU.
  [[nodiscard]] virtual TensorF16 decode_cpu(ByteSpan encoded) const = 0;

  /// Decode + fused preprocessing as a warp kernel on `gpu`.
  [[nodiscard]] virtual TensorF16 decode_gpu(ByteSpan encoded,
                                             sim::SimGpu& gpu) const = 0;

  /// Decode the *baseline* path: parse the raw sample and apply the same
  /// preprocessing on the CPU without the codec (what the unmodified
  /// benchmark data loader does). Used for baseline measurements and
  /// convergence comparisons.
  [[nodiscard]] virtual TensorF16 reference_preprocess(
      ByteSpan raw_sample) const = 0;
};

/// Process-wide codec registry (plugins register by name, as with DALI).
class CodecRegistry {
 public:
  static CodecRegistry& instance();

  void register_codec(std::unique_ptr<SampleCodec> codec);
  /// Throws ConfigError for unknown names.
  [[nodiscard]] const SampleCodec& get(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<SampleCodec>> codecs_;
};

/// Fraction of values whose decoded result deviates from `reference` by more
/// than `rel_threshold` relative error (the paper's §V.A quality metric:
/// "roughly 3% of the values with larger than 10% error").
double fraction_above_rel_error(std::span<const float> reference,
                                std::span<const Half> decoded,
                                double rel_threshold = 0.10);

}  // namespace sciprep::codec
