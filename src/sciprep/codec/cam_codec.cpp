#include "sciprep/codec/cam_codec.hpp"

#include <cmath>
#include <cstring>

#include "sciprep/common/error.hpp"
#include "sciprep/compress/deflate.hpp"
#include "sciprep/guard/cancel.hpp"
#include "sciprep/obs/obs.hpp"

namespace sciprep::codec {

namespace {

constexpr std::uint32_t kMagic = 0x31454143u;  // "CAE1"
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagNormalize = 0x01;

constexpr std::uint8_t kModeConstant = 0;
constexpr std::uint8_t kModeRaw16 = 1;
constexpr std::uint8_t kModeDelta = 2;

/// One quantized difference: sign, intrinsic exponent, 4-bit mantissa.
/// The encoded byte stores the exponent as an offset from the segment's
/// minimum exponent (3 bits), so the intrinsic exponent is what segmentation
/// reasons about.
struct QDelta {
  bool zero = true;
  bool negative = false;
  int exponent = 0;       // intrinsic: |d| = (1 + mant/16) * 2^exponent
  std::uint8_t mant = 0;  // 0..15

  [[nodiscard]] float value() const {
    if (zero) return 0.0F;
    const float magnitude =
        (1.0F + static_cast<float>(mant) / 16.0F) *
        std::ldexp(1.0F, exponent);
    return negative ? -magnitude : magnitude;
  }
};

/// Quantize a difference to the 8-bit delta representation.
QDelta quantize(float d) {
  QDelta q;
  if (d == 0.0F || !std::isfinite(d)) {
    return q;  // zero code; non-finite inputs fall back to raw lines upstream
  }
  q.zero = false;
  q.negative = std::signbit(d);
  const float a = std::abs(d);
  int exp = 0;
  const float frac = std::frexp(a, &exp);  // a = frac * 2^exp, frac in [0.5,1)
  q.exponent = exp - 1;                     // a = (2*frac) * 2^(exp-1)
  const float m = 2.0F * frac;              // in [1, 2)
  int mant = static_cast<int>(std::lround((m - 1.0F) * 16.0F));
  if (mant == 16) {  // rounded up to the next binade
    mant = 0;
    ++q.exponent;
  }
  q.mant = static_cast<std::uint8_t>(mant);
  return q;
}

std::uint8_t pack_delta(const QDelta& q, int emin) {
  if (q.zero) return 0x00;
  const int off = q.exponent - emin;
  SCIPREP_ASSERT(off >= 0 && off <= 7);
  std::uint8_t byte = static_cast<std::uint8_t>(
      (q.negative ? 0x80 : 0x00) | (off << 4) | q.mant);
  if (byte == 0x00) {
    // +1.0 * 2^emin collides with the zero code; nudge the mantissa one step
    // (a bounded 1/16 relative overestimate on one delta).
    byte = 0x01;
  }
  return byte;
}

float unpack_delta(std::uint8_t byte, int emin) {
  if (byte == 0x00) return 0.0F;
  const bool negative = (byte & 0x80) != 0;
  const int off = (byte >> 4) & 0x07;
  const int mant = byte & 0x0F;
  const float magnitude = (1.0F + static_cast<float>(mant) / 16.0F) *
                          std::ldexp(1.0F, emin + off);
  return negative ? -magnitude : magnitude;
}

/// A segment under construction or decoded: pivot plus quantized deltas.
struct Segment {
  std::uint16_t count = 0;  // values covered, including the pivot
  float pivot = 0;
  int emin = 0;
  std::size_t delta_offset = 0;  // into the line's delta byte array
};

struct LinePlan {
  std::uint8_t mode = kModeDelta;
  float constant = 0;
  std::vector<Segment> segments;
  std::vector<std::uint8_t> deltas;  // concatenated segment delta bytes
};

/// Build the delta plan for one line. Returns nullopt-like flag via
/// plan.mode: stays kModeDelta on success.
LinePlan plan_line(std::span<const float> line, const CamEncodeOptions& opt) {
  LinePlan plan;

  // Constant line?
  bool constant = true;
  for (const float v : line) {
    if (v != line[0]) {
      constant = false;
      break;
    }
  }
  if (constant && std::isfinite(line[0])) {
    plan.mode = kModeConstant;
    plan.constant = line[0];
    return plan;
  }

  bool finite = true;
  for (const float v : line) {
    if (!std::isfinite(v)) {
      finite = false;
      break;
    }
  }
  if (!finite) {
    plan.mode = kModeRaw16;  // NaN/Inf lines cannot be differenced safely
    return plan;
  }

  // Scale for judging reconstruction quality: errors far below the line's
  // RMS are sensor noise the codec is allowed to remove.
  double rms = 0;
  for (const float v : line) {
    rms += static_cast<double>(v) * v;
  }
  rms = std::sqrt(rms / static_cast<double>(line.size()));
  const double abs_floor = 1e-3 * rms;

  // Differential scan with exponent-window segmentation.
  std::vector<QDelta> pending;  // deltas of the open segment
  std::size_t seg_start = 0;
  float recon = line[0];
  int min_e = 0;
  int max_e = 0;
  bool have_e = false;
  std::size_t significant_errors = 0;

  auto close_segment = [&](std::size_t end) {
    Segment seg;
    seg.count = static_cast<std::uint16_t>(end - seg_start);
    seg.pivot = line[seg_start];
    seg.emin = have_e ? min_e : 0;
    seg.delta_offset = plan.deltas.size();
    for (const QDelta& q : pending) {
      plan.deltas.push_back(pack_delta(q, seg.emin));
    }
    plan.segments.push_back(seg);
    pending.clear();
    have_e = false;
  };

  for (std::size_t i = 1; i < line.size(); ++i) {
    const float d = line[i] - recon;
    QDelta q = quantize(d);
    bool open_new = false;
    if (!q.zero) {
      if (!have_e) {
        min_e = max_e = q.exponent;
        have_e = true;
      } else if (q.exponent > max_e) {
        if (q.exponent - min_e > 7) {
          open_new = true;  // jump too large for this segment's window
        } else {
          max_e = q.exponent;
        }
      } else if (q.exponent < min_e) {
        if (max_e - q.exponent > 7) {
          // Below the segment's noise floor: the paper's lossy smoothing —
          // encode as "no change" and let the residual re-enter the next
          // delta (self-correcting drift).
          q = QDelta{};
        } else {
          min_e = q.exponent;
        }
      }
    }
    if (!open_new &&
        i - seg_start >= static_cast<std::size_t>(opt.max_segment_length)) {
      open_new = true;
    }
    if (open_new) {
      close_segment(i);
      seg_start = i;
      recon = line[i];  // new pivot: reconstruction resets exactly
      continue;
    }
    pending.push_back(q);
    recon += q.value();
    // Quality gate bookkeeping: a value the reconstruction misses by more
    // than 10% relative AND more than the noise floor is a real loss.
    const double err = std::abs(static_cast<double>(recon) - line[i]);
    if (err > 0.10 * std::abs(static_cast<double>(line[i])) &&
        err > abs_floor) {
      ++significant_errors;
    }
  }
  close_segment(line.size());

  // Abrupt-line fallback (paper §V.A: "lines with abrupt transitions or
  // where the number of segments is large, we do not compress"): too many
  // segments, meaningful reconstruction error, or no size win over raw FP16.
  const std::size_t delta_bytes =
      2 + plan.segments.size() * 8 + plan.deltas.size();
  const std::size_t raw_bytes = line.size() * 2;
  const bool too_fragmented =
      plan.segments.size() >
      line.size() / static_cast<std::size_t>(opt.max_segment_ratio);
  const bool too_lossy = significant_errors > line.size() / 50;  // > 2%
  if (too_fragmented || too_lossy || delta_bytes >= raw_bytes) {
    plan.mode = kModeRaw16;
    plan.segments.clear();
    plan.deltas.clear();
  }
  return plan;
}

struct ChannelStats {
  float mean = 0;
  float inv_std = 1;
};

/// The fused preprocessing applied before every FP16 emit.
inline Half emit(float raw, const ChannelStats& s, bool normalize) {
  return Half(normalize ? (raw - s.mean) * s.inv_std : raw);
}

// ---------------------------------------------------------------------------
// Parsed encoded form
// ---------------------------------------------------------------------------

struct ParsedLine {
  std::uint8_t mode = 0;
  ByteSpan body;  // mode-specific payload
};

struct ParsedCam {
  int channels = 0;
  int height = 0;
  int width = 0;
  bool normalize = false;
  std::vector<ChannelStats> stats;
  Bytes labels;                // decompressed
  std::vector<ParsedLine> lines;
};

ParsedCam parse_cam(ByteSpan encoded) {
  ByteReader in(encoded);
  if (in.get<std::uint32_t>() != kMagic) {
    throw_format("cam codec: bad magic");
  }
  const auto version = in.get<std::uint8_t>();
  if (version != kVersion) {
    throw_format("cam codec: unsupported version {}", version);
  }
  ParsedCam p;
  p.normalize = (in.get<std::uint8_t>() & kFlagNormalize) != 0;
  p.channels = in.get<std::uint16_t>();
  p.height = static_cast<int>(in.get<std::uint32_t>());
  p.width = static_cast<int>(in.get<std::uint32_t>());
  if (p.channels <= 0 || p.height <= 0 || p.width <= 1) {
    throw_format("cam codec: degenerate dims {}x{}x{}", p.channels, p.height,
                 p.width);
  }
  const std::uint64_t pixel_count = static_cast<std::uint64_t>(p.height) *
                                    static_cast<std::uint64_t>(p.width);
  if (static_cast<std::uint64_t>(p.channels) * pixel_count >
      (std::uint64_t{1} << 28)) {
    throw_format("cam codec: implausible dims {}x{}x{}", p.channels, p.height,
                 p.width);
  }
  p.stats.resize(static_cast<std::size_t>(p.channels));
  for (auto& s : p.stats) {
    s.mean = in.get<float>();
    s.inv_std = in.get<float>();
  }
  const auto labels_raw = in.get<std::uint32_t>();
  const auto labels_comp = in.get<std::uint32_t>();
  // One u8 label per pixel — validate before inflate so a bit-rotted size
  // field cannot demand an arbitrarily large decompression buffer.
  if (labels_raw != pixel_count) {
    throw_format("cam codec: {} label bytes for a {}x{} image", labels_raw,
                 p.height, p.width);
  }
  const ByteSpan comp = in.get_bytes(labels_comp);
  p.labels = compress::inflate(comp, labels_raw);
  if (p.labels.size() != labels_raw) {
    throw_format("cam codec: labels decompressed to {} bytes, expected {}",
                 p.labels.size(), labels_raw);
  }

  const auto line_count = in.get<std::uint32_t>();
  const std::uint64_t expect_lines =
      static_cast<std::uint64_t>(p.channels) * static_cast<std::uint64_t>(p.height);
  if (line_count != expect_lines) {
    throw_format("cam codec: {} lines for {}x{} image", line_count, p.channels,
                 p.height);
  }
  if (in.remaining() / 4 < static_cast<std::uint64_t>(line_count) + 1) {
    throw_format("cam codec: stream too short for {} line offsets",
                 line_count);
  }
  std::vector<std::uint32_t> offsets(line_count + 1);
  for (auto& o : offsets) {
    o = in.get<std::uint32_t>();
  }
  const ByteSpan payload = in.get_bytes(offsets.back());
  if (!in.done()) {
    throw_format("cam codec: {} trailing bytes", in.remaining());
  }
  p.lines.resize(line_count);
  for (std::uint32_t i = 0; i < line_count; ++i) {
    if (offsets[i + 1] < offsets[i] || offsets[i + 1] > payload.size()) {
      throw_format("cam codec: line {} offsets out of order", i);
    }
    ByteSpan body = payload.subspan(offsets[i], offsets[i + 1] - offsets[i]);
    if (body.empty()) {
      throw_format("cam codec: empty line {}", i);
    }
    p.lines[i] = {body[0], body.subspan(1)};
  }
  return p;
}

/// Decode one line into `out[x] = emit(value(x))` through an index functor.
template <class Emit>
void decode_line(const ParsedLine& line, int width, const ChannelStats& stats,
                 bool normalize, Emit&& out) {
  switch (line.mode) {
    case kModeConstant: {
      ByteReader in(line.body);
      const float v = in.get<float>();
      const Half h = emit(v, stats, normalize);
      for (int x = 0; x < width; ++x) {
        out(x, h);
      }
      break;
    }
    case kModeRaw16: {
      if (line.body.size() != static_cast<std::size_t>(width) * 2) {
        throw_format("cam codec: raw line has {} bytes for width {}",
                     line.body.size(), width);
      }
      for (int x = 0; x < width; ++x) {
        std::uint16_t bits;
        std::memcpy(&bits, line.body.data() + static_cast<std::size_t>(x) * 2,
                    2);
        out(x, Half::from_bits(bits));  // already normalized at encode time
      }
      break;
    }
    case kModeDelta: {
      ByteReader in(line.body);
      const auto seg_count = in.get<std::uint16_t>();
      std::vector<Segment> segs(seg_count);
      std::size_t covered = 0;
      std::size_t delta_total = 0;
      for (auto& s : segs) {
        s.count = in.get<std::uint16_t>();
        s.pivot = in.get<float>();
        s.emin = in.get<std::int16_t>();
        if (s.count == 0) {
          throw_format("cam codec: empty segment");
        }
        s.delta_offset = delta_total;
        covered += s.count;
        delta_total += s.count - 1u;
      }
      if (covered != static_cast<std::size_t>(width)) {
        throw_format("cam codec: segments cover {} of {} values", covered,
                     width);
      }
      const ByteSpan deltas = in.get_bytes(delta_total);
      if (!in.done()) {
        throw_format("cam codec: trailing bytes in delta line");
      }
      int x = 0;
      for (const Segment& s : segs) {
        float recon = s.pivot;  // FP32 reconstruction, FP16 emit (paper §V.A)
        out(x++, emit(recon, stats, normalize));
        for (std::uint16_t i = 0; i + 1 < s.count; ++i) {
          recon += unpack_delta(deltas[s.delta_offset + i], s.emin);
          out(x++, emit(recon, stats, normalize));
        }
      }
      break;
    }
    default:
      throw_format("cam codec: bad line mode {}", line.mode);
  }
}

}  // namespace

CamCodec::CamCodec(CamEncodeOptions encode_options,
                   CamDecodeOptions decode_options)
    : encode_options_(encode_options), decode_options_(decode_options) {
  if (encode_options_.max_segment_ratio < 2 ||
      encode_options_.max_segment_length < 2 ||
      encode_options_.max_segment_length > 65535) {
    throw ConfigError("cam codec: invalid segmentation options");
  }
}

Bytes CamCodec::encode_sample(const io::CamSample& sample) const {
  SCIPREP_ASSERT(sample.image.size() == sample.value_count());
  SCIPREP_ASSERT(sample.labels.size() == sample.pixel_count());
  if (sample.width < 2) {
    throw ConfigError("cam codec: width must be >= 2");
  }

  // Per-channel statistics for the fused normalization.
  std::vector<ChannelStats> stats(static_cast<std::size_t>(sample.channels));
  for (int c = 0; c < sample.channels; ++c) {
    const float* plane =
        sample.image.data() + static_cast<std::size_t>(c) * sample.pixel_count();
    double sum = 0;
    for (std::size_t i = 0; i < sample.pixel_count(); ++i) sum += plane[i];
    const double mean = sum / static_cast<double>(sample.pixel_count());
    double var = 0;
    for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
      const double d = plane[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(sample.pixel_count());
    const double stddev = std::sqrt(std::max(var, 1e-12));
    stats[static_cast<std::size_t>(c)] = {
        static_cast<float>(mean), static_cast<float>(1.0 / stddev)};
  }

  ByteWriter out;
  out.put<std::uint32_t>(kMagic);
  out.put<std::uint8_t>(kVersion);
  out.put<std::uint8_t>(encode_options_.normalize ? kFlagNormalize : 0);
  out.put<std::uint16_t>(static_cast<std::uint16_t>(sample.channels));
  out.put<std::uint32_t>(static_cast<std::uint32_t>(sample.height));
  out.put<std::uint32_t>(static_cast<std::uint32_t>(sample.width));
  for (const ChannelStats& s : stats) {
    out.put<float>(s.mean);
    out.put<float>(s.inv_std);
  }

  // Labels: lossless DEFLATE.
  const Bytes packed_labels =
      compress::deflate(ByteSpan(sample.labels), compress::DeflateLevel::kFast);
  out.put<std::uint32_t>(static_cast<std::uint32_t>(sample.labels.size()));
  out.put<std::uint32_t>(static_cast<std::uint32_t>(packed_labels.size()));
  out.put_bytes(packed_labels);

  // Lines.
  const std::size_t line_count =
      static_cast<std::size_t>(sample.channels) *
      static_cast<std::size_t>(sample.height);
  out.put<std::uint32_t>(static_cast<std::uint32_t>(line_count));

  std::vector<std::uint32_t> offsets;
  offsets.reserve(line_count + 1);
  ByteWriter payload;
  for (int c = 0; c < sample.channels; ++c) {
    const ChannelStats& cs = stats[static_cast<std::size_t>(c)];
    for (int y = 0; y < sample.height; ++y) {
      offsets.push_back(static_cast<std::uint32_t>(payload.size()));
      const std::span<const float> line = sample.line(c, y);
      const LinePlan plan = plan_line(line, encode_options_);
      payload.put<std::uint8_t>(plan.mode);
      switch (plan.mode) {
        case kModeConstant:
          payload.put<float>(plan.constant);
          break;
        case kModeRaw16:
          for (const float v : line) {
            payload.put<std::uint16_t>(
                emit(v, cs, encode_options_.normalize).bits());
          }
          break;
        case kModeDelta:
          payload.put<std::uint16_t>(
              static_cast<std::uint16_t>(plan.segments.size()));
          for (const Segment& s : plan.segments) {
            payload.put<std::uint16_t>(s.count);
            payload.put<float>(s.pivot);
            payload.put<std::int16_t>(static_cast<std::int16_t>(s.emin));
          }
          payload.put_bytes(plan.deltas);
          break;
        default:
          SCIPREP_ASSERT(false);
      }
    }
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));
  for (const auto o : offsets) {
    out.put<std::uint32_t>(o);
  }
  out.put_bytes(payload.bytes());
  return std::move(out).take();
}

TensorF16 CamCodec::decode_sample_cpu(ByteSpan encoded) const {
  const ParsedCam p = parse_cam(encoded);
  TensorF16 out;
  const auto c64 = static_cast<std::uint64_t>(p.channels);
  const auto h64 = static_cast<std::uint64_t>(p.height);
  const auto w64 = static_cast<std::uint64_t>(p.width);
  const bool chw = decode_options_.layout == CamLayout::kCHW;
  out.shape = chw ? std::vector<std::uint64_t>{c64, h64, w64}
                  : std::vector<std::uint64_t>{h64, w64, c64};
  out.values.resize(c64 * h64 * w64);
  out.byte_labels = p.labels;

  for (int c = 0; c < p.channels; ++c) {
    guard::poll_cancellation();  // cancellation point per channel
    const ChannelStats& cs = p.stats[static_cast<std::size_t>(c)];
    for (int y = 0; y < p.height; ++y) {
      const ParsedLine& line =
          p.lines[static_cast<std::size_t>(c) * p.height + y];
      // Layout transpose fused into the write index.
      if (chw) {
        Half* dst = out.values.data() +
                    (static_cast<std::size_t>(c) * p.height + y) * p.width;
        decode_line(line, p.width, cs, p.normalize,
                    [dst](int x, Half h) { dst[x] = h; });
      } else {
        Half* base = out.values.data() +
                     static_cast<std::size_t>(y) * p.width * p.channels +
                     static_cast<std::size_t>(c);
        const int stride = p.channels;
        decode_line(line, p.width, cs, p.normalize, [base, stride](int x, Half h) {
          base[static_cast<std::size_t>(x) * stride] = h;
        });
      }
    }
  }
  return out;
}

TensorF16 CamCodec::decode_sample_gpu(ByteSpan encoded,
                                      sim::SimGpu& gpu) const {
  const ParsedCam p = parse_cam(encoded);
  TensorF16 out;
  const auto c64 = static_cast<std::uint64_t>(p.channels);
  const auto h64 = static_cast<std::uint64_t>(p.height);
  const auto w64 = static_cast<std::uint64_t>(p.width);
  const bool chw = decode_options_.layout == CamLayout::kCHW;
  out.shape = chw ? std::vector<std::uint64_t>{c64, h64, w64}
                  : std::vector<std::uint64_t>{h64, w64, c64};
  out.values.resize(c64 * h64 * w64);
  out.byte_labels = p.labels;

  // Hierarchical warp assignment (paper §VI): each line decodes in its own
  // warp — lines are fully independent thanks to the offset table. Within a
  // warp, copy/broadcast tasks run lane-parallel (coalesced 32-value writes);
  // the serial delta reconstruction walks in registers and flushes through
  // lane-parallel stores, with each segment transition noted as divergence.
  const std::size_t line_count = p.lines.size();
  const int width = p.width;
  const int height = p.height;
  const int channels = p.channels;
  Half* values = out.values.data();
  const bool normalize = p.normalize;

  gpu.launch(line_count, [&, width, height, channels, chw,
                          normalize](sim::Warp& warp) {
    const std::size_t line_id = warp.id();
    const int c = static_cast<int>(line_id) / height;
    const int y = static_cast<int>(line_id) % height;
    const ChannelStats& cs = p.stats[static_cast<std::size_t>(c)];
    const ParsedLine& line = p.lines[line_id];

    // Stage the line into a "shared memory" buffer, then flush with
    // lane-parallel batches of 32 (the coalesced store pattern).
    std::vector<Half> staged(static_cast<std::size_t>(width));
    switch (line.mode) {
      case kModeConstant: {
        ByteReader in(line.body);
        const Half h = emit(in.get<float>(), cs, normalize);
        // Pure broadcast: every lane writes the same register value.
        for (int x0 = 0; x0 < width; x0 += sim::Warp::kLanes) {
          warp.lanes([&](int lane) {
            const int x = x0 + lane;
            if (x < width) staged[static_cast<std::size_t>(x)] = h;
          });
        }
        warp.count_read(sizeof(float));
        break;
      }
      case kModeRaw16: {
        if (line.body.size() != static_cast<std::size_t>(width) * 2) {
          throw_format("cam codec: raw line has {} bytes for width {}",
                       line.body.size(), width);
        }
        for (int x0 = 0; x0 < width; x0 += sim::Warp::kLanes) {
          warp.lanes([&](int lane) {
            const int x = x0 + lane;
            if (x >= width) return;
            std::uint16_t bits;
            std::memcpy(&bits,
                        line.body.data() + static_cast<std::size_t>(x) * 2, 2);
            staged[static_cast<std::size_t>(x)] = Half::from_bits(bits);
          });
        }
        warp.count_read(static_cast<std::uint64_t>(width) * 2);
        break;
      }
      case kModeDelta: {
        // Serial reconstruction: one lane effectively works while the warp
        // waits — the divergence cost the paper's hierarchical scheme
        // mitigates by keeping other warps (other lines) resident.
        decode_line(line, width, cs, normalize, [&staged](int x, Half h) {
          staged[static_cast<std::size_t>(x)] = h;
        });
        ByteReader in(line.body);
        const auto seg_count = in.get<std::uint16_t>();
        for (int s = 0; s < seg_count; ++s) {
          warp.note_divergence();
        }
        warp.count_read(line.body.size());
        break;
      }
      default:
        throw_format("cam codec: bad line mode {}", line.mode);
    }

    // Flush: lane-parallel stores; CHW is coalesced, HWC strides by channel
    // count (counted as divergence pressure for the ablation bench).
    if (chw) {
      Half* dst =
          values + (static_cast<std::size_t>(c) * height + y) * width;
      for (int x0 = 0; x0 < width; x0 += sim::Warp::kLanes) {
        warp.lanes([&](int lane) {
          const int x = x0 + lane;
          if (x < width) dst[x] = staged[static_cast<std::size_t>(x)];
        });
      }
    } else {
      Half* base = values + static_cast<std::size_t>(y) * width * channels +
                   static_cast<std::size_t>(c);
      for (int x0 = 0; x0 < width; x0 += sim::Warp::kLanes) {
        warp.note_divergence();  // strided (uncoalesced) store pattern
        warp.lanes([&](int lane) {
          const int x = x0 + lane;
          if (x < width) {
            base[static_cast<std::size_t>(x) * channels] =
                staged[static_cast<std::size_t>(x)];
          }
        });
      }
    }
    warp.count_write(static_cast<std::uint64_t>(width) * sizeof(Half));
  });
  return out;
}

CamEncodedInfo CamCodec::inspect(ByteSpan encoded) {
  const ParsedCam p = parse_cam(encoded);
  CamEncodedInfo info;
  info.label_bytes = p.labels.size();
  for (const ParsedLine& line : p.lines) {
    info.payload_bytes += line.body.size() + 1;
    switch (line.mode) {
      case kModeConstant:
        ++info.constant_lines;
        break;
      case kModeRaw16:
        ++info.raw_lines;
        break;
      case kModeDelta: {
        ++info.delta_lines;
        ByteReader in(line.body);
        info.segments += in.get<std::uint16_t>();
        break;
      }
      default:
        throw_format("cam codec: bad line mode {}", line.mode);
    }
  }
  return info;
}

TensorF16 CamCodec::reference_preprocess_sample(const io::CamSample& sample,
                                                bool normalize,
                                                CamLayout layout) {
  TensorF16 out;
  const auto c64 = static_cast<std::uint64_t>(sample.channels);
  const auto h64 = static_cast<std::uint64_t>(sample.height);
  const auto w64 = static_cast<std::uint64_t>(sample.width);
  const bool chw = layout == CamLayout::kCHW;
  out.shape = chw ? std::vector<std::uint64_t>{c64, h64, w64}
                  : std::vector<std::uint64_t>{h64, w64, c64};
  out.values.resize(sample.value_count());
  out.byte_labels = sample.labels;

  for (int c = 0; c < sample.channels; ++c) {
    const float* plane =
        sample.image.data() + static_cast<std::size_t>(c) * sample.pixel_count();
    ChannelStats cs;
    if (normalize) {
      double sum = 0;
      for (std::size_t i = 0; i < sample.pixel_count(); ++i) sum += plane[i];
      const double mean = sum / static_cast<double>(sample.pixel_count());
      double var = 0;
      for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
        const double d = plane[i] - mean;
        var += d * d;
      }
      var /= static_cast<double>(sample.pixel_count());
      cs = {static_cast<float>(mean),
            static_cast<float>(1.0 / std::sqrt(std::max(var, 1e-12)))};
    }
    for (int y = 0; y < sample.height; ++y) {
      for (int x = 0; x < sample.width; ++x) {
        const float v = plane[static_cast<std::size_t>(y) * sample.width + x];
        const Half h = emit(v, cs, normalize);
        const std::size_t idx =
            chw ? (static_cast<std::size_t>(c) * sample.height + y) *
                          sample.width +
                      x
                : (static_cast<std::size_t>(y) * sample.width + x) *
                          sample.channels +
                      c;
        out.values[idx] = h;
      }
    }
  }
  return out;
}

Bytes CamCodec::encode(ByteSpan raw_sample) const {
  SCIPREP_OBS_SPAN("codec.cam.encode", "codec");
  SCIPREP_OBS_COUNT("codec.cam.encode_bytes_in_total", raw_sample.size());
  Bytes out = encode_sample(io::CamSample::parse(raw_sample));
  SCIPREP_OBS_COUNT("codec.cam.encode_bytes_out_total", out.size());
  return out;
}

TensorF16 CamCodec::decode_cpu(ByteSpan encoded) const {
  SCIPREP_OBS_SPAN("codec.cam.decode_cpu", "codec");
  SCIPREP_OBS_COUNT("codec.cam.decode_bytes_in_total", encoded.size());
  return decode_sample_cpu(encoded);
}

TensorF16 CamCodec::decode_gpu(ByteSpan encoded, sim::SimGpu& gpu) const {
  SCIPREP_OBS_SPAN("codec.cam.decode_gpu", "codec");
  SCIPREP_OBS_COUNT("codec.cam.decode_bytes_in_total", encoded.size());
  return decode_sample_gpu(encoded, gpu);
}

TensorF16 CamCodec::reference_preprocess(ByteSpan raw_sample) const {
  SCIPREP_OBS_SPAN("codec.cam.reference_preprocess", "codec");
  SCIPREP_OBS_COUNT("codec.cam.reference_bytes_in_total", raw_sample.size());
  return reference_preprocess_sample(io::CamSample::parse(raw_sample),
                                     encode_options_.normalize,
                                     decode_options_.layout);
}

}  // namespace sciprep::codec
