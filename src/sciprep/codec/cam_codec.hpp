// DeepCAM differential floating-point codec (paper §V.A, Figure 4).
//
// Climate images vary smoothly along x (longitude) except at extreme-weather
// phenomena. The encoder processes each (channel, row) line independently:
//
//   * CONSTANT lines (all values identical) store one FP32 value.
//   * SMOOTH lines are split into segments. A segment stores its head value
//     ("pivot", FP32) and one 8-bit code per following value describing the
//     difference from its left neighbour: 1 sign bit, 3-bit exponent offset
//     from the segment's minimum exponent, 4-bit mantissa. The per-segment
//     minimum exponent makes the exponent interpretation local, which is how
//     the scheme handles near-denormal magnitudes. Quantizing the deltas is
//     lossy — it "removes noise resulting from sensor measurement of smooth
//     areas" — and the encoder tracks the reconstruction so errors do not
//     accumulate along the line.
//   * ABRUPT lines (too many segments, or the encoding would not save space)
//     are stored raw as FP16 — they "potentially carry interesting climate
//     phenomena" and are not worth risking.
//
// A per-line offset table precedes the payload, so every line decodes
// independently — the property that makes the GPU implementation possible.
// Decoding fuses the benchmark's preprocessing: per-channel normalization
// (stored at encode time) is applied before the FP16 emit, and the output
// layout (CHW or HWC) is chosen at decode time, fusing the data transpose
// with decompression. Labels are compressed losslessly (DEFLATE).
#pragma once

#include <cstdint>
#include <vector>

#include "sciprep/codec/codec.hpp"
#include "sciprep/io/samples.hpp"

namespace sciprep::codec {

/// Output tensor layout; transpose is fused into the decode scatter.
enum class CamLayout { kCHW, kHWC };

struct CamEncodeOptions {
  /// Apply (v - mean) / std per channel during decode, with the statistics
  /// computed at encode time and stored in the header. Required for FP16
  /// output when channels live at 1e5-scale magnitudes.
  bool normalize = true;
  /// A line whose delta form needs more than width/max_segment_ratio
  /// segments is considered abrupt and stored raw.
  int max_segment_ratio = 8;
  /// Maximum values covered by one segment (bounds the error horizon and the
  /// serial run a GPU warp must walk).
  int max_segment_length = 256;
};

struct CamDecodeOptions {
  CamLayout layout = CamLayout::kCHW;
};

/// Per-line encoding mode counters, for analysis benches.
struct CamEncodedInfo {
  std::uint64_t constant_lines = 0;
  std::uint64_t raw_lines = 0;
  std::uint64_t delta_lines = 0;
  std::uint64_t segments = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t label_bytes = 0;
};

class CamCodec final : public SampleCodec {
 public:
  explicit CamCodec(CamEncodeOptions encode_options = {},
                    CamDecodeOptions decode_options = {});

  // Typed API ---------------------------------------------------------------
  [[nodiscard]] Bytes encode_sample(const io::CamSample& sample) const;
  [[nodiscard]] TensorF16 decode_sample_cpu(ByteSpan encoded) const;
  [[nodiscard]] TensorF16 decode_sample_gpu(ByteSpan encoded,
                                            sim::SimGpu& gpu) const;
  [[nodiscard]] static CamEncodedInfo inspect(ByteSpan encoded);

  /// Baseline preprocessing: FP32 image -> per-channel normalize -> FP16,
  /// all on the CPU over the full image, as the unmodified PyTorch data
  /// loader does. Uses the same statistics convention as the codec
  /// (per-sample mean/std) so convergence comparisons are apples-to-apples.
  [[nodiscard]] static TensorF16 reference_preprocess_sample(
      const io::CamSample& sample, bool normalize = true,
      CamLayout layout = CamLayout::kCHW);

  // SampleCodec -------------------------------------------------------------
  [[nodiscard]] std::string name() const override { return "cam-delta"; }
  [[nodiscard]] Bytes encode(ByteSpan raw_sample) const override;
  [[nodiscard]] TensorF16 decode_cpu(ByteSpan encoded) const override;
  [[nodiscard]] TensorF16 decode_gpu(ByteSpan encoded,
                                     sim::SimGpu& gpu) const override;
  [[nodiscard]] TensorF16 reference_preprocess(
      ByteSpan raw_sample) const override;

  [[nodiscard]] const CamEncodeOptions& encode_options() const noexcept {
    return encode_options_;
  }
  [[nodiscard]] const CamDecodeOptions& decode_options() const noexcept {
    return decode_options_;
  }

 private:
  CamEncodeOptions encode_options_;
  CamDecodeOptions decode_options_;
};

}  // namespace sciprep::codec
