#include "sciprep/apps/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"

namespace sciprep::apps {

TrainResult train(dnn::Sequential& model, std::vector<Example>& examples,
                  const TrainConfig& config) {
  SCIPREP_ASSERT(!examples.empty());
  SCIPREP_ASSERT(config.batch_size >= 1);
  dnn::Sgd optimizer(model, config.sgd);
  TrainResult result;

  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(config.seed + 17);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[shuffle_rng.next_below(i)]);
      }
    }
    double epoch_loss = 0;
    std::size_t epoch_steps = 0;
    for (std::size_t at = 0; at < order.size();
         at += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end = std::min(
          order.size(), at + static_cast<std::size_t>(config.batch_size));
      double batch_loss = 0;
      for (std::size_t i = at; i < end; ++i) {
        Example& ex = examples[order[i]];
        const dnn::Tensor pred = model.forward(ex.input);
        dnn::LossResult loss;
        if (config.class_weights.empty()) {
          loss = dnn::mse_loss(pred, ex.regression_target);
        } else {
          loss = dnn::softmax_xent_loss(pred, ex.pixel_labels,
                                        config.class_weights);
        }
        batch_loss += loss.loss;
        model.backward(loss.grad);  // gradients accumulate across the batch
      }
      const auto count = static_cast<float>(end - at);
      optimizer.step(count);
      const double mean_loss = batch_loss / count;
      result.step_losses.push_back(mean_loss);
      epoch_loss += mean_loss;
      ++epoch_steps;
    }
    result.epoch_losses.push_back(epoch_loss /
                                  static_cast<double>(epoch_steps));
  }
  return result;
}

}  // namespace sciprep::apps
