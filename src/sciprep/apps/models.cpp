#include "sciprep/apps/models.hpp"

#include <cmath>

#include "sciprep/common/error.hpp"
#include "sciprep/io/samples.hpp"

namespace sciprep::apps {

std::unique_ptr<dnn::Sequential> build_cosmoflow_model(int dim, Rng& rng) {
  if (dim % 8 != 0) {
    throw ConfigError(fmt("cosmoflow model: dim {} must be divisible by 8", dim));
  }
  auto model = std::make_unique<dnn::Sequential>();
  model->add(std::make_unique<dnn::Conv3d>(4, 8, rng));
  model->add(std::make_unique<dnn::Relu>());
  model->add(std::make_unique<dnn::MaxPool3d>());
  model->add(std::make_unique<dnn::Conv3d>(8, 8, rng));
  model->add(std::make_unique<dnn::Relu>());
  model->add(std::make_unique<dnn::MaxPool3d>());
  model->add(std::make_unique<dnn::Conv3d>(8, 8, rng));
  model->add(std::make_unique<dnn::Relu>());
  model->add(std::make_unique<dnn::MaxPool3d>());
  model->add(std::make_unique<dnn::Flatten>());
  const std::size_t flat =
      8ull * static_cast<std::size_t>(dim / 8) * (dim / 8) * (dim / 8);
  model->add(std::make_unique<dnn::Dense>(flat, 32, rng));
  model->add(std::make_unique<dnn::Relu>());
  model->add(std::make_unique<dnn::Dense>(32, 4, rng));
  return model;
}

std::unique_ptr<dnn::Sequential> build_deepcam_model(int channels, Rng& rng) {
  auto model = std::make_unique<dnn::Sequential>();
  model->add(std::make_unique<dnn::Conv2d>(channels, 12, rng));
  model->add(std::make_unique<dnn::Relu>());
  model->add(std::make_unique<dnn::Conv2d>(12, 8, rng));
  model->add(std::make_unique<dnn::Relu>());
  model->add(std::make_unique<dnn::Conv2d>(8, io::CamSample::kClasses, rng));
  return model;
}

dnn::Tensor input_from_fp16(const codec::TensorF16& tensor) {
  dnn::Tensor out(tensor.shape);
  for (std::size_t i = 0; i < tensor.values.size(); ++i) {
    out[i] = tensor.values[i].to_float();
  }
  return out;
}

dnn::Tensor cosmo_input_from_fp16(const codec::TensorF16& tensor) {
  SCIPREP_ASSERT(tensor.shape.size() == 4 &&
                 tensor.shape[3] == io::CosmoSample::kRedshifts);
  const std::uint64_t voxels =
      tensor.shape[0] * tensor.shape[1] * tensor.shape[2];
  dnn::Tensor out({io::CosmoSample::kRedshifts, tensor.shape[0],
                   tensor.shape[1], tensor.shape[2]});
  for (std::uint64_t v = 0; v < voxels; ++v) {
    for (std::uint64_t r = 0; r < io::CosmoSample::kRedshifts; ++r) {
      out[r * voxels + v] =
          tensor.values[v * io::CosmoSample::kRedshifts + r].to_float();
    }
  }
  return out;
}

dnn::Tensor cosmo_input_fp32(const io::CosmoSample& sample) {
  const auto dim = static_cast<std::uint64_t>(sample.dim);
  const std::uint64_t voxels = dim * dim * dim;
  dnn::Tensor out({io::CosmoSample::kRedshifts, dim, dim, dim});
  for (std::uint64_t v = 0; v < voxels; ++v) {
    for (std::uint64_t r = 0; r < io::CosmoSample::kRedshifts; ++r) {
      out[r * voxels + v] = std::log1p(static_cast<float>(
          sample.counts[v * io::CosmoSample::kRedshifts + r]));
    }
  }
  return out;
}

dnn::Tensor cam_input_fp32(const io::CamSample& sample) {
  dnn::Tensor out({static_cast<std::uint64_t>(sample.channels),
                   static_cast<std::uint64_t>(sample.height),
                   static_cast<std::uint64_t>(sample.width)});
  for (int c = 0; c < sample.channels; ++c) {
    const float* plane =
        sample.image.data() + static_cast<std::size_t>(c) * sample.pixel_count();
    double sum = 0;
    for (std::size_t i = 0; i < sample.pixel_count(); ++i) sum += plane[i];
    const double mean = sum / static_cast<double>(sample.pixel_count());
    double var = 0;
    for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
      var += (plane[i] - mean) * (plane[i] - mean);
    }
    var /= static_cast<double>(sample.pixel_count());
    const double inv = 1.0 / std::sqrt(std::max(var, 1e-12));
    float* dst =
        out.data.data() + static_cast<std::size_t>(c) * sample.pixel_count();
    for (std::size_t i = 0; i < sample.pixel_count(); ++i) {
      dst[i] = static_cast<float>((plane[i] - mean) * inv);
    }
  }
  return out;
}

double cosmoflow_train_flops_per_sample() {
  // Five 3D conv layers on a 128^3 x 4 volume (benchmark architecture):
  // roughly 70 GFLOP forward, x3 for forward+backward.
  return 70e9 * 3.0;
}

double deepcam_train_flops_per_sample() {
  // DeepLabv3+ (Xception-65 backbone) on 1152x768 x 16: ~0.5 TFLOP forward.
  return 0.5e12 * 3.0;
}

}  // namespace sciprep::apps
