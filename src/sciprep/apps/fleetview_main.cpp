// fleetview — fleet-level telemetry federation (DESIGN.md §15).
//
// Merges N per-scope metrics time-series — fleet.v1 JSONL written by traced
// wire clients (--fleet-out) and/or insight exporter JSONL ticks — into one
// time-ordered `sciprep.flow.fleet.v1` series plus an aggregated Prometheus
// text body with a {scope="..."} label per source and an unlabelled
// fleet-wide sum:
//
//   fleetview tenant0.fleet.jsonl tenant1.fleet.jsonl
//       --scope rank0 rank0.metrics.jsonl
//       --out-jsonl fleet.jsonl --out-prom fleet.prom --require-reconciled
//
// `--scope NAME` labels the *next* input file when its lines carry no scope
// of their own (exporter ticks from a pre-flow trainer). The merge is
// self-checking: every scope's summed deltas must equal its last declared
// cumulative totals, and --require-reconciled turns any mismatch (a lost or
// truncated line) into a nonzero exit — this backs the flow_trace_smoke
// reconciliation step.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sciprep/flow/fleet.hpp"

namespace {

using namespace sciprep;

struct Args {
  std::vector<flow::FleetInput> inputs;
  std::vector<std::string> paths;  // parallel to inputs, for messages
  std::string out_jsonl;
  std::string out_prom;
  bool require_reconciled = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fleetview [--scope NAME] FILE [[--scope NAME] FILE...]\n"
               "                 [--out-jsonl FILE] [--out-prom FILE]\n"
               "                 [--require-reconciled]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  std::string pending_scope;
  auto val = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--scope") {
      pending_scope = val(i);
    } else if (f == "--out-jsonl") {
      a.out_jsonl = val(i);
    } else if (f == "--out-prom") {
      a.out_prom = val(i);
    } else if (f == "--require-reconciled") {
      a.require_reconciled = true;
    } else if (f == "--help" || f == "-h") {
      usage();
    } else if (!f.empty() && f[0] == '-') {
      std::fprintf(stderr, "fleetview: unknown flag %s\n", f.c_str());
      usage();
    } else {
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "fleetview: cannot read %s\n", f.c_str());
        std::exit(2);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      a.inputs.push_back({pending_scope, buf.str()});
      a.paths.push_back(f);
      pending_scope.clear();
    }
  }
  if (a.inputs.empty()) usage();
  return a;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "fleetview: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << body;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    const flow::FleetMergeResult merged = flow::merge_fleet(args.inputs);
    for (const auto& [scope, state] : merged.scopes) {
      std::printf("fleetview: scope '%s' — %llu line(s), %s\n", scope.c_str(),
                  static_cast<unsigned long long>(state.lines),
                  state.reconciled ? "reconciled" : "NOT reconciled");
    }
    std::printf("fleetview: %llu line(s) merged across %zu scope(s), "
                "%llu skipped\n",
                static_cast<unsigned long long>(merged.lines_parsed),
                merged.scopes.size(),
                static_cast<unsigned long long>(merged.lines_skipped));
    std::printf("%s\n", merged.summary_json().c_str());
    if (!args.out_jsonl.empty()) {
      write_file(args.out_jsonl, merged.merged_jsonl);
      std::printf("fleetview: merged series -> %s\n", args.out_jsonl.c_str());
    }
    if (!args.out_prom.empty()) {
      write_file(args.out_prom, merged.prometheus);
      std::printf("fleetview: prometheus -> %s\n", args.out_prom.c_str());
    }
    if (args.require_reconciled && !merged.reconciled) {
      std::fprintf(stderr,
                   "fleetview: FAIL — a scope's summed deltas do not match "
                   "its declared totals (lost or truncated lines)\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetview: %s\n", e.what());
    return 2;
  }
}
