// perfbench — the one-command benchmark runner behind BENCH_*.json.
//
// Executes a fixed suite of probes in-process and appends one run to a
// sciprep.perf.trajectory.v1 file:
//
//   * fig8/fig10/fig11 throughput probes: measure the real codecs on this
//     host (apps::measure_*), feed the profiles through the §5 step model,
//     and record the headline samples/s + speedup metrics the paper's
//     figures are judged by — modeled seconds are sim-charged, the codec
//     timings are wall.
//   * obs/fault/guard/insight/shard overhead probes: run the same pipeline
//     epoch loop bare and instrumented and record the process-CPU overhead
//     fraction of each layer (the "<1% when healthy" contracts). The insight
//     probe also runs the critical-path analyzer over its registry so the
//     record carries per-stage busy seconds and p50/p99 stage latencies;
//     the shard probe compares the zero-fault ShardCoordinator at 1 and 4
//     ranks against the bare pipeline (per-rank sharding cost); the serve
//     probe multiplexes two tenants through a resident DataService and
//     compares against the same two pipelines run bare (multi-tenant
//     plumbing cost); the wire probe serves one tenant over an AF_UNIX
//     socket and compares against draining the service in-process (the
//     cross-process transport cost, contract ~10% of delivery wall time).
//
// Every probe is run `--warmup` times untimed, then `--repeat` times, and
// the per-metric median is recorded — one slow run on a noisy host must not
// poison the trajectory. perfcompare (the regression gate) consumes the
// result.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "sciprep/apps/measure.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/insight/insight.hpp"
#include "sciprep/perfscope/perfscope.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/serve/service.hpp"
#include "sciprep/shard/coordinator.hpp"
#include "sciprep/sim/platform.hpp"
#include "sciprep/sim/stepmodel.hpp"
#include "sciprep/wire/client.hpp"
#include "sciprep/wire/server.hpp"

namespace {

using namespace sciprep;

struct Args {
  std::string out = "BENCH_current.json";
  std::string label;
  int repeat = 3;
  int warmup = 1;
  int epochs = 6;      // pipeline epochs per overhead arm
  int cosmo_dim = 32;  // reduced sizes keep one run in seconds, not minutes
  int cam_h = 192;
  int cam_w = 288;
  std::size_t max_runs = 32;
  std::string filter;  // substring; empty = all probes
  bool list = false;
};

Args parse_args(int argc, char** argv) {
  Args a;
  auto val = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : "";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--out") {
      a.out = val(i);
    } else if (f == "--label") {
      a.label = val(i);
    } else if (f == "--repeat") {
      a.repeat = std::max(1, std::atoi(val(i)));
    } else if (f == "--warmup") {
      a.warmup = std::max(0, std::atoi(val(i)));
    } else if (f == "--epochs") {
      a.epochs = std::max(1, std::atoi(val(i)));
    } else if (f == "--cosmo-dim") {
      a.cosmo_dim = std::max(8, std::atoi(val(i)));
    } else if (f == "--cam-h") {
      a.cam_h = std::max(16, std::atoi(val(i)));
    } else if (f == "--cam-w") {
      a.cam_w = std::max(16, std::atoi(val(i)));
    } else if (f == "--max-runs") {
      a.max_runs = static_cast<std::size_t>(std::max(0, std::atoi(val(i))));
    } else if (f == "--filter") {
      a.filter = val(i);
    } else if (f == "--list") {
      a.list = true;
    } else if (f == "--help" || f == "-h") {
      std::printf(
          "usage: perfbench [--out FILE] [--label STR] [--repeat K]\n"
          "                 [--warmup N] [--epochs N] [--cosmo-dim N]\n"
          "                 [--cam-h N] [--cam-w N] [--max-runs N]\n"
          "                 [--filter SUBSTR] [--list]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "perfbench: unknown flag %s\n", f.c_str());
      std::exit(2);
    }
  }
  return a;
}

double process_cpu_seconds() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(usage.ru_utime) + tv(usage.ru_stime);
}

double wall_seconds_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Shared pipeline substrate for the overhead probes (mirrors the gbench
// overhead suites: 32 encoded CosmoFlow samples, batch 8, 2 workers).
// ---------------------------------------------------------------------------

const pipeline::InMemoryDataset& shared_dataset() {
  static const codec::CosmoCodec codec;
  static const pipeline::InMemoryDataset dataset = [] {
    data::CosmoGenConfig cfg;
    cfg.dim = 16;
    cfg.seed = 3;
    const data::CosmoGenerator gen(cfg);
    return pipeline::InMemoryDataset::make_cosmo(
        gen, 32, pipeline::StorageFormat::kEncoded, &codec);
  }();
  return dataset;
}

const codec::CosmoCodec& shared_codec() {
  static const codec::CosmoCodec codec;
  return codec;
}

struct EpochRun {
  double cpu_seconds = 0;
  double wall_seconds = 0;
  std::uint64_t samples = 0;
};

/// Run `epochs` epochs over the shared dataset with the given config
/// (metrics registry is always injected) and return what the process paid.
EpochRun run_epochs(pipeline::PipelineConfig cfg, obs::MetricsRegistry* reg,
                    int epochs) {
  cfg.metrics = reg;
  pipeline::DataPipeline pipe(shared_dataset(), shared_codec(), cfg);
  EpochRun r;
  const double cpu0 = process_cpu_seconds();
  const double wall0 = wall_seconds_now();
  for (int e = 0; e < epochs; ++e) {
    pipe.start_epoch(static_cast<std::uint64_t>(e));
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      r.samples += static_cast<std::uint64_t>(batch.size());
    }
  }
  r.wall_seconds = wall_seconds_now() - wall0;
  r.cpu_seconds = process_cpu_seconds() - cpu0;
  return r;
}

/// Run `epochs` epochs of the shared dataset through a zero-fault
/// ShardCoordinator at `world` ranks and return what the process paid —
/// the sharded arm of the shard_overhead probe.
EpochRun run_shard_epochs(pipeline::PipelineConfig cfg,
                          obs::MetricsRegistry* reg, int world, int epochs) {
  static const codec::CosmoCodec codec;
  shard::ShardConfig scfg;
  scfg.world = world;
  scfg.pipeline = std::move(cfg);
  scfg.metrics = reg;
  shard::ShardCoordinator coordinator(shared_dataset(), codec, scfg);
  EpochRun r;
  const double cpu0 = process_cpu_seconds();
  const double wall0 = wall_seconds_now();
  shard::ShardBatch sb;
  for (int e = 0; e < epochs; ++e) {
    if (coordinator.epoch() != static_cast<std::uint64_t>(e)) {
      coordinator.start_epoch(static_cast<std::uint64_t>(e));
    }
    while (coordinator.step(sb)) {
      r.samples += static_cast<std::uint64_t>(sb.batch.size());
    }
  }
  r.wall_seconds = wall_seconds_now() - wall0;
  r.cpu_seconds = process_cpu_seconds() - cpu0;
  return r;
}

pipeline::PipelineConfig base_pipeline_config() {
  pipeline::PipelineConfig cfg;
  cfg.batch_size = 8;
  cfg.worker_threads = 2;
  cfg.prefetch = false;
  return cfg;
}

void add_overhead_metrics(perfscope::BenchReporter& reporter,
                          const char* layer, const EpochRun& base,
                          const EpochRun& inst) {
  const double denom = std::max(base.cpu_seconds, 1e-9);
  const double overhead = (inst.cpu_seconds - base.cpu_seconds) / denom;
  // The contract is <1%, but two short epoch loops run back to back wobble
  // ±10 points on a shared host — the floor is sized to catch a layer whose
  // cost became a real fraction of the work (2x decode = fraction ~1), not
  // scheduler jitter.
  reporter.add_metric(fmt("{}.cpu_overhead_fraction", layer), overhead,
                      "fraction", "measured", /*better_higher=*/false,
                      /*noise_floor=*/0.15);
  reporter.add_metric(
      "samples_per_cpu_second.base",
      static_cast<double>(base.samples) / denom, "samples/s", "measured");
}

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

struct Probe {
  std::string name;
  std::string config;
  std::function<void(perfscope::BenchReporter&)> fn;
};

std::vector<Probe> build_probes(const Args& args) {
  std::vector<Probe> probes;

  // Fig 8 — DeepCAM throughput headline (reduced sample size; the profile
  // scales by value count inside measure_cam).
  probes.push_back(Probe{
      "fig8_deepcam_throughput",
      fmt("cam_h={} cam_w={}", args.cam_h, args.cam_w),
      [&args](perfscope::BenchReporter& r) {
        using apps::LoaderConfig;
        const auto base =
            apps::measure_cam(LoaderConfig::kBaseline, args.cam_h, args.cam_w);
        const auto gpu =
            apps::measure_cam(LoaderConfig::kGpuPlugin, args.cam_h, args.cam_w);
        auto scenario = [&](const sim::PlatformModel& p) {
          sim::StepScenario s;
          s.platform = p;
          s.samples_per_node = 1536;
          s.staged = true;
          s.batch_size = 4;
          s.cpu_workers_per_gpu = p.name == "Summit" ? 7 : 4;
          s.device_overhead_per_batch_seconds =
              p.name == "Summit" ? 0.22 : 0.004;
          return s;
        };
        const auto v100 = scenario(sim::cori_v100());
        const auto a100 = scenario(sim::cori_a100());
        const double base_v = sim::node_samples_per_second(
            v100, sim::model_step(v100, base.profile));
        const double base_a = sim::node_samples_per_second(
            a100, sim::model_step(a100, base.profile));
        const double gpu_a = sim::node_samples_per_second(
            a100, sim::model_step(a100, gpu.profile));
        r.add_metric("decode_seconds.baseline", base.profile.host_seconds,
                     "seconds", "measured", /*better_higher=*/false);
        r.add_metric("samples_per_s.cori_v100.baseline", base_v, "samples/s",
                     "modeled");
        r.add_metric("samples_per_s.cori_a100.gpu_plugin", gpu_a, "samples/s",
                     "modeled");
        r.add_metric("speedup.cori_a100.gpu_vs_base", gpu_a / base_a, "x",
                     "modeled");
        r.charge_sim_seconds(1536.0 / base_v + 1536.0 / gpu_a);
      }});

  // Fig 10 — CosmoFlow small-set throughput headline (Summit, batch 1).
  probes.push_back(Probe{
      "fig10_cosmo_small", fmt("dim={}", args.cosmo_dim),
      [&args](perfscope::BenchReporter& r) {
        using apps::LoaderConfig;
        const auto base =
            apps::measure_cosmo(LoaderConfig::kBaseline, args.cosmo_dim);
        const auto plug =
            apps::measure_cosmo(LoaderConfig::kGpuPlugin, args.cosmo_dim);
        sim::StepScenario s;
        s.platform = sim::summit();
        s.samples_per_node =
            128ull * static_cast<std::uint64_t>(s.platform.gpus_per_node);
        s.staged = true;
        s.batch_size = 1;
        s.cpu_workers_per_gpu = 4;
        s.device_overhead_per_batch_seconds = 0.004;
        const double t_base =
            sim::node_samples_per_second(s, sim::model_step(s, base.profile));
        const double t_plug =
            sim::node_samples_per_second(s, sim::model_step(s, plug.profile));
        r.add_metric("compression_ratio.plugin", plug.compression_ratio, "x",
                     "measured");
        r.add_metric("samples_per_s.summit.baseline", t_base, "samples/s",
                     "modeled");
        r.add_metric("samples_per_s.summit.plugin", t_plug, "samples/s",
                     "modeled");
        r.add_metric("speedup.summit.plugin_vs_base", t_plug / t_base, "x",
                     "modeled");
        const double n = static_cast<double>(s.samples_per_node);
        r.charge_sim_seconds(n / t_base + n / t_plug);
      }});

  // Fig 11 — CosmoFlow large-set throughput headline (Cori V100, batch 1).
  probes.push_back(Probe{
      "fig11_cosmo_large", fmt("dim={}", args.cosmo_dim),
      [&args](perfscope::BenchReporter& r) {
        using apps::LoaderConfig;
        const auto base =
            apps::measure_cosmo(LoaderConfig::kBaseline, args.cosmo_dim);
        const auto plug =
            apps::measure_cosmo(LoaderConfig::kGpuPlugin, args.cosmo_dim);
        sim::StepScenario s;
        s.platform = sim::cori_v100();
        s.samples_per_node =
            2048ull * static_cast<std::uint64_t>(s.platform.gpus_per_node);
        s.staged = true;
        s.batch_size = 1;
        s.cpu_workers_per_gpu = 4;
        s.device_overhead_per_batch_seconds = 0.004;
        const double t_base =
            sim::node_samples_per_second(s, sim::model_step(s, base.profile));
        const double t_plug =
            sim::node_samples_per_second(s, sim::model_step(s, plug.profile));
        r.add_metric("samples_per_s.cori_v100.baseline", t_base, "samples/s",
                     "modeled");
        r.add_metric("samples_per_s.cori_v100.plugin", t_plug, "samples/s",
                     "modeled");
        r.add_metric("speedup.cori_v100.plugin_vs_base", t_plug / t_base, "x",
                     "modeled");
        const double n = static_cast<double>(s.samples_per_node);
        r.charge_sim_seconds(n / t_base + n / t_plug);
      }});

  // Observability overhead: tracer off vs on over the epoch loop.
  probes.push_back(Probe{
      "obs_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        obs::MetricsRegistry reg_off;
        const EpochRun off =
            run_epochs(base_pipeline_config(), &reg_off, args.epochs);
        obs::Tracer::global().set_enabled(true);
        obs::MetricsRegistry reg_on;
        const EpochRun on =
            run_epochs(base_pipeline_config(), &reg_on, args.epochs);
        obs::Tracer::global().set_enabled(false);
        obs::Tracer::global().clear();
        add_overhead_metrics(r, "obs", off, on);
      }});

  // Fault-injection gates: no injector vs zero-fault injector installed.
  probes.push_back(Probe{
      "fault_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        obs::MetricsRegistry reg_base;
        const EpochRun base =
            run_epochs(base_pipeline_config(), &reg_base, args.epochs);

        obs::MetricsRegistry reg_inj;
        fault::Injector injector(99, &reg_inj);
        pipeline::PipelineConfig cfg = base_pipeline_config();
        cfg.injector = &injector;
        cfg.fault_policy.on_transient = fault::Action::kRetry;
        cfg.fault_policy.retry = {.max_attempts = 3, .backoff_seconds = 0};
        cfg.fault_policy.on_retry_exhausted = fault::Action::kSkipSample;
        cfg.fault_policy.on_corrupt = fault::Action::kSkipSample;
        cfg.fault_policy.error_budget = ~0ull;
        const EpochRun inst = run_epochs(cfg, &reg_inj, args.epochs);
        add_overhead_metrics(r, "fault", base, inst);
      }});

  // Guard layer: bare vs armed watchdog with generous deadlines.
  probes.push_back(Probe{
      "guard_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        obs::MetricsRegistry reg_base;
        const EpochRun base =
            run_epochs(base_pipeline_config(), &reg_base, args.epochs);

        obs::MetricsRegistry reg_guard;
        pipeline::PipelineConfig cfg = base_pipeline_config();
        cfg.cancel = guard::CancelToken::make();
        cfg.deadlines.io_read_seconds = 60;
        cfg.deadlines.decode_seconds = 60;
        cfg.deadlines.gunzip_seconds = 60;
        cfg.deadlines.prefetch_wait_seconds = 60;
        const EpochRun inst = run_epochs(cfg, &reg_guard, args.epochs);
        add_overhead_metrics(r, "guard", base, inst);
      }});

  // Insight layer: bare vs exporter + resource sampler; also the probe that
  // populates the record's stage/latency sections from the analyzer.
  probes.push_back(Probe{
      "insight_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        obs::MetricsRegistry reg_base;
        const EpochRun base =
            run_epochs(base_pipeline_config(), &reg_base, args.epochs);

        obs::MetricsRegistry reg_ins;
        perfscope::ResourceSampler sampler(&reg_ins);
        insight::ExporterConfig ecfg;
        ecfg.interval_seconds = 0.1;
        ecfg.jsonl_path = "perfbench_insight_series.jsonl";
        ecfg.metrics = &reg_ins;
        ecfg.pre_tick = sampler.exporter_hook();
        insight::ContinuousExporter exporter(ecfg);
        exporter.start();
        const EpochRun inst =
            run_epochs(base_pipeline_config(), &reg_ins, args.epochs);
        exporter.stop();
        std::remove("perfbench_insight_series.jsonl");
        add_overhead_metrics(r, "insight", base, inst);

        const insight::BottleneckReport report = insight::analyze_critical_path(
            {.metrics = &reg_ins, .tracer = &obs::Tracer::global(),
             .wall_seconds = inst.wall_seconds, .workers = 2});
        r.set_stage_costs(report);
        for (const char* stage : {"decode", "io_read"}) {
          obs::Histogram& h = reg_ins.histogram(
              fmt("pipeline.stage.{}_seconds", stage));
          if (h.count() > 0) {
            r.add_latency(stage, h.quantile(0.5), h.quantile(0.99));
          }
        }
      }});

  // Shard layer: plain pipeline vs zero-fault ShardCoordinator. world=1
  // isolates the coordinator's own cost (the "<1% sharded overhead per
  // rank" contract); world=4 adds the per-rank fraction — the same total
  // work multiplexed across four ranks, normalised back per sample.
  probes.push_back(Probe{
      "shard_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        obs::MetricsRegistry reg_base;
        const EpochRun base =
            run_epochs(base_pipeline_config(), &reg_base, args.epochs);

        obs::MetricsRegistry reg_one;
        const EpochRun one = run_shard_epochs(base_pipeline_config(),
                                              &reg_one, 1, args.epochs);
        add_overhead_metrics(r, "shard", base, one);

        obs::MetricsRegistry reg_four;
        const EpochRun four = run_shard_epochs(base_pipeline_config(),
                                               &reg_four, 4, args.epochs);
        const double per_sample_one =
            one.cpu_seconds / std::max<double>(1, one.samples);
        const double per_sample_four =
            four.cpu_seconds / std::max<double>(1, four.samples);
        r.add_metric("shard.per_rank_cpu_overhead_fraction",
                     per_sample_four / std::max(per_sample_one, 1e-12) - 1.0,
                     "fraction", "measured", /*better_higher=*/false,
                     /*noise_floor=*/0.15);
      }});

  // Serve layer: the same two-tenant workload as two bare pipelines run back
  // to back vs multiplexed through one resident DataService (shared stride-
  // scheduled pool, admission ledger, lease beats, per-sample stream digest).
  // The cache is disabled so both arms decode every sample — this prices the
  // service plumbing at its healthy-path defaults (stream verification off),
  // not the cache's workload-dependent wins or the opt-in per-sample CRC.
  // Only the drain loop is timed; service construction and admission are
  // per-job one-offs.
  probes.push_back(Probe{
      "serve_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        pipeline::PipelineConfig cfg_a = base_pipeline_config();
        cfg_a.seed = 1;
        pipeline::PipelineConfig cfg_b = base_pipeline_config();
        cfg_b.seed = 2;
        obs::MetricsRegistry reg_a;
        obs::MetricsRegistry reg_b;
        EpochRun base = run_epochs(cfg_a, &reg_a, args.epochs);
        const EpochRun second = run_epochs(cfg_b, &reg_b, args.epochs);
        base.cpu_seconds += second.cpu_seconds;
        base.wall_seconds += second.wall_seconds;
        base.samples += second.samples;

        obs::MetricsRegistry reg_serve;
        serve::ServiceConfig scfg;
        scfg.worker_threads = 2;
        scfg.cache.capacity_bytes = 0;
        scfg.metrics = &reg_serve;
        serve::DataService service(shared_dataset(), shared_codec(), scfg);
        serve::TenantSpec spec_a;
        spec_a.name = "a";
        spec_a.pipeline = cfg_a;
        spec_a.epochs = static_cast<std::uint64_t>(args.epochs);
        serve::TenantSpec spec_b = spec_a;
        spec_b.name = "b";
        spec_b.pipeline = cfg_b;
        const int sa = service.open_session(std::move(spec_a)).session;
        const int sb = service.open_session(std::move(spec_b)).session;

        EpochRun inst;
        const double cpu0 = process_cpu_seconds();
        const double wall0 = wall_seconds_now();
        pipeline::Batch batch;
        bool live_a = true;
        bool live_b = true;
        while (live_a || live_b) {
          if (live_a && (live_a = service.next_batch(sa, batch))) {
            inst.samples += static_cast<std::uint64_t>(batch.size());
          }
          if (live_b && (live_b = service.next_batch(sb, batch))) {
            inst.samples += static_cast<std::uint64_t>(batch.size());
          }
        }
        inst.wall_seconds = wall_seconds_now() - wall0;
        inst.cpu_seconds = process_cpu_seconds() - cpu0;
        service.close_session(sa);
        service.close_session(sb);
        add_overhead_metrics(r, "serve", base, inst);
      }});

  // Wire layer: one tenant drained straight off a DataService vs the same
  // tenant served by a WireServer over an AF_UNIX socket to a WireClient in
  // this process. Prices the whole local-socket path — frame encode + CRC,
  // two kernel copies, decode — per delivered sample. Wall time is the
  // figure of merit (the client-perceived delivery rate); the zero-fault
  // contract is ~10%, and the floor is sized for two short timed loops on a
  // shared host, not for the contract edge itself.
  probes.push_back(Probe{
      "wire_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        pipeline::PipelineConfig cfg = base_pipeline_config();
        cfg.seed = 3;
        serve::TenantSpec spec;
        spec.name = "w";
        spec.pipeline = cfg;
        spec.epochs = static_cast<std::uint64_t>(args.epochs);

        obs::MetricsRegistry reg_base;
        serve::ServiceConfig scfg;
        scfg.worker_threads = 2;
        scfg.cache.capacity_bytes = 0;
        scfg.metrics = &reg_base;
        EpochRun base;
        {
          serve::DataService service(shared_dataset(), shared_codec(), scfg);
          const int s = service.open_session(spec).session;
          const double cpu0 = process_cpu_seconds();
          const double wall0 = wall_seconds_now();
          pipeline::Batch batch;
          while (service.next_batch(s, batch)) {
            base.samples += static_cast<std::uint64_t>(batch.size());
          }
          base.wall_seconds = wall_seconds_now() - wall0;
          base.cpu_seconds = process_cpu_seconds() - cpu0;
          service.close_session(s);
        }

        obs::MetricsRegistry reg_wire;
        scfg.metrics = &reg_wire;
        serve::DataService service(shared_dataset(), shared_codec(), scfg);
        wire::WireServerConfig wcfg;
        wcfg.socket_path = fmt("/tmp/sciprep_bench_{}.sock", ::getpid());
        wire::WireServer server(service, {spec}, wcfg);
        server.start();
        wire::WireClientConfig ccfg;
        ccfg.socket_path = wcfg.socket_path;
        ccfg.tenant = "w";
        // The base arm runs without verify_stream, so the wire arm skips
        // the client digest too — this prices the transport, not the
        // opt-in bit-identity proof.
        ccfg.record_digest = false;
        wire::WireClient client(ccfg);
        client.attach();
        EpochRun inst;
        const double cpu0 = process_cpu_seconds();
        const double wall0 = wall_seconds_now();
        pipeline::Batch batch;
        while (client.next(batch)) {
          inst.samples += static_cast<std::uint64_t>(batch.size());
        }
        inst.wall_seconds = wall_seconds_now() - wall0;
        inst.cpu_seconds = process_cpu_seconds() - cpu0;
        (void)client.detach();
        server.stop();

        const double per_base =
            base.wall_seconds / std::max<double>(1, base.samples);
        const double per_wire =
            inst.wall_seconds / std::max<double>(1, inst.samples);
        r.add_metric("wire.wall_overhead_fraction",
                     per_wire / std::max(per_base, 1e-12) - 1.0, "fraction",
                     "measured", /*better_higher=*/false,
                     /*noise_floor=*/0.25);
        r.add_metric("wire.samples_per_wall_second",
                     static_cast<double>(inst.samples) /
                         std::max(inst.wall_seconds, 1e-9),
                     "samples/s", "measured");
      }});

  // sciprep::flow: the same socket-served drain with trace propagation off
  // vs on. Prices the full flow tax — the 17-byte trace-context prefix on
  // every NEXT, the CLOCK_SYNC handshake at attach, and the per-batch span +
  // histogram recording on both sides. The healthy-path contract is <1%
  // wall cost; the noise floor is sized for two short timed loops on a
  // shared host, so the committed trajectory (not one run) enforces it.
  probes.push_back(Probe{
      "flow_overhead", fmt("epochs={}", args.epochs),
      [&args](perfscope::BenchReporter& r) {
        pipeline::PipelineConfig cfg = base_pipeline_config();
        cfg.seed = 4;
        serve::TenantSpec spec;
        spec.name = "f";
        spec.pipeline = cfg;
        spec.epochs = static_cast<std::uint64_t>(args.epochs);

        auto timed_drain = [&spec](bool propagate, EpochRun& out) {
          obs::MetricsRegistry reg_srv;
          serve::ServiceConfig scfg;
          scfg.worker_threads = 2;
          scfg.cache.capacity_bytes = 0;
          scfg.metrics = &reg_srv;
          serve::DataService service(shared_dataset(), shared_codec(), scfg);
          wire::WireServerConfig wcfg;
          wcfg.socket_path =
              fmt("/tmp/sciprep_bench_flow_{}.sock", ::getpid());
          wire::WireServer server(service, {spec}, wcfg);
          server.start();
          obs::MetricsRegistry reg_client;
          obs::Tracer tracer;
          wire::WireClientConfig ccfg;
          ccfg.socket_path = wcfg.socket_path;
          ccfg.tenant = "f";
          ccfg.record_digest = false;
          ccfg.trace_propagate = propagate;
          ccfg.metrics = &reg_client;
          ccfg.tracer = &tracer;
          wire::WireClient client(ccfg);
          client.attach();
          const double cpu0 = process_cpu_seconds();
          const double wall0 = wall_seconds_now();
          pipeline::Batch batch;
          while (client.next(batch)) {
            out.samples += static_cast<std::uint64_t>(batch.size());
          }
          out.wall_seconds = wall_seconds_now() - wall0;
          out.cpu_seconds = process_cpu_seconds() - cpu0;
          (void)client.detach();
          server.stop();
        };

        EpochRun base;
        EpochRun inst;
        timed_drain(false, base);
        timed_drain(true, inst);

        const double per_base =
            base.wall_seconds / std::max<double>(1, base.samples);
        const double per_flow =
            inst.wall_seconds / std::max<double>(1, inst.samples);
        r.add_metric("flow.wall_overhead_fraction",
                     per_flow / std::max(per_base, 1e-12) - 1.0, "fraction",
                     "measured", /*better_higher=*/false,
                     /*noise_floor=*/0.25);
        r.add_metric("flow.samples_per_wall_second",
                     static_cast<double>(inst.samples) /
                         std::max(inst.wall_seconds, 1e-9),
                     "samples/s", "measured");
      }});

  return probes;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// Run one probe warmup+repeat times and merge: per-metric (and wall/sim)
/// median across the repeats, everything else from the last repeat.
perfscope::BenchRecord run_probe(const Probe& probe, const Args& args) {
  for (int w = 0; w < args.warmup; ++w) {
    perfscope::BenchReporter scratch(probe.name);
    probe.fn(scratch);
  }
  std::vector<perfscope::BenchRecord> records;
  for (int k = 0; k < args.repeat; ++k) {
    perfscope::BenchReporter reporter(probe.name);
    reporter.set_config(probe.config);
    probe.fn(reporter);
    records.push_back(reporter.snapshot());
  }
  perfscope::BenchRecord merged = records.back();
  for (perfscope::BenchMetric& metric : merged.metrics) {
    std::vector<double> values;
    for (const perfscope::BenchRecord& rec : records) {
      if (const perfscope::BenchMetric* m = rec.find_metric(metric.name)) {
        values.push_back(m->value);
      }
    }
    metric.value = median_of(std::move(values));
  }
  std::vector<double> walls;
  std::vector<double> sims;
  for (const perfscope::BenchRecord& rec : records) {
    walls.push_back(rec.wall_seconds);
    sims.push_back(rec.sim_charged_seconds);
  }
  merged.wall_seconds = median_of(std::move(walls));
  merged.sim_charged_seconds = median_of(std::move(sims));
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const std::vector<Probe> probes = build_probes(args);

  if (args.list) {
    for (const Probe& probe : probes) {
      std::printf("%s  (%s)\n", probe.name.c_str(), probe.config.c_str());
    }
    return 0;
  }

  perfscope::BenchRun run;
  run.unix_time = static_cast<std::uint64_t>(std::time(nullptr));
  run.label = args.label;

  int failures = 0;
  for (const Probe& probe : probes) {
    if (!args.filter.empty() &&
        probe.name.find(args.filter) == std::string::npos) {
      continue;
    }
    std::printf("perfbench: %-26s ", probe.name.c_str());
    std::fflush(stdout);
    try {
      perfscope::BenchRecord record = run_probe(probe, args);
      std::printf("wall %.3fs  sim %.3fs  %zu metrics\n", record.wall_seconds,
                  record.sim_charged_seconds, record.metrics.size());
      run.benches.emplace(probe.name, std::move(record));
    } catch (const std::exception& e) {
      ++failures;
      std::printf("FAILED: %s\n", e.what());
    }
  }
  if (run.benches.empty()) {
    std::fprintf(stderr, "perfbench: no probes ran (filter '%s')\n",
                 args.filter.c_str());
    return 2;
  }

  perfscope::Trajectory trajectory;
  if (perfscope::load_trajectory(args.out, trajectory)) {
    std::printf("perfbench: appending to %s (%zu prior runs)\n",
                args.out.c_str(), trajectory.runs.size());
  } else {
    std::printf("perfbench: starting new trajectory %s\n", args.out.c_str());
  }
  perfscope::append_run(trajectory, std::move(run), args.max_runs);
  perfscope::save_trajectory(args.out, trajectory);
  std::printf("perfbench: run %llu written (%zu benches) -> %s\n",
              static_cast<unsigned long long>(
                  trajectory.runs.back().run_index),
              trajectory.runs.back().benches.size(), args.out.c_str());
  return failures == 0 ? 0 : 1;
}
