// Miniature versions of the two benchmark models.
//
// The convergence experiments (Figs 6-7) compare loss trajectories between
// FP32 baseline samples and FP16 decoded samples under a fixed learning
// schedule — the model only needs the same *family* of architecture at a
// size this host can train: a CosmoFlow-style 3D conv regressor (the real
// network is five 3D conv layers + three dense) and a DeepCAM-style fully
// convolutional segmentation head (standing in for DeepLabv3+).
#pragma once

#include <memory>

#include "sciprep/codec/codec.hpp"
#include "sciprep/dnn/layers.hpp"
#include "sciprep/io/samples.hpp"

namespace sciprep::apps {

/// CosmoFlow-mini: [4, dim, dim, dim] -> 4 regression outputs.
/// Conv3d(4->8) + pool + Conv3d(8->8) + pool + Conv3d(8->8) + pool + dense
/// stack. `dim` must be divisible by 8.
std::unique_ptr<dnn::Sequential> build_cosmoflow_model(int dim, Rng& rng);

/// DeepCAM-mini: [channels, h, w] -> [3, h, w] per-pixel class logits.
std::unique_ptr<dnn::Sequential> build_deepcam_model(int channels, Rng& rng);

/// Convert a decoded FP16 tensor into a training input (values pass through
/// the FP16 quantization — the decoded-sample arm of Figs 6-7). Shape is
/// preserved; use cosmo_input_from_fp16 for CosmoFlow's layout change.
dnn::Tensor input_from_fp16(const codec::TensorF16& tensor);

/// CosmoFlow decoded arm: [d,h,w,4] redshift-innermost FP16 tensor ->
/// channel-major [4,d,h,w] model input (the transpose the real pipeline
/// fuses into data feeding).
dnn::Tensor cosmo_input_from_fp16(const codec::TensorF16& tensor);

/// CosmoFlow baseline arm: FP32 log1p preprocessing with no FP16 cast,
/// already channel-major [4,d,h,w].
dnn::Tensor cosmo_input_fp32(const io::CosmoSample& sample);

/// DeepCAM baseline arm: FP32 per-channel normalization, no FP16 cast.
dnn::Tensor cam_input_fp32(const io::CamSample& sample);

/// Estimated fwd+bwd FLOPs per sample for the *full-size* benchmark models,
/// used by the step-time model (not the miniatures above).
double cosmoflow_train_flops_per_sample();
double deepcam_train_flops_per_sample();

}  // namespace sciprep::apps
